// Serialized array blob header (Sec. 3.5 of the paper).
//
// An array is a binary blob: a small header followed by the elements stored
// consecutively in column-major order. Two storage classes exist:
//
//   SHORT (on-page) arrays — fixed 24-byte header, at most 6 dimensions with
//   int16 sizes, whole blob must fit a VARBINARY(8000) column so it stays on
//   the 8 kB data page.
//
//   MAX (out-of-page) arrays — variable-size header, any rank, int32 sizes,
//   blob stored out-of-page as a B-tree and accessed through a stream that
//   supports partial reads.
//
// Short header layout (24 bytes, little-endian):
//   [0]      magic (0xA7)
//   [1]      flags (bit0 = 1 for max class; 0 here)
//   [2]      dtype byte
//   [3]      rank (1..6)
//   [4..7]   uint32 total element count
//   [8..19]  int16 dim sizes, 6 slots, unused slots zero
//   [20..23] reserved, zero
//
// Max header layout (16 + 4*rank bytes, little-endian):
//   [0]      magic (0xA7)
//   [1]      flags (bit0 = 1)
//   [2]      dtype byte
//   [3]      reserved, zero
//   [4..7]   uint32 rank (>= 1)
//   [8..15]  int64 total element count
//   [16..)   int32 dim sizes, rank entries
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/dims.h"
#include "common/status.h"
#include "core/dtype.h"

namespace sqlarray {

/// Storage class of an array blob (Sec. 3.3).
enum class StorageClass : uint8_t {
  kShort = 0,  ///< on-page, <= 8000-byte blob, rank <= 6, int16 dims
  kMax = 1,    ///< out-of-page, streamed, any rank, int32 dims
};

/// Magic byte opening every array blob.
inline constexpr uint8_t kArrayMagic = 0xA7;
/// Fixed header size of a short array.
inline constexpr int kShortHeaderSize = 24;
/// Fixed prefix size of a max-array header (before the dim sizes).
inline constexpr int kMaxHeaderPrefixSize = 16;
/// Largest blob (header + data) a short array may occupy: VARBINARY(8000).
inline constexpr int64_t kMaxShortBlobBytes = 8000;
/// Largest dimension size of a short array (int16 indices).
inline constexpr int64_t kMaxShortDimSize = 32767;
/// Largest dimension size of a max array (int32 indices).
inline constexpr int64_t kMaxMaxDimSize = 2147483647;

/// Decoded array header.
struct ArrayHeader {
  DType dtype = DType::kFloat64;
  StorageClass storage = StorageClass::kShort;
  Dims dims;

  int rank() const { return static_cast<int>(dims.size()); }
  int64_t num_elements() const {
    return ElementCount(std::span<const int64_t>(dims));
  }
  /// Size in bytes of the serialized header.
  int64_t header_size() const {
    return storage == StorageClass::kShort
               ? kShortHeaderSize
               : kMaxHeaderPrefixSize + 4 * static_cast<int64_t>(dims.size());
  }
  /// Size in bytes of the element payload.
  int64_t data_size() const { return num_elements() * DTypeSize(dtype); }
  /// Total blob size (header + payload).
  int64_t blob_size() const { return header_size() + data_size(); }

  bool operator==(const ArrayHeader& o) const {
    return dtype == o.dtype && storage == o.storage && dims == o.dims;
  }
};

/// Validates that (dtype, dims) is representable in the given storage class.
Status ValidateHeader(DType dtype, std::span<const int64_t> dims,
                      StorageClass storage);

/// Chooses the storage class for (dtype, dims): short when the blob fits the
/// short-class constraints, max otherwise.
StorageClass ChooseStorageClass(DType dtype, std::span<const int64_t> dims);

/// Serializes a header. Fails if the shape violates the class constraints.
Result<std::vector<uint8_t>> EncodeHeader(const ArrayHeader& header);

/// Appends the serialized header to `out` (same validation as EncodeHeader).
Status AppendHeader(const ArrayHeader& header, std::vector<uint8_t>* out);

/// Parses and validates a header from the front of `blob`. The blob may be
/// longer than the header (it normally carries the payload too); the payload
/// length is validated against the header's element count.
Result<ArrayHeader> DecodeHeader(std::span<const uint8_t> blob);

/// Parses only the fixed prefix of a header to learn its total size, for
/// streamed (partial) reads where only a few bytes are available. `prefix`
/// must hold at least kMaxHeaderPrefixSize bytes.
Result<int64_t> PeekHeaderSize(std::span<const uint8_t> prefix);

}  // namespace sqlarray
