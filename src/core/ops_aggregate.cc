#include <algorithm>
#include <cmath>
#include <limits>

#include "core/kernels.h"
#include "core/ops.h"
#include "gov/gov.h"

namespace sqlarray {

namespace {

/// Elements between cooperative cancellation probes in boxed loops. The
/// probe is a thread-local load when the query is ungoverned.
constexpr int64_t kCancelMask = 8191;

struct RealAccum {
  double sum = 0;
  double sumsq = 0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  int64_t n = 0;

  void Add(double v) {
    sum += v;
    sumsq += v * v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    ++n;
  }

  Result<double> Finish(AggKind kind) const {
    switch (kind) {
      case AggKind::kSum:
        return sum;
      case AggKind::kCount:
        return static_cast<double>(n);
      case AggKind::kMin:
        if (n == 0) return Status::InvalidArgument("min of empty array");
        return mn;
      case AggKind::kMax:
        if (n == 0) return Status::InvalidArgument("max of empty array");
        return mx;
      case AggKind::kMean:
        if (n == 0) return Status::InvalidArgument("mean of empty array");
        return sum / static_cast<double>(n);
      case AggKind::kStd: {
        if (n == 0) return Status::InvalidArgument("std of empty array");
        double mean = sum / static_cast<double>(n);
        double var = sumsq / static_cast<double>(n) - mean * mean;
        return std::sqrt(std::max(0.0, var));
      }
    }
    return Status::Internal("unreachable aggregate kind");
  }
};

bool KindNeedsOrdering(AggKind kind) {
  return kind == AggKind::kMin || kind == AggKind::kMax ||
         kind == AggKind::kStd;
}

/// Finishes a kernel ReduceStats with RealAccum's empty-input and variance
/// semantics (the field layouts match by construction).
Result<double> FinishStats(const kernels::ReduceStats& s, AggKind kind) {
  RealAccum acc;
  acc.sum = s.sum;
  acc.sumsq = s.sumsq;
  if (s.n > 0) {
    acc.mn = s.mn;
    acc.mx = s.mx;
  }
  acc.n = s.n;
  return acc.Finish(kind);
}

}  // namespace

Result<double> AggregateAllBoxed(const ArrayRef& a, AggKind kind) {
  if (IsComplexDType(a.dtype())) {
    return Status::TypeMismatch(
        "real aggregate applied to a complex array; use "
        "AggregateAllComplex");
  }
  RealAccum acc;
  const int64_t n = a.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    if ((i & kCancelMask) == 0) {
      SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
    }
    acc.Add(a.GetDouble(i).value());
  }
  return acc.Finish(kind);
}

Result<double> AggregateAll(const ArrayRef& a, AggKind kind) {
  if (IsComplexDType(a.dtype())) {
    return Status::TypeMismatch(
        "real aggregate applied to a complex array; use "
        "AggregateAllComplex");
  }
  // SUM/MEAN/COUNT only need the running sum: use the unrolled sum kernel.
  // MIN/MAX/STD take the combined single-pass reduction kernel.
  if (kind == AggKind::kSum || kind == AggKind::kMean ||
      kind == AggKind::kCount) {
    kernels::SumKernelFn fn = kernels::LookupSum(a.dtype());
    if (fn == nullptr) {
      kernels::CountBoxedDispatch();
      return AggregateAllBoxed(a, kind);
    }
    kernels::CountKernelDispatch();
    const int64_t n = a.num_elements();
    if (kind == AggKind::kCount) return static_cast<double>(n);
    if (kind == AggKind::kMean && n == 0) {
      return Status::InvalidArgument("mean of empty array");
    }
    double sum = fn(a.payload().data(), n);
    return kind == AggKind::kSum ? sum : sum / static_cast<double>(n);
  }
  kernels::ReduceKernelFn fn = kernels::LookupReduce(a.dtype());
  if (fn == nullptr) {
    kernels::CountBoxedDispatch();
    return AggregateAllBoxed(a, kind);
  }
  kernels::CountKernelDispatch();
  kernels::ReduceStats stats;
  fn(a.payload().data(), a.num_elements(), &stats);
  return FinishStats(stats, kind);
}

Result<std::complex<double>> AggregateAllComplex(const ArrayRef& a,
                                                 AggKind kind) {
  if (KindNeedsOrdering(kind)) {
    return Status::TypeMismatch(
        "min/max/std are not defined for complex arrays");
  }
  std::complex<double> sum = 0;
  const int64_t n = a.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    if ((i & kCancelMask) == 0) {
      SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
    }
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v, a.GetComplex(i));
    sum += v;
  }
  switch (kind) {
    case AggKind::kSum:
      return sum;
    case AggKind::kCount:
      return std::complex<double>(static_cast<double>(n), 0);
    case AggKind::kMean:
      if (n == 0) return Status::InvalidArgument("mean of empty array");
      return sum / static_cast<double>(n);
    default:
      return Status::Internal("unreachable aggregate kind");
  }
}

Result<OwnedArray> AggregateAxis(const ArrayRef& a, int axis, AggKind kind) {
  if (axis < 0 || axis >= a.rank()) {
    return Status::InvalidArgument("axis " + std::to_string(axis) +
                                   " out of range for rank " +
                                   std::to_string(a.rank()));
  }
  const bool cpx = IsComplexDType(a.dtype());
  if (cpx && KindNeedsOrdering(kind)) {
    return Status::TypeMismatch(
        "min/max/std are not defined for complex arrays");
  }

  // Result shape: input dims with `axis` removed (a rank-1 input reduces to
  // a single-element vector).
  Dims out_dims;
  for (int k = 0; k < a.rank(); ++k) {
    if (k != axis) out_dims.push_back(a.dims()[k]);
  }
  if (out_dims.empty()) out_dims.push_back(1);

  DType out_dtype = cpx ? DType::kComplex128 : DType::kFloat64;
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(out_dtype, out_dims));

  const Dims& dims = a.dims();
  const Dims strides = ColumnMajorStrides(dims);
  const int64_t axis_len = dims[axis];
  const int64_t axis_stride = strides[axis];
  const int64_t out_n = out.num_elements();

  // Axis 0 reduces runs that are contiguous in the column-major payload
  // (strides[0] == 1): output cell o covers elements [o*len, (o+1)*len).
  // That is the kernel-friendly case; other axes walk strided.
  if (!cpx && axis == 0) {
    kernels::ReduceKernelFn fn = kernels::LookupReduce(a.dtype());
    if (fn != nullptr) {
      const uint8_t* base = a.payload().data();
      const int esize = a.elem_size();
      for (int64_t o = 0; o < out_n; ++o) {
        SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
        kernels::ReduceStats stats;
        fn(base + o * axis_len * esize, axis_len, &stats);
        SQLARRAY_ASSIGN_OR_RETURN(double v, FinishStats(stats, kind));
        SQLARRAY_RETURN_IF_ERROR(out.SetDouble(o, v));
      }
      return out;
    }
  }

  // Enumerate the reduced index space; for each output cell walk the axis.
  Dims cursor(a.rank(), 0);
  for (int64_t o = 0; o < out_n; ++o) {
    SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
    int64_t base = 0;
    for (int k = 0; k < a.rank(); ++k) {
      if (k != axis) base += cursor[k] * strides[k];
    }
    if (cpx) {
      std::complex<double> sum = 0;
      for (int64_t j = 0; j < axis_len; ++j) {
        if ((j & kCancelMask) == 0) {
          SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
        }
        sum += a.GetComplex(base + j * axis_stride).value();
      }
      std::complex<double> v = sum;
      if (kind == AggKind::kMean && axis_len > 0) {
        v = sum / static_cast<double>(axis_len);
      } else if (kind == AggKind::kCount) {
        v = {static_cast<double>(axis_len), 0};
      }
      SQLARRAY_RETURN_IF_ERROR(out.SetComplex(o, v));
    } else {
      RealAccum acc;
      for (int64_t j = 0; j < axis_len; ++j) {
        if ((j & kCancelMask) == 0) {
          SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
        }
        acc.Add(a.GetDouble(base + j * axis_stride).value());
      }
      SQLARRAY_ASSIGN_OR_RETURN(double v, acc.Finish(kind));
      SQLARRAY_RETURN_IF_ERROR(out.SetDouble(o, v));
    }
    // Column-major increment skipping the reduced axis.
    for (int k = 0; k < a.rank(); ++k) {
      if (k == axis) continue;
      if (++cursor[k] < dims[k]) break;
      cursor[k] = 0;
    }
  }
  return out;
}

}  // namespace sqlarray
