// Array blob views and owning arrays.
//
// An array travels through the system as a binary blob (header + column-major
// payload). ArrayRef is a cheap non-owning parsed view over such a blob;
// OwnedArray owns the bytes. Both expose typed and generic element access.
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/dims.h"
#include "common/status.h"
#include "core/dtype.h"
#include "core/header.h"

namespace sqlarray {

/// Reads one element at byte pointer `p` of type `t`, widened to double.
/// Complex elements are rejected (TypeMismatch).
Result<double> ReadScalarAsDouble(DType t, const uint8_t* p);

/// Reads one element widened to complex<double> (real types get im = 0).
Result<std::complex<double>> ReadScalarAsComplex(DType t, const uint8_t* p);

/// Writes `v` into one element of type `t` at `p`, narrowing as needed.
/// Integer targets round-to-nearest; complex targets get im = 0.
Status WriteScalarFromDouble(DType t, uint8_t* p, double v);

/// Writes a complex value; real targets reject non-zero imaginary parts.
Status WriteScalarFromComplex(DType t, uint8_t* p, std::complex<double> v);

/// A non-owning, validated view over an array blob.
class ArrayRef {
 public:
  ArrayRef() = default;

  /// Parses and validates the blob. The returned view aliases `blob`, which
  /// must outlive it.
  static Result<ArrayRef> Parse(std::span<const uint8_t> blob);

  const ArrayHeader& header() const { return header_; }
  DType dtype() const { return header_.dtype; }
  StorageClass storage() const { return header_.storage; }
  int rank() const { return header_.rank(); }
  const Dims& dims() const { return header_.dims; }
  int64_t num_elements() const { return header_.num_elements(); }
  int elem_size() const { return DTypeSize(header_.dtype); }

  /// The full blob (header + payload), trimmed to the logical size (fixed
  /// binary columns may pad the stored image).
  std::span<const uint8_t> blob() const { return blob_; }
  /// The element payload only.
  std::span<const uint8_t> payload() const {
    return blob_.subspan(header_.header_size(), header_.data_size());
  }

  /// Typed read-only element span; fails if T does not match the dtype.
  template <typename T>
  Result<std::span<const T>> Data() const {
    if (DTypeOf<T>() != dtype() &&
        !(dtype() == DType::kDateTime && DTypeOf<T>() == DType::kInt64)) {
      return Status::TypeMismatch(
          "array holds " + std::string(DTypeName(dtype())) +
          ", requested a different element type");
    }
    auto pl = payload();
    return std::span<const T>(reinterpret_cast<const T*>(pl.data()),
                              static_cast<size_t>(num_elements()));
  }

  /// Generic element read at a column-major linear offset.
  Result<double> GetDouble(int64_t linear) const;
  Result<std::complex<double>> GetComplex(int64_t linear) const;
  /// Generic element read at a multi-index.
  Result<double> GetDoubleAt(std::span<const int64_t> index) const;
  Result<std::complex<double>> GetComplexAt(std::span<const int64_t> index) const;

 private:
  ArrayHeader header_;
  std::span<const uint8_t> blob_;
};

/// An owning array blob with mutable payload access.
class OwnedArray {
 public:
  OwnedArray() = default;

  /// Creates a zero-filled array. If `storage` is not given, the smallest
  /// class that fits is chosen (short when <= 8000 bytes, rank <= 6).
  static Result<OwnedArray> Zeros(
      DType dtype, Dims dims,
      std::optional<StorageClass> storage = std::nullopt);

  /// Creates an array from typed values (column-major order).
  template <typename T>
  static Result<OwnedArray> FromValues(
      Dims dims, std::span<const T> values,
      std::optional<StorageClass> storage = std::nullopt) {
    if (static_cast<int64_t>(values.size()) != ElementCount(dims)) {
      return Status::InvalidArgument(
          "value count does not match dimension sizes");
    }
    SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a,
                              Zeros(DTypeOf<T>(), std::move(dims), storage));
    auto dst = a.MutableData<T>();
    std::copy(values.begin(), values.end(), dst.value().begin());
    return a;
  }

  /// Creates a 1-D array from typed values.
  template <typename T>
  static Result<OwnedArray> FromVector(
      std::span<const T> values,
      std::optional<StorageClass> storage = std::nullopt) {
    return FromValues<T>({static_cast<int64_t>(values.size())}, values,
                         storage);
  }

  /// Adopts an existing serialized blob (validating it).
  static Result<OwnedArray> FromBlob(std::vector<uint8_t> blob);

  /// Parses a view and copies it into an owned blob.
  static Result<OwnedArray> CopyOf(const ArrayRef& ref);

  const ArrayHeader& header() const { return header_; }
  DType dtype() const { return header_.dtype; }
  StorageClass storage() const { return header_.storage; }
  int rank() const { return header_.rank(); }
  const Dims& dims() const { return header_.dims; }
  int64_t num_elements() const { return header_.num_elements(); }

  /// Read-only view over this array.
  ArrayRef ref() const;
  std::span<const uint8_t> blob() const { return blob_; }
  /// Releases the underlying blob bytes.
  std::vector<uint8_t> TakeBlob() && { return std::move(blob_); }

  std::span<uint8_t> mutable_payload() {
    return std::span<uint8_t>(blob_.data() + header_.header_size(),
                              static_cast<size_t>(header_.data_size()));
  }

  /// Typed mutable element span; fails on dtype mismatch.
  template <typename T>
  Result<std::span<T>> MutableData() {
    if (DTypeOf<T>() != dtype() &&
        !(dtype() == DType::kDateTime && DTypeOf<T>() == DType::kInt64)) {
      return Status::TypeMismatch(
          "array holds " + std::string(DTypeName(dtype())) +
          ", requested a different element type");
    }
    auto pl = mutable_payload();
    return std::span<T>(reinterpret_cast<T*>(pl.data()),
                        static_cast<size_t>(num_elements()));
  }

  /// Generic element write at a column-major linear offset.
  Status SetDouble(int64_t linear, double v);
  Status SetComplex(int64_t linear, std::complex<double> v);
  Status SetDoubleAt(std::span<const int64_t> index, double v);

 private:
  OwnedArray(ArrayHeader header, std::vector<uint8_t> blob)
      : header_(std::move(header)), blob_(std::move(blob)) {}

  ArrayHeader header_;
  std::vector<uint8_t> blob_;
};

}  // namespace sqlarray
