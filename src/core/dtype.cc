#include "core/dtype.h"

namespace sqlarray {

int DTypeSize(DType t) {
  switch (t) {
    case DType::kInt8:
      return 1;
    case DType::kInt16:
      return 2;
    case DType::kInt32:
    case DType::kFloat32:
      return 4;
    case DType::kInt64:
    case DType::kFloat64:
    case DType::kComplex64:
    case DType::kDateTime:
      return 8;
    case DType::kComplex128:
      return 16;
  }
  return 0;
}

std::string_view DTypeName(DType t) {
  switch (t) {
    case DType::kInt8:
      return "int8";
    case DType::kInt16:
      return "int16";
    case DType::kInt32:
      return "int32";
    case DType::kInt64:
      return "int64";
    case DType::kFloat32:
      return "float32";
    case DType::kFloat64:
      return "float64";
    case DType::kComplex64:
      return "complex64";
    case DType::kComplex128:
      return "complex128";
    case DType::kDateTime:
      return "datetime";
  }
  return "unknown";
}

std::string_view DTypeSchemaPrefix(DType t) {
  // T-SQL base-type naming: TINYINT/SMALLINT/INT/BIGINT/REAL/FLOAT, plus the
  // complex UDT names and datetime.
  switch (t) {
    case DType::kInt8:
      return "TinyInt";
    case DType::kInt16:
      return "SmallInt";
    case DType::kInt32:
      return "Int";
    case DType::kInt64:
      return "BigInt";
    case DType::kFloat32:
      return "Real";
    case DType::kFloat64:
      return "Float";
    case DType::kComplex64:
      return "Complex";
    case DType::kComplex128:
      return "DoubleComplex";
    case DType::kDateTime:
      return "DateTime";
  }
  return "Unknown";
}

Result<DType> DTypeFromName(std::string_view name) {
  for (int i = 0; i < kNumDTypes; ++i) {
    DType t = static_cast<DType>(i);
    if (DTypeName(t) == name) return t;
  }
  return Status::InvalidArgument("unknown dtype name: " + std::string(name));
}

bool IsIntegerDType(DType t) {
  switch (t) {
    case DType::kInt8:
    case DType::kInt16:
    case DType::kInt32:
    case DType::kInt64:
    case DType::kDateTime:
      return true;
    default:
      return false;
  }
}

bool IsRealDType(DType t) {
  return t == DType::kFloat32 || t == DType::kFloat64;
}

bool IsComplexDType(DType t) {
  return t == DType::kComplex64 || t == DType::kComplex128;
}

Result<DType> DTypeFromByte(uint8_t b) {
  if (b >= kNumDTypes) {
    return Status::Corruption("invalid dtype byte: " + std::to_string(b));
  }
  return static_cast<DType>(b);
}

}  // namespace sqlarray
