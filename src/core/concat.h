// Table <-> array bridging (Sec. 4.2 and 5.1 of the paper).
//
// ConcatBuilder assembles an array from row-by-row (index, value) data — the
// functionality the paper exposes both as the Concat user-defined aggregate
// and as a reader-style UDF. The builder itself is shared; the two SQL
// surfaces differ only in how the engine drives it (the UDA serializes the
// builder state between rows, which is what made the UDA slow).
//
// ToTable is the inverse: it explodes an array into (index..., value) rows.
#pragma once

#include <vector>

#include "common/dims.h"
#include "common/status.h"
#include "core/array.h"

namespace sqlarray {

/// Incrementally assembles an array of a declared shape from
/// (multi-index, value) rows.
class ConcatBuilder {
 public:
  /// Declares the target dtype and shape. Elements not covered by any row
  /// remain zero.
  static Result<ConcatBuilder> Create(DType dtype, Dims dims);

  /// Adds one row. Duplicate indices overwrite.
  Status Add(std::span<const int64_t> index, double value);

  /// Adds one row by linear (column-major) element offset.
  Status AddLinear(int64_t linear, double value);

  /// Number of rows consumed so far.
  int64_t rows_consumed() const { return rows_; }

  /// Header (dtype + shape) of the array being assembled.
  const ArrayHeader& header() const { return array_.header(); }

  /// Serializes the builder state (header + payload + row count). This is
  /// what a UDA must do between every pair of rows; its cost is the subject
  /// of the A3 experiment.
  std::vector<uint8_t> SerializeState() const;

  /// Restores a builder from serialized state.
  static Result<ConcatBuilder> DeserializeState(
      std::span<const uint8_t> state);

  /// Finishes and returns the assembled array.
  Result<OwnedArray> Finish() &&;

 private:
  explicit ConcatBuilder(OwnedArray array) : array_(std::move(array)) {}

  OwnedArray array_;
  int64_t rows_ = 0;
};

/// One exploded row of an array: the multi-index and the element value.
struct ArrayTableRow {
  Dims index;
  double value;
};

/// Explodes a (real-valued) array into rows in column-major order
/// (ToTable / MatrixToTable in T-SQL).
Result<std::vector<ArrayTableRow>> ToTable(const ArrayRef& a);

}  // namespace sqlarray
