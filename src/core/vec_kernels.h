// Null-aware vectorized kernels over ColumnVec payloads.
//
// These are the inner loops of the columnar expression pipeline
// (engine/vec_expr.h): elementwise arithmetic, comparisons, boolean
// combine, lane conversions, strided gathers out of row-major batches, and
// the aggregate folds. Two implementations exist for the hot elementwise
// family:
//
//   * explicit AVX2 intrinsics (x86-64, compiled via function-level target
//     attributes so the baseline build still carries them), selected at
//     runtime when the CPU supports AVX2;
//   * a portable scalar loop — the fallback on other ISAs (NEON builds lean
//     on -O3 auto-vectorization) and the reference the SIMD variants must
//     match bit for bit. SetForceScalar(true) pins every call to this path
//     so one binary tests both (tests/test_vec.cc does, differentially).
//
// Building with -DSQLARRAY_FORCE_SCALAR_KERNELS=ON compiles the SIMD
// variants out entirely — the ctest vec_scalar_suite runs the differential
// suite in such a tree.
//
// Numeric contracts (must mirror engine::EvalBinaryOp / EvalUnaryOp and
// AccumulateNative exactly — the row path is the oracle):
//   * int64 +,-,* wrap; int64 / and % raise InvalidArgument on a zero
//     divisor AT A VALID LANE ("division by zero" / "modulo by zero");
//     float64 / raises on a divisor that compares equal to 0.0.
//   * comparisons run in the double domain (int64 operands are converted
//     first, matching Value::AsDouble coercion) and yield int64 0/1;
//     NaN compares unordered (only != is true).
//   * AND/OR/NOT truthiness is int64 (float operands truncate first) and is
//     strict, not short-circuit: both operands are always evaluated.
//   * the aggregate folds keep the row loop's exact serial order:
//     sum += d one element at a time, mn/mx via std::min/std::max (whose
//     NaN- and signed-zero asymmetry is part of the contract), so results
//     are bit-identical to row-at-a-time accumulation. Elementwise kernels
//     may vectorize freely — per-lane IEEE ops are exact.
//   * division/modulo kernels write 0 at invalid lanes (deterministic
//     buffers) and skip their zero checks there: NULL operands never raise.
//
// Cancellation: every kernel probes gov::CheckThreadCancel() between
// blocks of kCancelBlock elements, so a runaway vectorized query dies at
// the same granularity as the row loops.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/column.h"

namespace sqlarray::col {

/// Elements per cancellation probe inside the kernel loops.
inline constexpr int32_t kCancelBlock = 8192;

/// Pins every kernel to the portable scalar path (process-wide; tests).
void SetForceScalar(bool force);
bool ForceScalarActive();
/// True when the AVX2 variants are compiled in and this CPU supports them
/// (independent of the force-scalar override).
bool SimdAvailable();

// ---------------------------------------------------------------------------
// Gathers: strided loads out of a row-major batch into a dense lane.
// `sel` selects batch row indices (nullptr = rows 0..n-1); `base` points at
// row 0's column byte, `stride` is the serialized row size.
// ---------------------------------------------------------------------------

void GatherI64FromI32(const uint8_t* base, int64_t stride, const int32_t* sel,
                      int32_t n, int64_t* out);
void GatherI64FromI64(const uint8_t* base, int64_t stride, const int32_t* sel,
                      int32_t n, int64_t* out);
void GatherF64FromF32(const uint8_t* base, int64_t stride, const int32_t* sel,
                      int32_t n, double* out);
void GatherF64FromF64(const uint8_t* base, int64_t stride, const int32_t* sel,
                      int32_t n, double* out);

// ---------------------------------------------------------------------------
// Elementwise kernels (dense, n lanes). `valid` masks the error checks of
// division/modulo (nullptr = every lane valid); value lanes are computed
// unconditionally elsewhere — invalid lanes hold deterministic garbage the
// evaluator never reads.
// ---------------------------------------------------------------------------

Status AddI64(const int64_t* a, const int64_t* b, int32_t n, int64_t* out);
Status SubI64(const int64_t* a, const int64_t* b, int32_t n, int64_t* out);
Status MulI64(const int64_t* a, const int64_t* b, int32_t n, int64_t* out);
Status DivI64(const int64_t* a, const int64_t* b, const uint64_t* valid,
              int32_t n, int64_t* out);
Status ModI64(const int64_t* a, const int64_t* b, const uint64_t* valid,
              int32_t n, int64_t* out);

Status AddF64(const double* a, const double* b, int32_t n, double* out);
Status SubF64(const double* a, const double* b, int32_t n, double* out);
Status MulF64(const double* a, const double* b, int32_t n, double* out);
Status DivF64(const double* a, const double* b, const uint64_t* valid,
              int32_t n, double* out);

/// Comparison operators in the double domain; output is int64 0/1.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
Status CmpF64(CmpOp op, const double* a, const double* b, int32_t n,
              int64_t* out);

/// Strict boolean combine over int64 truthiness: out = 0/1.
Status AndI64(const int64_t* a, const int64_t* b, int32_t n, int64_t* out);
Status OrI64(const int64_t* a, const int64_t* b, int32_t n, int64_t* out);
Status NotI64(const int64_t* a, int32_t n, int64_t* out);

Status NegI64(const int64_t* a, int32_t n, int64_t* out);
Status NegF64(const double* a, int32_t n, double* out);

/// Lane conversions: int64 -> double widens (static_cast), double -> int64
/// truncates toward zero (static_cast — Value::AsInt coercion).
Status I64ToF64(const int64_t* a, int32_t n, double* out);
Status F64ToI64(const double* a, int32_t n, int64_t* out);

/// Broadcast fills for literal/variable operands.
void FillI64(int64_t v, int32_t n, int64_t* out);
void FillF64(double v, int32_t n, double* out);

// ---------------------------------------------------------------------------
// Filter and aggregate consumers
// ---------------------------------------------------------------------------

/// Appends to `sel` every row index with a set validity bit and a nonzero
/// value — SQL truthiness over an int64 keep column (NULL is false).
void BuildSel(const int64_t* v, const uint64_t* valid, int32_t n,
              std::vector<int32_t>* sel);

/// Number of valid rows (whole-word popcount; nullptr = n).
int64_t CountValid(const uint64_t* valid, int32_t n);

/// One native aggregate accumulator, mirroring engine AggState's numeric
/// fields. Folds CONTINUE the caller's serial chain: seed the struct from
/// the live accumulator, fold, copy back — bit-identical to accumulating
/// row by row.
struct VecAggState {
  int64_t count = 0;
  double sum = 0;
  double mn = 0;
  double mx = 0;
  bool int_only = true;
  int64_t isum = 0;
};

/// Folds valid int64 lanes: isum += v; count++; sum += double(v);
/// mn/mx via std::min/std::max — exactly AccumulateNative on kInt64 Values.
Status FoldI64(const int64_t* a, const uint64_t* valid, int32_t n,
               VecAggState* st);
/// Folds valid float64 lanes (int_only clears per valid row) — exactly
/// AccumulateNative on kFloat64 Values, NaN asymmetry included.
Status FoldF64(const double* a, const uint64_t* valid, int32_t n,
               VecAggState* st);

}  // namespace sqlarray::col
