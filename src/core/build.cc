#include "core/build.h"

namespace sqlarray {

Result<OwnedArray> MakeFull(DType dtype, Dims dims, double fill) {
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(dtype, std::move(dims)));
  const int64_t n = out.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    SQLARRAY_RETURN_IF_ERROR(out.SetDouble(i, fill));
  }
  return out;
}

Result<OwnedArray> MakeRamp(DType dtype, int64_t n, double start,
                            double step) {
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out, OwnedArray::Zeros(dtype, {n}));
  for (int64_t i = 0; i < n; ++i) {
    SQLARRAY_RETURN_IF_ERROR(
        out.SetDouble(i, start + step * static_cast<double>(i)));
  }
  return out;
}

}  // namespace sqlarray
