#include "core/stream_ops.h"

#include <algorithm>
#include <cstring>

namespace sqlarray {

Result<ArrayHeader> ReadHeaderFromSource(ByteSource* source) {
  // First read the fixed prefix to learn the header size, then the rest.
  uint8_t prefix[kMaxHeaderPrefixSize];
  int64_t avail = source->size();
  if (avail < 8) {
    return Status::Corruption("streamed blob shorter than minimal header");
  }
  int64_t take = std::min<int64_t>(kMaxHeaderPrefixSize, avail);
  SQLARRAY_RETURN_IF_ERROR(source->ReadAt(
      0, std::span<uint8_t>(prefix, static_cast<size_t>(take))));
  SQLARRAY_ASSIGN_OR_RETURN(
      int64_t hsize,
      PeekHeaderSize(std::span<const uint8_t>(prefix,
                                              static_cast<size_t>(take))));
  if (hsize > avail) {
    return Status::Corruption("streamed blob truncated in header");
  }
  std::vector<uint8_t> header_bytes(static_cast<size_t>(hsize));
  SQLARRAY_RETURN_IF_ERROR(source->ReadAt(0, header_bytes));
  SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, DecodeHeader(header_bytes));
  if (h.blob_size() > avail) {
    return Status::Corruption("streamed blob payload truncated");
  }
  return h;
}

Result<double> StreamItem(ByteSource* source,
                          std::span<const int64_t> index) {
  SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, ReadHeaderFromSource(source));
  SQLARRAY_ASSIGN_OR_RETURN(int64_t linear, LinearIndex(h.dims, index));
  const int esize = DTypeSize(h.dtype);
  uint8_t buf[16];
  SQLARRAY_RETURN_IF_ERROR(source->ReadAt(
      h.header_size() + linear * esize,
      std::span<uint8_t>(buf, static_cast<size_t>(esize))));
  return ReadScalarAsDouble(h.dtype, buf);
}

Result<OwnedArray> StreamSubarray(ByteSource* source,
                                  std::span<const int64_t> offset,
                                  std::span<const int64_t> sizes,
                                  bool collapse) {
  SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, ReadHeaderFromSource(source));
  const Dims& dims = h.dims;
  if (offset.size() != dims.size() || sizes.size() != dims.size()) {
    return Status::InvalidArgument(
        "subarray offset/size rank must match the array rank");
  }
  for (size_t k = 0; k < dims.size(); ++k) {
    if (offset[k] < 0 || sizes[k] < 1 || offset[k] + sizes[k] > dims[k]) {
      return Status::OutOfRange("subarray range out of bounds for dimension " +
                                std::to_string(k));
    }
  }

  Dims out_dims;
  if (collapse) {
    for (int64_t s : sizes) {
      if (s != 1) out_dims.push_back(s);
    }
    if (out_dims.empty()) out_dims.push_back(1);
  } else {
    out_dims.assign(sizes.begin(), sizes.end());
  }
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(h.dtype, out_dims));

  const int esize = DTypeSize(h.dtype);
  const Dims strides = ColumnMajorStrides(dims);
  const int rank = static_cast<int>(dims.size());
  const int64_t run_bytes = sizes[0] * esize;
  int64_t outer = 1;
  for (int k = 1; k < rank; ++k) outer *= sizes[k];

  // Coalesce adjacent runs: when the subarray spans full leading dimensions,
  // consecutive runs are contiguous in the source and can be read in one
  // ReadAt call. Detect the longest contiguous prefix.
  int64_t contiguous_runs = 1;
  {
    int k = 1;
    bool full_prefix = (offset[0] == 0 && sizes[0] == dims[0]);
    while (full_prefix && k < rank) {
      contiguous_runs *= sizes[k];
      if (!(offset[k] == 0 && sizes[k] == dims[k])) break;
      ++k;
    }
    if (!full_prefix) contiguous_runs = 1;
  }

  Dims cursor(rank, 0);
  uint8_t* d = out.mutable_payload().data();
  for (int64_t block = 0; block < outer; block += contiguous_runs) {
    int64_t src_linear = offset[0];
    for (int k = 1; k < rank; ++k) {
      src_linear += (offset[k] + cursor[k]) * strides[k];
    }
    int64_t bytes = run_bytes * contiguous_runs;
    SQLARRAY_RETURN_IF_ERROR(source->ReadAt(
        h.header_size() + src_linear * esize,
        std::span<uint8_t>(d, static_cast<size_t>(bytes))));
    d += bytes;
    // Advance the outer cursor by contiguous_runs positions.
    for (int64_t step = 0; step < contiguous_runs; ++step) {
      for (int k = 1; k < rank; ++k) {
        if (++cursor[k] < sizes[k]) break;
        cursor[k] = 0;
      }
    }
  }
  return out;
}

Result<OwnedArray> StreamReadAll(ByteSource* source) {
  SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, ReadHeaderFromSource(source));
  std::vector<uint8_t> blob(static_cast<size_t>(h.blob_size()));
  SQLARRAY_RETURN_IF_ERROR(source->ReadAt(0, blob));
  return OwnedArray::FromBlob(std::move(blob));
}

}  // namespace sqlarray
