// Element types supported by the array library.
//
// Mirrors Sec. 3.4 of the paper: signed integers (8/16/32/64 bits), IEEE
// float and double, single- and double-precision complex, and datetime.
// Fixed-precision decimals are deliberately unsupported (scientific data).
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace sqlarray {

/// Underlying element type of an array blob. The numeric values are part of
/// the serialized header format and must not be reordered.
enum class DType : uint8_t {
  kInt8 = 0,
  kInt16 = 1,
  kInt32 = 2,
  kInt64 = 3,
  kFloat32 = 4,
  kFloat64 = 5,
  kComplex64 = 6,    // pair of float32 (re, im)
  kComplex128 = 7,   // pair of float64 (re, im)
  kDateTime = 8,     // int64 microseconds since the Unix epoch
};

inline constexpr int kNumDTypes = 9;

/// Element width in bytes.
int DTypeSize(DType t);

/// Lower-case type name ("int32", "float64", "complex128", ...).
std::string_view DTypeName(DType t);

/// SQL schema prefix used for UDF schemas ("TinyInt", "SmallInt", "Int",
/// "BigInt", "Real", "Float", "Complex", "DoubleComplex", "DateTime"),
/// following the paper's IntArray / FloatArray / ... naming.
std::string_view DTypeSchemaPrefix(DType t);

/// Parses a lower-case type name back to a DType.
Result<DType> DTypeFromName(std::string_view name);

/// True for int8/16/32/64 and datetime (integer-backed) types.
bool IsIntegerDType(DType t);

/// True for float32/float64.
bool IsRealDType(DType t);

/// True for complex64/complex128.
bool IsComplexDType(DType t);

/// Validates that the byte is a known DType value.
Result<DType> DTypeFromByte(uint8_t b);

/// Compile-time tag carrying a C++ element type through dispatch.
template <typename T>
struct TypeTag {
  using type = T;
};

/// Maps a C++ element type to its DType at compile time.
template <typename T>
constexpr DType DTypeOf();

template <>
constexpr DType DTypeOf<int8_t>() { return DType::kInt8; }
template <>
constexpr DType DTypeOf<int16_t>() { return DType::kInt16; }
template <>
constexpr DType DTypeOf<int32_t>() { return DType::kInt32; }
template <>
constexpr DType DTypeOf<int64_t>() { return DType::kInt64; }
template <>
constexpr DType DTypeOf<float>() { return DType::kFloat32; }
template <>
constexpr DType DTypeOf<double>() { return DType::kFloat64; }
template <>
constexpr DType DTypeOf<std::complex<float>>() { return DType::kComplex64; }
template <>
constexpr DType DTypeOf<std::complex<double>>() { return DType::kComplex128; }

/// Invokes `f(TypeTag<T>{})` with the C++ type matching `t`. DateTime
/// dispatches as int64 (it is integer-backed).
template <typename F>
auto DispatchDType(DType t, F&& f) {
  switch (t) {
    case DType::kInt8:
      return f(TypeTag<int8_t>{});
    case DType::kInt16:
      return f(TypeTag<int16_t>{});
    case DType::kInt32:
      return f(TypeTag<int32_t>{});
    case DType::kInt64:
    case DType::kDateTime:
      return f(TypeTag<int64_t>{});
    case DType::kFloat32:
      return f(TypeTag<float>{});
    case DType::kFloat64:
      return f(TypeTag<double>{});
    case DType::kComplex64:
      return f(TypeTag<std::complex<float>>{});
    case DType::kComplex128:
      return f(TypeTag<std::complex<double>>{});
  }
  // Unreachable for valid DType values; dispatch as double to satisfy the
  // compiler without UB.
  return f(TypeTag<double>{});
}

}  // namespace sqlarray
