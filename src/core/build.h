// Convenience builders mirroring the paper's Vector_N / Matrix_N functions.
#pragma once

#include <initializer_list>

#include "common/status.h"
#include "core/array.h"

namespace sqlarray {

/// Builds a rank-1 array from listed values (Vector_N in T-SQL).
template <typename T>
Result<OwnedArray> MakeVector(std::initializer_list<T> values) {
  std::vector<T> v(values);
  return OwnedArray::FromVector<T>(std::span<const T>(v));
}

/// Builds a square rank-2 array from n*n listed values in column-major order
/// (Matrix_N in T-SQL builds an n-by-n matrix from n^2 values).
template <typename T>
Result<OwnedArray> MakeSquareMatrix(std::initializer_list<T> values) {
  std::vector<T> v(values);
  int64_t n = 0;
  while (n * n < static_cast<int64_t>(v.size())) ++n;
  if (n * n != static_cast<int64_t>(v.size())) {
    return Status::InvalidArgument(
        "square matrix builder requires a perfect-square value count");
  }
  return OwnedArray::FromValues<T>({n, n}, std::span<const T>(v));
}

/// Builds an array of the given shape filled with a constant.
Result<OwnedArray> MakeFull(DType dtype, Dims dims, double fill);

/// Builds a rank-1 arithmetic ramp: start, start+step, ... (n elements).
Result<OwnedArray> MakeRamp(DType dtype, int64_t n, double start, double step);

}  // namespace sqlarray
