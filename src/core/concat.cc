#include "core/concat.h"

#include <cstring>

#include "common/bytes.h"

namespace sqlarray {

Result<ConcatBuilder> ConcatBuilder::Create(DType dtype, Dims dims) {
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a,
                            OwnedArray::Zeros(dtype, std::move(dims)));
  return ConcatBuilder(std::move(a));
}

Status ConcatBuilder::Add(std::span<const int64_t> index, double value) {
  SQLARRAY_RETURN_IF_ERROR(array_.SetDoubleAt(index, value));
  ++rows_;
  return Status::OK();
}

Status ConcatBuilder::AddLinear(int64_t linear, double value) {
  SQLARRAY_RETURN_IF_ERROR(array_.SetDouble(linear, value));
  ++rows_;
  return Status::OK();
}

std::vector<uint8_t> ConcatBuilder::SerializeState() const {
  std::vector<uint8_t> out;
  AppendLE<int64_t>(&out, rows_);
  auto blob = array_.blob();
  out.insert(out.end(), blob.begin(), blob.end());
  return out;
}

Result<ConcatBuilder> ConcatBuilder::DeserializeState(
    std::span<const uint8_t> state) {
  if (state.size() < 8) {
    return Status::Corruption("concat state truncated");
  }
  int64_t rows = DecodeLE<int64_t>(state.data());
  SQLARRAY_ASSIGN_OR_RETURN(
      OwnedArray a,
      OwnedArray::FromBlob(std::vector<uint8_t>(state.begin() + 8,
                                                state.end())));
  ConcatBuilder b(std::move(a));
  b.rows_ = rows;
  return b;
}

Result<OwnedArray> ConcatBuilder::Finish() && {
  return std::move(array_);
}

Result<std::vector<ArrayTableRow>> ToTable(const ArrayRef& a) {
  if (IsComplexDType(a.dtype())) {
    return Status::TypeMismatch(
        "ToTable explodes real-valued arrays; convert complex arrays first");
  }
  std::vector<ArrayTableRow> rows;
  const int64_t n = a.num_elements();
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Unlinearize(a.dims(), i), a.GetDouble(i).value()});
  }
  return rows;
}

}  // namespace sqlarray
