#include "core/column.h"

#include <cstring>

namespace sqlarray::col {

uint64_t* MutableValidity_FillAllValid(std::vector<uint64_t>* valid,
                                       int32_t n) {
  const int32_t words = ValidityWords(n);
  valid->assign(words, ~uint64_t{0});
  // Tail bits past n stay zero so word-wise popcounts need no masking.
  const int32_t tail = n & 63;
  if (words > 0 && tail != 0) {
    (*valid)[words - 1] = (~uint64_t{0}) >> (64 - tail);
  }
  return valid->data();
}

uint64_t* ColumnVec::MutableValidity() {
  if (valid_.empty()) {
    return MutableValidity_FillAllValid(&valid_, n_);
  }
  return valid_.data();
}

void ColumnVec::SetAllNull() {
  valid_.assign(ValidityWords(n_), 0);
  if (valid_.empty()) valid_.push_back(0);  // n_ == 0: still "not all valid"
}

void ColumnVec::IntersectValidity(const ColumnVec& a, const ColumnVec& b) {
  if (a.all_valid() && b.all_valid()) {
    valid_.clear();
    return;
  }
  const int32_t words = ValidityWords(n_);
  valid_.resize(words > 0 ? words : 1);
  if (a.all_valid()) {
    std::memcpy(valid_.data(), b.valid_.data(),
                static_cast<size_t>(words) * 8);
    return;
  }
  if (b.all_valid()) {
    std::memcpy(valid_.data(), a.valid_.data(),
                static_cast<size_t>(words) * 8);
    return;
  }
  for (int32_t w = 0; w < words; ++w) {
    valid_[w] = a.valid_[w] & b.valid_[w];
  }
}

void ColumnVec::CopyValidity(const ColumnVec& a) {
  if (a.all_valid()) {
    valid_.clear();
    return;
  }
  const int32_t words = ValidityWords(n_);
  valid_.resize(words > 0 ? words : 1);
  std::memcpy(valid_.data(), a.valid_.data(), static_cast<size_t>(words) * 8);
}

}  // namespace sqlarray::col
