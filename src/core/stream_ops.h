// Streamed array operations over a ByteSource.
//
// These read only the byte ranges an operation touches, which is the key
// optimization for out-of-page (max) arrays: extracting a small subarray of a
// multi-megabyte blob reads a few kilobytes instead of the whole B-tree
// (Sec. 3.3 and the Sec. 2.1 interpolation use case).
#pragma once

#include "common/dims.h"
#include "common/status.h"
#include "core/array.h"
#include "core/byte_source.h"

namespace sqlarray {

/// Reads and validates only the header of a streamed array blob.
Result<ArrayHeader> ReadHeaderFromSource(ByteSource* source);

/// Reads one element at `index`, touching exactly one element's bytes plus
/// the header.
Result<double> StreamItem(ByteSource* source, std::span<const int64_t> index);

/// Extracts a contiguous subarray, reading only the runs the subarray
/// covers. Semantics match Subarray() in ops.h (including `collapse`).
Result<OwnedArray> StreamSubarray(ByteSource* source,
                                  std::span<const int64_t> offset,
                                  std::span<const int64_t> sizes,
                                  bool collapse);

/// Reads the whole array (header + payload) from the source.
Result<OwnedArray> StreamReadAll(ByteSource* source);

}  // namespace sqlarray
