// Experiment A1 (Sec. 3.3): on-page (short) arrays vs out-of-page (max)
// arrays. Short blobs arrive as plain in-memory buffers ("a simple memory
// copy operation"); max blobs go through the blob B-tree and its stream
// wrapper. Measures Item and Subarray on both classes, both as native wall
// time and modeled page I/O.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/ops.h"
#include "core/stream_ops.h"

namespace sqlarray::bench {
namespace {

/// A short 5-vector blob (the Tvector payload).
std::vector<uint8_t> ShortBlob() {
  OwnedArray a = CheckResult(
      OwnedArray::Zeros(DType::kFloat64, {5}, StorageClass::kShort), "short");
  return std::vector<uint8_t>(a.blob().begin(), a.blob().end());
}

/// A database holding one max-array blob of n doubles; returns its id.
struct MaxFixture {
  storage::Database db;
  storage::BlobId id;

  explicit MaxFixture(int64_t n) {
    OwnedArray a = CheckResult(
        OwnedArray::Zeros(DType::kFloat64, {n}, StorageClass::kMax), "max");
    id = CheckResult(
        db.blob_store()->Write(a.blob()), "blob write");
  }
};

void BM_ShortItem(benchmark::State& state) {
  std::vector<uint8_t> blob = ShortBlob();
  Dims idx{3};
  for (auto _ : state) {
    ArrayRef ref = ArrayRef::Parse(blob).value();
    benchmark::DoNotOptimize(Item(ref, idx).value());
  }
}
BENCHMARK(BM_ShortItem);

void BM_MaxItemStreamedColdCache(benchmark::State& state) {
  MaxFixture fixture(100000);  // 800 kB blob
  Dims idx{54321};
  int64_t pages = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fixture.db.ClearCache();
    fixture.db.disk()->ResetStats();
    state.ResumeTiming();
    storage::BlobStream stream =
        storage::BlobStream::Open(fixture.db.buffer_pool(), fixture.id)
            .value();
    benchmark::DoNotOptimize(StreamItem(&stream, idx).value());
    pages += fixture.db.disk()->stats().pages_read;
  }
  state.counters["pages_per_item"] =
      static_cast<double>(pages) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MaxItemStreamedColdCache);

void BM_MaxItemFullReadColdCache(benchmark::State& state) {
  // The naive alternative: materialize the whole blob to read one element.
  MaxFixture fixture(100000);
  Dims idx{54321};
  int64_t pages = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fixture.db.ClearCache();
    fixture.db.disk()->ResetStats();
    state.ResumeTiming();
    std::vector<uint8_t> blob =
        fixture.db.blob_store()->ReadAll(fixture.id).value();
    ArrayRef ref = ArrayRef::Parse(blob).value();
    benchmark::DoNotOptimize(Item(ref, idx).value());
    pages += fixture.db.disk()->stats().pages_read;
  }
  state.counters["pages_per_item"] =
      static_cast<double>(pages) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MaxItemFullReadColdCache);

void BM_ShortSubarray(benchmark::State& state) {
  // 30 x 30 doubles = 7224-byte blob: the biggest short class allows.
  OwnedArray a = CheckResult(
      OwnedArray::Zeros(DType::kFloat64, {30, 30}, StorageClass::kShort),
      "matrix");
  Dims offset{5, 5}, sizes{8, 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Subarray(a.ref(), offset, sizes, false).value());
  }
}
BENCHMARK(BM_ShortSubarray);

void BM_MaxSubarrayStreamed(benchmark::State& state) {
  storage::Database db;
  OwnedArray a = CheckResult(
      OwnedArray::Zeros(DType::kFloat64, {512, 512}, StorageClass::kMax),
      "big matrix");
  storage::BlobId id =
      CheckResult(db.blob_store()->Write(a.blob()), "blob write");
  Dims offset{100, 100}, sizes{8, 8};
  for (auto _ : state) {
    storage::BlobStream stream =
        storage::BlobStream::Open(db.buffer_pool(), id).value();
    benchmark::DoNotOptimize(
        StreamSubarray(&stream, offset, sizes, false).value());
  }
}
BENCHMARK(BM_MaxSubarrayStreamed);

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Banner("A1", "short (on-page) vs max (out-of-page) access");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sqlarray::bench::FlushJson();
  return 0;
}
