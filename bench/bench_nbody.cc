// Experiment C3 (Sec. 2.3): N-body storage and analysis pipelines.
//
// (a) Storage: point-per-row vs bucketed array rows — the paper's 1.6
//     trillion rows vs ~1 billion argument, at bench scale.
// (b) Analysis: FOF halos, CIC density + power spectrum, merger links,
//     two-point correlation, light cone — the full tool chain timed.
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "sci/nbody/bucket.h"
#include "sci/nbody/cic.h"
#include "sci/nbody/correlation.h"
#include "sci/nbody/fof.h"
#include "sci/nbody/lightcone.h"
#include "sci/nbody/merger.h"

namespace sqlarray::bench {
namespace {

void Run() {
  Banner("C3", "N-body: bucketed storage + analysis pipelines");
  nbody::SnapshotConfig config;
  config.num_halos = 24;
  config.particles_per_halo = 1200;
  config.background_particles = 20000;
  nbody::Snapshot snap = nbody::MakeInitialSnapshot(config, 77);
  const int64_t n = static_cast<int64_t>(snap.particles.size());
  std::printf("snapshot: %lld particles in a %.0f^3 box\n",
              static_cast<long long>(n), config.box);

  // (a) Storage layouts.
  {
    storage::Database db;
    Stopwatch w1;
    storage::Table* perpoint =
        CheckResult(nbody::LoadPerPoint(snap, &db, "points"), "per-point");
    double perpoint_s = w1.ElapsedSeconds();
    Stopwatch w2;
    storage::Table* bucketed = CheckResult(
        nbody::LoadBucketed(snap, &db, "buckets", 8), "bucketed");
    double bucketed_s = w2.ElapsedSeconds();

    std::printf("\n%12s | %10s | %10s | %10s\n", "layout", "rows",
                "MB (index)", "load s");
    std::printf("%s\n", std::string(52, '-').c_str());
    std::printf("%12s | %10lld | %10.2f | %10.2f\n", "per-point",
                static_cast<long long>(perpoint->row_count()),
                perpoint->data_bytes() / 1e6, perpoint_s);
    std::printf("%12s | %10lld | %10.2f | %10.2f\n", "bucketed",
                static_cast<long long>(bucketed->row_count()),
                bucketed->data_bytes() / 1e6, bucketed_s);
    std::printf("row reduction: %.0fx (paper: 1.6T -> ~1G rows, ~1600x at "
                "a few thousand particles per bucket)\n",
                static_cast<double>(perpoint->row_count()) /
                    static_cast<double>(bucketed->row_count()));
  }

  // (b) Analysis pipelines.
  {
    Stopwatch w;
    nbody::FofResult fof =
        CheckResult(nbody::FriendsOfFriends(snap, 0.7, 50), "fof");
    std::printf("\nFOF (link 0.7): %zu halos, largest %zu members, %.2f s\n",
                fof.halos.size(),
                fof.halos.empty() ? 0 : fof.halos[0].size(),
                w.ElapsedSeconds());

    Stopwatch w2;
    const int64_t m = 64;
    std::vector<double> delta =
        CheckResult(nbody::CicDensity(snap, m), "cic");
    auto power = CheckResult(
        nbody::PowerSpectrum(delta, m, config.box, 12), "power");
    std::printf("CIC %lld^3 + P(k): %.2f s; first bins:",
                static_cast<long long>(m), w2.ElapsedSeconds());
    for (int b = 0; b < 4; ++b) {
      std::printf("  P(%.2f)=%.2e", power[b].k, power[b].power);
    }
    std::printf("\n");

    Stopwatch w3;
    nbody::Snapshot next = nbody::EvolveSnapshot(snap, config, 78);
    nbody::FofResult fof2 =
        CheckResult(nbody::FriendsOfFriends(next, 0.7, 50), "fof2");
    auto links =
        CheckResult(nbody::LinkHalos(snap, fof, next, fof2, 0.25), "links");
    std::printf("merger links across one step: %zu of %zu halos tracked, "
                "%.2f s\n",
                links.size(), fof.halos.size(), w3.ElapsedSeconds());

    Stopwatch w4;
    auto xi = CheckResult(nbody::TwoPointCorrelation(snap, 8.0, 16), "xi");
    std::printf("two-point correlation (r < 8): xi(r1)=%.1f xi(r8)=%.2f, "
                "%.2f s\n",
                xi[1].xi, xi[8].xi, w4.ElapsedSeconds());

    Stopwatch w5;
    std::vector<nbody::Snapshot> snaps{snap, next};
    nbody::LightconeConfig cone;
    cone.observer = {-60, 50, 50};
    cone.direction = {1, 0, 0};
    cone.half_angle_deg = 25;
    cone.r0 = 50;
    cone.shell_depth = 60;
    auto lc = CheckResult(nbody::BuildLightcone(snaps, cone), "lightcone");
    std::printf("light cone through 2 snapshots: %zu points, %.2f s\n",
                lc.size(), w5.ElapsedSeconds());
  }
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
