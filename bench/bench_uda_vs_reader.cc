// Experiment A3 (Sec. 4.2): the Concat UDA serializes its whole accumulator
// state on every row, which made it "prohibitive"; the paper replaced it
// with a reader-style scalar UDF that takes a SQL query string. Both paths
// are run over growing tables; the UDA's modeled per-row cost grows with the
// array size while the reader's stays flat.
#include "bench/bench_util.h"
#include "common/stopwatch.h"

namespace sqlarray::bench {
namespace {

void Run() {
  Banner("A3", "Concat UDA vs reader-style ConcatQuery");

  std::printf("%8s | %30s | %30s | %14s\n", "elements",
              "UDA (wall ms, modeled CPU s)",
              "reader (wall ms, modeled CPU s)", "modeled ratio");
  std::printf("%s\n", std::string(94, '-').c_str());

  for (int64_t n : {256, 1024, 4096, 16384}) {
    BenchServer server;
    // One table with n (index, value) rows.
    Check(server.session
              .Execute("CREATE TABLE cells (id BIGINT, ix BIGINT, v FLOAT)")
              .status(),
          "create");
    storage::Table* table =
        CheckResult(server.db.GetTable("cells"), "cells");
    auto load = CheckResult(table->StartBulkLoad(), "bulk");
    for (int64_t i = 0; i < n; ++i) {
      Check(load.Add({i, i, static_cast<double>(i) * 0.5}), "insert");
    }
    Check(load.Finish(), "finish");

    Check(server.session
              .Execute("DECLARE @l VARBINARY(100) = IntArray.Vector_1(" +
                       std::to_string(n) + ")")
              .status(),
          "declare dims");
    Check(server.session.Execute("DECLARE @a VARBINARY(MAX)").status(),
          "declare a");
    Check(server.session.Execute("DECLARE @r VARBINARY(MAX)").status(),
          "declare r");

    Stopwatch uda_watch;
    Check(server.session
              .Execute("SELECT @a = FloatArrayMax.Concat(@l, ix, v) "
                       "FROM cells")
              .status(),
          "uda");
    double uda_wall = uda_watch.ElapsedSeconds();
    engine::QueryStats uda_stats = server.session.last_stats();

    Stopwatch reader_watch;
    Check(server.session
              .Execute("SET @r = FloatArrayMax.ConcatQuery(@l, "
                       "'SELECT ix, v FROM cells')")
              .status(),
          "reader");
    double reader_wall = reader_watch.ElapsedSeconds();
    engine::QueryStats reader_stats = server.session.last_stats();

    // Verify both built the same array.
    auto a = server.session.GetVariable("a").value().MaterializeBytes();
    auto r = server.session.GetVariable("r").value().MaterializeBytes();
    if (!(a.value() == r.value())) {
      std::printf("MISMATCH between UDA and reader results!\n");
    }

    // Reader stats: one CLR boundary crossing plus the nested scan's work,
    // all merged into the SET statement's stats by the session.
    double reader_cpu = reader_stats.cpu_core_seconds;
    double ratio = uda_stats.cpu_core_seconds / std::max(1e-12, reader_cpu);
    std::printf("%8lld | %16.1f %13.4f | %16.1f %13.4f | %12.1fx\n",
                static_cast<long long>(n), uda_wall * 1e3,
                uda_stats.cpu_core_seconds, reader_wall * 1e3, reader_cpu,
                ratio);
  }
  std::printf(
      "\nexpected shape: the UDA's modeled CPU grows ~quadratically (state "
      "of ~8n bytes serialized twice per row); the reader grows linearly. "
      "This is why the paper abandoned the UDA (Sec. 4.2).\n");
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
