// Experiment U1 (Sec. 7.1): the CLR UDF boundary costs ~2 us per call; an
// empty UDF burns >= 38 % of the CPU of its query; real item extraction adds
// ~22 % on top. This bench measures the REAL (native) per-call wall cost of
// the hosted functions and prints the modeled decomposition next to it.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace sqlarray::bench {
namespace {

engine::FunctionRegistry* Registry() {
  static engine::FunctionRegistry* registry = [] {
    auto* r = new engine::FunctionRegistry();
    Check(udfs::RegisterAllUdfs(r), "udf registration");
    return r;
  }();
  return registry;
}

engine::Value VectorArg() {
  OwnedArray vec = CheckResult(
      OwnedArray::Zeros(DType::kFloat64, {5}, StorageClass::kShort), "vec");
  return engine::Value::Bytes(
      std::vector<uint8_t>(vec.blob().begin(), vec.blob().end()));
}

void BM_EmptyFunctionCall(benchmark::State& state) {
  const engine::ScalarFunction* fn =
      Registry()->Resolve("dbo", "EmptyFunction", 2).value();
  engine::QueryStats stats;
  engine::CostModel cost;
  engine::UdfContext ctx;
  ctx.stats = &stats;
  ctx.cost = &cost;
  std::vector<engine::Value> args{VectorArg(), engine::Value::Int(0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::FunctionRegistry::Invoke(*fn, args, ctx));
  }
  state.counters["modeled_ns_per_call"] =
      stats.cpu_core_seconds * 1e9 / static_cast<double>(stats.udf_calls);
}
BENCHMARK(BM_EmptyFunctionCall);

void BM_ItemExtractionCall(benchmark::State& state) {
  const engine::ScalarFunction* fn =
      Registry()->Resolve("FloatArray", "Item_1", 2).value();
  engine::QueryStats stats;
  engine::CostModel cost;
  engine::UdfContext ctx;
  ctx.stats = &stats;
  ctx.cost = &cost;
  std::vector<engine::Value> args{VectorArg(), engine::Value::Int(0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::FunctionRegistry::Invoke(*fn, args, ctx));
  }
  state.counters["modeled_ns_per_call"] =
      stats.cpu_core_seconds * 1e9 / static_cast<double>(stats.udf_calls);
}
BENCHMARK(BM_ItemExtractionCall);

void BM_NativeSumStep(benchmark::State& state) {
  // The comparison point: a native aggregate step over a decoded double.
  double sum = 0, v = 1.5;
  for (auto _ : state) {
    sum += v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_NativeSumStep);

void PrintDecomposition() {
  Banner("U1", "CLR UDF call overhead decomposition");
  engine::CostModel cost;
  double q5_row = cost.row_scan_ns + cost.clr_call_ns +
                  cost.clr_byte_ns * (64 + 8 + 8) + cost.native_agg_step_ns;
  double q4_row = q5_row + cost.clr_item_work_ns;
  std::printf("modeled per-row CPU (Tvector scans):\n");
  std::printf("  row scan            %6.0f ns\n", cost.row_scan_ns);
  std::printf("  CLR call boundary   %6.0f ns   (paper: ~2000 ns/call)\n",
              cost.clr_call_ns);
  std::printf("  arg/result marshal  %6.0f ns   (80 bytes x %.1f ns/B)\n",
              cost.clr_byte_ns * 80, cost.clr_byte_ns);
  std::printf("  SUM aggregate step  %6.0f ns\n", cost.native_agg_step_ns);
  std::printf("  managed Item work   %6.0f ns   (Q4 only)\n",
              cost.clr_item_work_ns);
  std::printf("Q5 per-row total %.0f ns; boundary share %.0f%% "
              "(paper: \"at least 38%% of the CPU time went for the UDF "
              "calls even when the UDF was empty\")\n",
              q5_row, 100.0 * (cost.clr_call_ns + cost.clr_byte_ns * 80) /
                          q5_row);
  std::printf("Q4 vs Q5 surcharge %.0f%% (paper: +22%%)\n",
              100.0 * (q4_row - q5_row) / q5_row);
  std::printf("full-scale CLR call cost: %.0f s of CPU over 357M rows "
              "(paper: 734 s)\n",
              (cost.clr_call_ns + cost.clr_byte_ns * 80) * 357e6 * 1e-9);
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::PrintDecomposition();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sqlarray::bench::FlushJson();
  return 0;
}
