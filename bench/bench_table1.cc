// Experiment T1: reproduces Table 1 of the paper.
//
// Five queries over Tscalar / Tvector, executed for real at a reduced scale
// (BENCH_ROWS, default 357 k = 1/1000) with a cold cache, then projected to
// the paper's 357 M rows through the calibrated cost model. The paper's
// measurements are printed beside the modeled ones; the shape to verify is
// (a) Q1/Q2/Q3 are I/O-bound at ~1150 MB/s, (b) Q4/Q5 are CPU-bound with the
// CLR call overhead dominating, (c) Q4 > Q5 > Q3 in elapsed time.
#include "bench/bench_util.h"
#include "common/stopwatch.h"

namespace sqlarray::bench {
namespace {

struct PaperRow {
  const char* sql;
  double time_s;
  double cpu_pct;
  double io_mbps;
};

// Table 1 of the paper.
const PaperRow kPaper[5] = {
    {"SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)", 18, 45, 1150},
    {"SELECT COUNT(*) FROM Tvector WITH (NOLOCK)", 25, 38, 1150},
    {"SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)", 18, 90, 1150},
    {"SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)", 133,
     98, 215},
    {"SELECT SUM(dbo.EmptyFunction(v, 0)) FROM Tvector WITH (NOLOCK)", 109,
     99, 265},
};

void Run() {
  const int64_t rows = BenchRows();
  const double scale =
      static_cast<double>(kPaperRows) / static_cast<double>(rows);

  Banner("T1", "Table 1: query performance (paper vs modeled)");
  std::printf("rows: %lld (paper: %lld, projection factor %.0fx)\n",
              static_cast<long long>(rows),
              static_cast<long long>(kPaperRows), scale);

  BenchServer server;
  Stopwatch load_watch;
  BuildTable1Tables(&server.db, rows);
  std::printf("table load: %.1f s wall\n", load_watch.ElapsedSeconds());

  const engine::CostModel& cost = server.executor.cost_model();
  // Execute with the modeled host's parallelism for honest wall times.
  server.executor.set_scan_workers(cost.num_cores);
  std::printf("scan workers: %d\n", cost.num_cores);
  std::printf(
      "\n%-66s | %22s | %28s | %10s\n", "query",
      "paper (s, cpu%, MB/s)", "modeled@357M (s, cpu%, MB/s)", "wall (s)");
  std::printf("%s\n", std::string(136, '-').c_str());

  for (int q = 0; q < 5; ++q) {
    // Cold cache before every run, as in the paper.
    server.db.ClearCache();
    server.db.disk()->ResetStats();

    auto results = server.session.Execute(kPaper[q].sql);
    Check(results.status(), kPaper[q].sql);
    engine::QueryStats stats = (*results)[0].stats;

    // Project to full scale: the scan is linear in rows.
    engine::QueryStats full = stats;
    full.cpu_core_seconds *= scale;
    full.io.virtual_read_seconds *= scale;
    full.io.bytes_read = static_cast<int64_t>(stats.io.bytes_read * scale);

    std::printf("Q%d %-63s | %6.0f %6.0f %8.0f | %8.1f %8.0f %10.0f | %10.2f\n",
                q + 1, kPaper[q].sql, kPaper[q].time_s, kPaper[q].cpu_pct,
                kPaper[q].io_mbps, full.ModeledSeconds(cost),
                full.ModeledCpuPct(cost), full.ModeledIoMBps(cost),
                stats.wall_seconds);
    RecordJson("table1", "Q" + std::to_string(q + 1), stats.wall_seconds,
               stats.wall_seconds > 0
                   ? static_cast<double>(rows) / stats.wall_seconds
                   : 0);
  }

  // Derived Sec. 7.1 quantities from the modeled numbers.
  std::printf("\nderived (modeled):\n");
  std::printf("  per-CLR-call cost: %.2f us (paper: ~2 us)\n",
              cost.clr_call_ns / 1000.0);
  std::printf(
      "  Q5 empty-UDF share of CPU: %.0f%% of per-row work "
      "(paper: >= 38%% of total CPU)\n",
      100.0 * cost.clr_call_ns /
          (cost.clr_call_ns + cost.row_scan_ns + cost.native_agg_step_ns));
  std::printf(
      "  Q4 item-extraction surcharge over Q5: %.0f%% (paper: +22%%)\n",
      100.0 * cost.clr_item_work_ns /
          (cost.clr_call_ns + cost.row_scan_ns + cost.native_agg_step_ns +
           0.5 * 80));
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
