// Experiment W1: write-ahead-log costs.
//
// Two questions the WAL design leaves open as tunables:
//   (a) commit throughput vs the group-commit window — how much does letting
//       the flush leader linger amortize the per-commit log force when
//       several threads commit concurrently;
//   (b) recovery time vs checkpoint interval — how much replay work a
//       checkpoint saves after a crash.
// Both run the full stack (Database + WalManager on a simulated log disk),
// crash with SimulateCrash() and recover with Recover(), so the numbers
// include the real framing/CRC/redo costs, not just the disk model.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "storage/table.h"
#include "wal/wal.h"

namespace sqlarray::bench {
namespace {

using storage::ColumnType;
using storage::Database;
using storage::Schema;
using storage::Table;
using wal::WalConfig;
using wal::WalManager;

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

Table* MakeLoggedTable(Database* db, WalManager* w, const char* name) {
  Schema schema = CheckResult(
      Schema::Create(
          {{"id", ColumnType::kInt64, 0}, {"v", ColumnType::kInt64, 0}}),
      "schema");
  Table* table =
      CheckResult(db->CreateTable(name, std::move(schema)), "create table");
  Check(w->NoteTableCreated(0, table), "log create");
  Check(w->log_writer()->FlushAll(), "flush create");
  return table;
}

/// (a) Concurrent committers racing tiny transactions. The DML lock
/// serializes the writes; the commits overlap only in the log force, which
/// is exactly what the group-commit window batches.
void BenchCommitThroughput(int64_t total_txns) {
  constexpr int kThreads = 4;
  const int64_t per_thread = std::max<int64_t>(1, total_txns / kThreads);

  std::printf("%-10s %10s %12s %9s %11s %10s\n", "window", "txns", "txns/s",
              "flushes", "committers", "max_batch");
  for (int64_t window_us : {0, 50, 200, 1000}) {
    Database db;
    WalConfig config;
    config.group_commit_window_us = window_us;
    WalManager w(&db, config);
    Table* table = MakeLoggedTable(&db, &w, "t");

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int64_t i = 0; i < per_thread; ++i) {
          uint64_t txn = CheckResult(w.Begin(), "begin");
          Check(w.NoteTableTouched(txn, table), "touch");
          int64_t key = t * per_thread + i;
          Check(table->Insert({key, key * 3}), "insert");
          Check(w.Commit(txn), "commit");
        }
      });
    }
    for (std::thread& th : threads) th.join();
    auto t1 = std::chrono::steady_clock::now();

    double s = Seconds(t0, t1);
    int64_t txns = per_thread * kThreads;
    wal::GroupCommitStats gc = w.log_writer()->group_commit_stats();
    std::printf("%7lld us %10lld %12.0f %9lld %11lld %10lld\n",
                static_cast<long long>(window_us),
                static_cast<long long>(txns), txns / s,
                static_cast<long long>(gc.flushes),
                static_cast<long long>(gc.committers),
                static_cast<long long>(gc.max_batch));
    RecordJson("wal_commit", "window_" + std::to_string(window_us) + "us", s,
               txns / s);
  }
}

/// (b) Crash after a fixed workload, recover, and time the redo pass.
/// Checkpoints every `interval` transactions (0 = never) shorten the scan.
void BenchRecovery(int64_t total_txns) {
  constexpr int kRowsPerTxn = 4;

  std::printf("%-12s %10s %9s %11s %11s %10s\n", "ckpt every", "txns",
              "recov_s", "scanned", "redone", "used_ckpt");
  for (int64_t interval : {0, 256, 64}) {
    Database db;
    WalManager w(&db, {});
    Table* table = MakeLoggedTable(&db, &w, "t");

    for (int64_t n = 0; n < total_txns; ++n) {
      uint64_t txn = CheckResult(w.Begin(), "begin");
      Check(w.NoteTableTouched(txn, table), "touch");
      for (int64_t r = 0; r < kRowsPerTxn; ++r) {
        int64_t key = n * kRowsPerTxn + r;
        Check(table->Insert({key, key}), "insert");
      }
      Check(w.Commit(txn), "commit");
      if (interval > 0 && (n + 1) % interval == 0) {
        Check(w.Checkpoint(), "checkpoint");
      }
    }

    w.SimulateCrash();
    auto t0 = std::chrono::steady_clock::now();
    wal::RecoveryStats stats = CheckResult(w.Recover(), "recover");
    auto t1 = std::chrono::steady_clock::now();

    double s = Seconds(t0, t1);
    std::printf("%12s %10lld %9.4f %11lld %11lld %10s\n",
                interval == 0 ? "never" : std::to_string(interval).c_str(),
                static_cast<long long>(total_txns), s,
                static_cast<long long>(stats.records_scanned),
                static_cast<long long>(stats.pages_redone),
                stats.used_checkpoint ? "yes" : "no");
    std::string name =
        interval == 0 ? "no_checkpoint" : "every_" + std::to_string(interval);
    RecordJson("wal_recovery", name, s,
               s > 0 ? stats.pages_redone / s : 0);
  }
}

void Run() {
  Banner("W1", "WAL commit throughput and recovery time");
  // BENCH_ROWS scales both experiments (357 k default -> ~3.5 k tiny txns).
  const int64_t commit_txns =
      std::clamp<int64_t>(BenchRows() / 100, 40, 4000);
  const int64_t recovery_txns =
      std::clamp<int64_t>(BenchRows() / 500, 20, 800);
  std::printf("\n-- commit throughput vs group-commit window "
              "(4 threads, 1-row txns) --\n");
  BenchCommitThroughput(commit_txns);
  std::printf("\n-- recovery time vs checkpoint interval "
              "(%lld txns x %d rows) --\n",
              static_cast<long long>(recovery_txns), 4);
  BenchRecovery(recovery_txns);
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
