// Experiment M1 (Sec. 5.3): math-library bindings. Column-major layout
// makes the LAPACK-substitute marshaling a plain copy ("no transformation of
// the in-memory data is necessary"); FFTW-style execution copies into
// aligned plan buffers — "a memory copy into a pre-aligned buffer is
// necessary but the performance gain is usually worth the otherwise
// expensive operation".
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "fft/fft.h"
#include "math/svd.h"

namespace sqlarray::bench {
namespace {

std::vector<fft::Complex> Signal(int64_t n) {
  Rng rng(42);
  std::vector<fft::Complex> x(n);
  for (auto& c : x) c = {rng.Normal(), rng.Normal()};
  return x;
}

void BM_FftPlanAligned(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto plan = fft::Plan::Create({n}).value();
  std::vector<fft::Complex> x = Signal(n), out(n);
  for (auto _ : state) {
    Check(plan->Execute(x, out, fft::Direction::kForward), "fft");
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FftPlanAligned)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FftPlanUnaligned(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto plan = fft::Plan::Create({n}).value();
  std::vector<fft::Complex> x = Signal(n), out(n);
  for (auto _ : state) {
    Check(plan->ExecuteUnaligned(x, out, fft::Direction::kForward), "fft");
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FftPlanUnaligned)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

/// Marshaling cost: array blob -> column-major matrix is a straight copy.
void BM_LapackMarshalFromBlob(benchmark::State& state) {
  const int64_t n = state.range(0);
  OwnedArray a = CheckResult(
      OwnedArray::Zeros(DType::kFloat64, {n, n}, StorageClass::kMax),
      "matrix");
  for (auto _ : state) {
    math::Matrix m(n, n);
    auto data = a.ref().Data<double>().value();
    std::copy(data.begin(), data.end(), m.data());
    benchmark::DoNotOptimize(m.data());
  }
  state.SetBytesProcessed(state.iterations() * n * n * 8);
}
BENCHMARK(BM_LapackMarshalFromBlob)->Arg(64)->Arg(256);

void BM_GesvdKernel(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  math::Matrix m(n, n);
  for (int64_t i = 0; i < n * n; ++i) m.data()[i] = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Gesvd(m.view()).value());
  }
}
BENCHMARK(BM_GesvdKernel)->Arg(16)->Arg(32)->Arg(64);

/// The full T-SQL path: FloatArrayMax.SVD_S(@m) including the UDF boundary.
void BM_SvdThroughUdf(benchmark::State& state) {
  const int64_t n = state.range(0);
  BenchServer server;
  // Random matrix (a zero matrix decomposes trivially and would flatter the
  // UDF path).
  Rng rng(9);
  OwnedArray m = CheckResult(
      OwnedArray::Zeros(DType::kFloat64, {n, n}, StorageClass::kMax), "m");
  for (auto& v : m.MutableData<double>().value()) v = rng.Normal();
  server.session.SetVariable(
      "m", engine::Value::Bytes(
               std::vector<uint8_t>(m.blob().begin(), m.blob().end())));
  Check(server.session.Execute("DECLARE @s VARBINARY(MAX)").status(),
        "declare s");
  for (auto _ : state) {
    Check(server.session.Execute("SET @s = FloatArrayMax.SVD_S(@m)").status(),
          "svd");
  }
}
BENCHMARK(BM_SvdThroughUdf)->Arg(16)->Arg(32);

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Banner("M1", "math bindings: aligned FFT plans, zero-copy "
                                "LAPACK marshaling");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sqlarray::bench::FlushJson();
  return 0;
}
