// Experiment S1 (Sec. 6.2): the vector table is ~43 % bigger than the
// scalar table because every row carries the 24-byte array header.
#include "bench/bench_util.h"

namespace sqlarray::bench {
namespace {

void Run() {
  Banner("S1", "storage overhead of packed vector rows");
  const int64_t rows = std::min<int64_t>(BenchRows(), 500000);
  BenchServer server;
  BuildTable1Tables(&server.db, rows);

  storage::Table* tscalar =
      CheckResult(server.db.GetTable("Tscalar"), "Tscalar");
  storage::Table* tvector =
      CheckResult(server.db.GetTable("Tvector"), "Tvector");

  const int64_t scalar_bytes = tscalar->data_bytes();
  const int64_t vector_bytes = tvector->data_bytes();
  const double ratio = static_cast<double>(vector_bytes) /
                       static_cast<double>(scalar_bytes);

  std::printf("rows: %lld\n", static_cast<long long>(rows));
  std::printf("Tscalar: %8lld pages  %10.1f MB  (row: 5 x FLOAT + BIGINT)\n",
              static_cast<long long>(tscalar->data_page_count()),
              scalar_bytes / 1e6);
  std::printf("Tvector: %8lld pages  %10.1f MB  (row: packed 5-vector)\n",
              static_cast<long long>(tvector->data_page_count()),
              vector_bytes / 1e6);
  std::printf("size ratio: %.2fx — paper: 1.43x (\"43%% bigger\")\n", ratio);
  std::printf("per-row header overhead: 24 B of %d B payload\n", 40);

  // Where the overhead goes: header + fixed-binary length prefix.
  std::printf("\nrow images: scalar %lld B vs vector %lld B\n",
              static_cast<long long>(tscalar->schema().row_size()),
              static_cast<long long>(tvector->schema().row_size()));
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
