// Experiment U2: parallel scan scaling. Table 1's CPU percentages assume the
// host's eight cores share the scan ("all eight cores were used"); this
// bench measures the REAL multithreaded executor's wall-time scaling on the
// CPU-bound Q4 workload (SUM of a UDF over the vector column) and on the
// cheap Q1 workload, across worker counts.
#include <cmath>
#include <thread>

#include "bench/bench_util.h"
#include "common/stopwatch.h"

namespace sqlarray::bench {
namespace {

void Run() {
  Banner("U2", "parallel scan scaling (real threads)");
  const int64_t rows = std::min<int64_t>(BenchRows() * 4, 2000000);
  BenchServer server;
  BuildTable1Tables(&server.db, rows);
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("rows: %lld, hardware threads on this host: %u\n",
              static_cast<long long>(rows), cores);
  if (cores <= 1) {
    std::printf("NOTE: single-core host — wall-time speedup cannot exceed "
                "1x here; the table below verifies correctness and "
                "overhead, not scaling.\n");
  }
  std::printf("\n");

  const char* q4 =
      "SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)";
  const char* q1 = "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)";

  std::printf("%8s | %18s | %18s\n", "workers", "Q4 wall s (speedup)",
              "Q1 wall s (speedup)");
  std::printf("%s\n", std::string(52, '-').c_str());

  double base_q4 = 0, base_q1 = 0;
  double check = 0;
  for (int workers : {1, 2, 4, 8}) {
    server.executor.set_scan_workers(workers);

    server.db.ClearCache();
    Stopwatch w4;
    auto r4 = server.session.Execute(q4);
    Check(r4.status(), q4);
    double q4_s = w4.ElapsedSeconds();
    double sum = (*r4)[0].ScalarResult().value().AsDouble().value();
    if (workers == 1) {
      base_q4 = q4_s;
      check = sum;
    } else if (std::fabs(sum - check) > 1e-9 * std::fabs(check)) {
      // Partial sums merge in a different order; beyond-epsilon drift would
      // be a real bug.
      std::printf("RESULT MISMATCH at %d workers: %.17g vs %.17g\n",
                  workers, sum, check);
    }

    server.db.ClearCache();
    Stopwatch w1;
    Check(server.session.Execute(q1).status(), q1);
    double q1_s = w1.ElapsedSeconds();
    if (workers == 1) base_q1 = q1_s;

    std::printf("%8d | %9.3f (%5.2fx) | %9.3f (%5.2fx)\n", workers, q4_s,
                base_q4 / q4_s, q1_s, base_q1 / q1_s);
    RecordJson("parallel_scan", "Q4_workers_" + std::to_string(workers), q4_s,
               q4_s > 0 ? static_cast<double>(rows) / q4_s : 0);
    RecordJson("parallel_scan", "Q1_workers_" + std::to_string(workers), q1_s,
               q1_s > 0 ? static_cast<double>(rows) / q1_s : 0);
  }
  std::printf(
      "\nexpected shape (multicore host): the UDF-heavy Q4 scales with "
      "workers (CPU-bound) while the trivial Q1 scan gains less — matching "
      "Table 1's CPU-bound vs I/O-bound split. On a single-core host the "
      "useful signal is that parallel results are identical and overhead "
      "stays within a few percent.\n");
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
