// Experiment U2: parallel scan scaling under the morsel-driven engine.
//
// Three measurements on the Table 1 workload tables:
//   1. Worker sweep over the cheap Q1 scan, the CPU-bound Q4 UDF aggregate,
//      and a parallel GROUP BY — the plan shapes the morsel engine covers.
//   2. Morsel scheduling vs the legacy static-chunk scheme on Q4, uniform
//      and skewed (UDF work concentrated in half the key range, where
//      static chunks strand the idle workers and stealing does not).
//   3. The small-table guard: at 1/1000 scale the worker cap must make 8
//      requested workers cost the same as 1 (the regression EXPERIMENTS.md
//      recorded for the old threads-per-query path).
//
// Parallel results are checked for EXACT equality against 1 worker: the
// morsel grid and merge order are deterministic, so even float sums must
// match bit for bit.
#include <cmath>
#include <thread>

#include "bench/bench_util.h"
#include "common/stopwatch.h"

namespace sqlarray::bench {
namespace {

/// Runs `query` cold-cache and returns wall seconds; verifies the scalar
/// result (when the result is single-cell) matches `*check` exactly,
/// initializing it on the first call (pass null to skip checking).
double TimedRun(BenchServer* server, const std::string& query, double* check) {
  server->db.ClearCache();
  Stopwatch watch;
  auto result = server->session.Execute(query);
  Check(result.status(), query.c_str());
  double seconds = watch.ElapsedSeconds();
  if (check != nullptr) {
    double got = (*result)[0].ScalarResult().value().AsDouble().value();
    if (std::isnan(*check)) {
      *check = got;
    } else if (got != *check) {
      // The morsel grid and merge order are worker-count-invariant, so any
      // drift — even one ulp in a float sum — is a determinism bug.
      std::printf("RESULT MISMATCH on %s: %.17g vs %.17g\n", query.c_str(),
                  got, *check);
    }
  }
  return seconds;
}

void Run() {
  Banner("U2", "parallel scan scaling (morsel-driven, real threads)");
  const int64_t rows = std::min<int64_t>(BenchRows() * 4, 2000000);
  BenchServer server;
  BuildTable1Tables(&server.db, rows);
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("rows: %lld, hardware threads on this host: %u\n",
              static_cast<long long>(rows), cores);
  if (cores <= 1) {
    std::printf("NOTE: single-core host — wall-time speedup cannot exceed "
                "1x here; the tables below verify correctness and overhead, "
                "not scaling.\n");
  }

  const std::string q1 = "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)";
  const std::string q4 =
      "SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)";
  const std::string qg =
      "SELECT id % 16, SUM(v1), COUNT(*) FROM Tscalar WITH (NOLOCK) "
      "GROUP BY id % 16";
  // UDF work concentrated in the upper half of the key range: static
  // chunking strands the workers that own the cheap half, stealing does not.
  const std::string q4_skew =
      "SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK) "
      "WHERE id >= " + std::to_string(rows / 2);

  // --- 1. Worker sweep across the three parallel plan shapes. -------------
  std::printf("\n%8s | %19s | %19s | %19s\n", "workers",
              "Q1 wall s (speedup)", "Q4 wall s (speedup)",
              "GROUP BY s (speedup)");
  std::printf("%s\n", std::string(76, '-').c_str());
  double base_q1 = 0, base_q4 = 0, base_qg = 0;
  double check_q4 = std::nan("");
  for (int workers : {1, 2, 4, 8}) {
    server.executor.set_scan_workers(workers);
    double s1 = TimedRun(&server, q1, nullptr);
    double s4 = TimedRun(&server, q4, &check_q4);
    double sg = TimedRun(&server, qg, nullptr);
    if (workers == 1) {
      base_q1 = s1;
      base_q4 = s4;
      base_qg = sg;
    }
    std::printf("%8d | %10.3f (%5.2fx) | %10.3f (%5.2fx) | %10.3f (%5.2fx)\n",
                workers, s1, base_q1 / s1, s4, base_q4 / s4, sg,
                base_qg / sg);
    std::string n = std::to_string(workers);
    RecordJson("parallel_scan", "Q1_workers_" + n, s1,
               s1 > 0 ? static_cast<double>(rows) / s1 : 0);
    RecordJson("parallel_scan", "Q4_workers_" + n, s4,
               s4 > 0 ? static_cast<double>(rows) / s4 : 0);
    RecordJson("parallel_scan", "GROUPBY_workers_" + n, sg,
               sg > 0 ? static_cast<double>(rows) / sg : 0);
  }

  // --- 2. Morsel vs legacy static chunking, uniform and skewed Q4. --------
  std::printf("\n%8s | %8s | %8s | %8s | %8s   (Q4 wall s)\n", "workers",
              "morsel", "static", "m-skew", "s-skew");
  std::printf("%s\n", std::string(66, '-').c_str());
  double check_skew = std::nan("");
  for (int workers : {2, 4, 8}) {
    server.executor.set_scan_workers(workers);
    server.executor.set_parallel_mode(engine::ParallelMode::kMorsel);
    double morsel_s = TimedRun(&server, q4, &check_q4);
    double morsel_skew_s = TimedRun(&server, q4_skew, &check_skew);
    server.executor.set_parallel_mode(
        engine::ParallelMode::kStaticChunkLegacy);
    double static_s = TimedRun(&server, q4, nullptr);
    double static_skew_s = TimedRun(&server, q4_skew, nullptr);
    server.executor.set_parallel_mode(engine::ParallelMode::kMorsel);
    std::printf("%8d | %8.3f | %8.3f | %8.3f | %8.3f\n", workers, morsel_s,
                static_s, morsel_skew_s, static_skew_s);
    std::string n = std::to_string(workers);
    RecordJson("parallel_mode", "Q4_morsel_" + n, morsel_s,
               morsel_s > 0 ? static_cast<double>(rows) / morsel_s : 0);
    RecordJson("parallel_mode", "Q4_static_" + n, static_s,
               static_s > 0 ? static_cast<double>(rows) / static_s : 0);
    RecordJson("parallel_mode", "Q4skew_morsel_" + n, morsel_skew_s,
               morsel_skew_s > 0
                   ? static_cast<double>(rows / 2) / morsel_skew_s
                   : 0);
    RecordJson("parallel_mode", "Q4skew_static_" + n, static_skew_s,
               static_skew_s > 0
                   ? static_cast<double>(rows / 2) / static_skew_s
                   : 0);
  }

  // --- 3. Small-table guard (the 1/1000-scale regression). ----------------
  // The worker cap (engine/parallel.h) must keep a tiny scan inline: asking
  // for 8 workers on a table of a few pages should cost what 1 does.
  BenchServer small;
  BuildTable1Tables(&small.db, std::max<int64_t>(rows / 1000, 357));
  small.executor.set_scan_workers(1);
  double small_1 = TimedRun(&small, q1, nullptr);
  small.executor.set_scan_workers(8);
  double small_8 = TimedRun(&small, q1, nullptr);
  std::printf("\nsmall-table guard (%lld rows): Q1 %0.6fs at 1 worker, "
              "%0.6fs at 8 requested (capped) — overhead %+.1f%%\n",
              static_cast<long long>(std::max<int64_t>(rows / 1000, 357)),
              small_1, small_8, 100.0 * (small_8 - small_1) / small_1);
  RecordJson("parallel_small", "Q1_small_workers_1", small_1, 0);
  RecordJson("parallel_small", "Q1_small_workers_8", small_8, 0);

  std::printf(
      "\nexpected shape (multicore host): Q4 and GROUP BY scale with workers "
      "(CPU-bound) while the trivial Q1 scan gains less — Table 1's "
      "CPU-bound vs I/O-bound split. Morsel matches static chunking on the "
      "uniform Q4 and beats it on the skewed variant, where stealing "
      "rebalances the UDF-heavy half. On a single-core host the useful "
      "signal is exact result equality and near-zero overhead.\n");
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
