// Experiment A2 (Sec. 3.3): streamed partial reads make max-array
// subsetting cheap — "it supports reading only parts of the binary data if
// the whole array is not required. The latter can significantly speed up
// certain array subsetting operations."
//
// Sweeps subset edges k of an N^3 max array and compares the streamed path
// (read only the runs the subarray covers) with the materialize-then-subset
// path, in bytes, pages, and modeled I/O time.
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/ops.h"
#include "core/stream_ops.h"

namespace sqlarray::bench {
namespace {

void Run() {
  Banner("A2", "streamed partial reads for max-array subsetting");
  const int64_t n = 128;  // 128^3 doubles = 16 MB blob
  storage::Database db;
  OwnedArray cube = CheckResult(
      OwnedArray::Zeros(DType::kFloat64, {n, n, n}, StorageClass::kMax),
      "cube");
  storage::BlobId id =
      CheckResult(db.blob_store()->Write(cube.blob()), "write blob");
  std::printf("array: %lld^3 float64 max array = %.1f MB out-of-page blob\n",
              static_cast<long long>(n), cube.blob().size() / 1e6);

  std::printf("\n%8s | %28s | %28s | %8s\n", "subset",
              "streamed (KB, pages, ms)", "full read (KB, pages, ms)",
              "speedup");
  std::printf("%s\n", std::string(84, '-').c_str());

  for (int64_t k : {2, 4, 8, 16, 32, 64, 128}) {
    Dims offset{n / 2 - k / 2, n / 2 - k / 2, n / 2 - k / 2};
    Dims sizes{k, k, k};

    db.ClearCache();
    db.disk()->ResetStats();
    storage::BlobStream stream =
        CheckResult(storage::BlobStream::Open(db.buffer_pool(), id),
                    "open stream");
    OwnedArray streamed = CheckResult(
        StreamSubarray(&stream, offset, sizes, false), "stream subarray");
    storage::IoStats s_io = db.disk()->stats();

    db.ClearCache();
    db.disk()->ResetStats();
    std::vector<uint8_t> blob =
        CheckResult(db.blob_store()->ReadAll(id), "full read");
    ArrayRef ref = CheckResult(ArrayRef::Parse(blob), "parse");
    OwnedArray full =
        CheckResult(Subarray(ref, offset, sizes, false), "subarray");
    storage::IoStats f_io = db.disk()->stats();

    double speedup =
        f_io.virtual_read_seconds / std::max(1e-12, s_io.virtual_read_seconds);
    std::printf("%5lld^3 | %10.1f %8lld %7.2f | %10.1f %8lld %7.2f | %7.1fx\n",
                static_cast<long long>(k), s_io.bytes_read / 1e3,
                static_cast<long long>(s_io.pages_read),
                s_io.virtual_read_seconds * 1e3, f_io.bytes_read / 1e3,
                static_cast<long long>(f_io.pages_read),
                f_io.virtual_read_seconds * 1e3, speedup);
    (void)streamed;
    (void)full;
  }
  std::printf(
      "\nexpected shape: streamed I/O grows with the subset while full-read "
      "I/O is flat at the blob size, so small subsets win big. Note the "
      "crossover near k ~ N/4: a large scattered subset pays the random-read "
      "latency per run and a single sequential sweep becomes cheaper — the "
      "same economics that make SQL Server prefer scans over many seeks.\n");
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
