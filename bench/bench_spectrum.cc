// Experiment C2 (Sec. 2.2): server-side spectrum processing. Composite
// spectra by redshift bin computed inside ONE SQL statement (resample UDF in
// the select list + vector-averaging aggregate over GROUP BY), plus the
// throughput of the resampling and similarity-search building blocks.
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "sci/spectrum/pipeline.h"

namespace sqlarray::bench {
namespace {

double benchmark_dummy = 0;

void Run() {
  Banner("C2", "spectra: in-database resampling, composites, PCA search");
  const int n_spectra = 400;
  const int z_bins = 5;

  spectrum::SyntheticSpectrumConfig config;
  config.bins = 256;
  Rng rng(17);
  std::vector<spectrum::Spectrum> spectra;
  spectra.reserve(n_spectra);
  for (int i = 0; i < n_spectra; ++i) {
    spectra.push_back(spectrum::MakeSyntheticSpectrum(config, &rng));
  }

  BenchServer server;
  Check(spectrum::RegisterSpectrumUdfs(&server.registry), "spectrum udfs");

  Stopwatch load_watch;
  storage::Table* table = CheckResult(
      spectrum::LoadSpectraTable(&server.db, "spectra", spectra, z_bins,
                                 config.max_redshift),
      "load spectra");
  std::printf("loaded %lld spectra (%d bins each) in %.2f s; table uses "
              "%.1f MB on-page + out-of-page blobs\n",
              static_cast<long long>(table->row_count()), config.bins,
              load_watch.ElapsedSeconds(),
              server.db.disk()->allocated_bytes() / 1e6);

  // Composite spectra with one SQL statement.
  server.db.ClearCache();
  Stopwatch composite_watch;
  auto composites = CheckResult(
      spectrum::CompositeByRedshift(&server.session, "spectra", 4200, 9000,
                                    128),
      "composites");
  double composite_s = composite_watch.ElapsedSeconds();
  std::printf(
      "\ncomposite-by-redshift (1 SQL statement, %d groups): %.2f s wall, "
      "%lld UDF calls, modeled CPU %.2f core-s\n",
      static_cast<int>(composites.size()), composite_s,
      static_cast<long long>(server.session.last_stats().udf_calls),
      server.session.last_stats().cpu_core_seconds);
  for (const auto& [zbin, flux] : composites) {
    double mean = 0;
    for (double f : flux) mean += f;
    std::printf("  zbin %lld: %3zu members' mean flux %.3f\n",
                static_cast<long long>(zbin), flux.size(),
                mean / static_cast<double>(flux.size()));
  }

  // Resampling throughput (the per-row UDF work).
  std::vector<double> grid = spectrum::MakeLogGrid(4200, 9000, 128);
  Stopwatch resample_watch;
  int resampled = 0;
  for (const spectrum::Spectrum& s : spectra) {
    benchmark_dummy += CheckResult(spectrum::ResampleFluxConserving(s, grid),
                                   "resample")
                           .flux[0];
    ++resampled;
  }
  double resample_s = resample_watch.ElapsedSeconds();
  std::printf("\nflux-conserving resample: %.0f spectra/s (%d x %d -> 128 "
              "bins)\n",
              resampled / resample_s, resampled, config.bins);

  // Similarity index build + query latency.
  Stopwatch build_watch;
  spectrum::SimilarityIndex index = CheckResult(
      spectrum::SimilarityIndex::Build(spectra, grid, 8), "index build");
  double build_s = build_watch.ElapsedSeconds();

  Stopwatch query_watch;
  int hits = 0;
  const int queries = 100;
  for (int q = 0; q < queries; ++q) {
    auto ids = CheckResult(index.QuerySimilar(spectra[q * 3], 5), "query");
    hits += (!ids.empty() && ids[0] == q * 3) ? 1 : 0;
  }
  double query_s = query_watch.ElapsedSeconds();
  std::printf(
      "PCA similarity index: build %.2f s (%d spectra, 8 components); "
      "query %.2f ms each; self-retrieval %d/%d\n",
      build_s, n_spectra, query_s * 1e3 / queries, hits, queries);
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
