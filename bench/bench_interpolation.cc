// Experiment C1 (Sec. 2.1): blob sizing for the turbulence interpolation
// service. "Accessing the whole blob (6 MB) for an 8-point 3D interpolation
// is obviously overkill. By using much smaller blobs, especially if they fit
// onto a single 8 kB page, we could have a much lower overhead on disk IOs."
//
// Two access modes are measured cold-cache per particle:
//   whole-blob — the original service's pattern: fetch the particle's entire
//                blob row, then interpolate in memory;
//   streamed   — the max-array fix: read only the 8^3 stencil's byte ranges
//                through the blob stream.
// The paper's argument is the whole-blob column: I/O per particle IS the
// blob size, so small (ideally page-sized) z-curve blobs win. Streaming
// makes I/O nearly independent of blob size, which is the deeper payoff of
// the out-of-page array design.
#include "bench/bench_util.h"
#include "sci/turbulence/service.h"

namespace sqlarray::bench {
namespace {

int64_t benchmark_sink = 0;

void Run() {
  Banner("C1", "turbulence: blob size vs interpolation I/O");
  const int64_t n = 64;  // field resolution (paper: 1024)
  const int particles = 100;
  turbulence::SyntheticField field(n, 20, 11);

  Rng rng(5);
  std::vector<std::array<double, 3>> positions(particles);
  for (auto& p : positions) {
    p = {rng.Uniform(0, n), rng.Uniform(0, n), rng.Uniform(0, n)};
  }

  std::printf("field: %lld^3, %d random particles, 8-point Lagrangian, "
              "cold cache per particle\n",
              static_cast<long long>(n), particles);
  std::printf("\n%6s | %10s | %24s | %24s\n", "core", "blob size",
              "whole-blob (KB/part, us)", "streamed (KB/part, us)");
  std::printf("%s\n", std::string(76, '-').c_str());

  for (int64_t core : {4, 8, 16, 32, 64}) {
    turbulence::PartitionConfig config;
    config.core = core;
    config.overlap = 4;
    storage::Database db;
    storage::Table* table = CheckResult(
        turbulence::LoadIntoTable(field, config, &db, "blobs"), "load");
    turbulence::InterpolationService service(&db, table, config, n);

    // Whole-blob mode: the original service's access pattern.
    int64_t full_bytes = 0;
    double full_io_s = 0;
    for (const auto& p : positions) {
      db.ClearCache();
      db.disk()->ResetStats();
      uint64_t id = turbulence::CubeIdOf(config, n, p[0], p[1], p[2]);
      storage::Row row = CheckResult(table->Lookup(static_cast<int64_t>(id)),
                                     "lookup")
                             .value();
      if (auto* blob_id = std::get_if<storage::BlobId>(&row[1])) {
        std::vector<uint8_t> blob =
            CheckResult(table->ReadBlob(*blob_id), "read blob");
        benchmark_sink += blob[blob.size() / 2];
      } else {
        benchmark_sink += std::get<std::vector<uint8_t>>(row[1])[0];
      }
      full_bytes += db.disk()->stats().bytes_read;
      full_io_s += db.disk()->stats().virtual_read_seconds;
    }

    // Streamed mode: only the stencil ranges.
    int64_t stream_bytes = 0;
    double stream_io_s = 0;
    for (const auto& p : positions) {
      db.ClearCache();
      db.disk()->ResetStats();
      Check(service.Sample(p[0], p[1], p[2], math::InterpScheme::kLagrange8)
                .status(),
            "sample");
      stream_bytes += db.disk()->stats().bytes_read;
      stream_io_s += db.disk()->stats().virtual_read_seconds;
    }

    std::printf("%6lld | %8.0f K | %12.1f %11.1f | %12.1f %11.1f\n",
                static_cast<long long>(core), config.BlobBytes() / 1e3,
                static_cast<double>(full_bytes) / particles / 1e3,
                full_io_s * 1e6 / particles,
                static_cast<double>(stream_bytes) / particles / 1e3,
                stream_io_s * 1e6 / particles);
  }
  std::printf(
      "\nexpected shape: whole-blob I/O per particle tracks the blob size "
      "(%.0fx spread), reproducing the paper's \"6 MB for an 8-point stencil "
      "is overkill\"; streamed stencil reads stay nearly flat across blob "
      "sizes.\n",
      5972.0 / 28.0);
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
