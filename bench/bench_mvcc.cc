// Experiment M1: snapshot isolation under write pressure.
//
// Two measurements on a WAL+MVCC database:
//
//  1. Reader-vs-writer sweep: N snapshot readers run a fixed diet of
//     aggregate scans while M writer sessions (M swept 0 -> 8) commit
//     inserts and hot-row rewrites as fast as they can. Each reader op
//     acquires a fresh snapshot, so the sweep measures what version
//     chains and claim traffic cost a reader. The claim of the MVCC
//     design is that reader latency stays flat as M grows — readers
//     never block on writers, they just read older page images.
//
//  2. GC-horizon curve: one snapshot is pinned while rounds of DML churn
//     versions; after each round we record how many page versions the
//     manager retains. Releasing the snapshot moves the GC horizon to
//     infinity and the retained count collapses — the curve makes the
//     "oldest active snapshot pins history" rule visible.
//
// --json output uses the standard {"records", "metrics"} shape
// (cmake/bench_json_smoke.cmake validates it); the mvcc.* counters land
// in the metrics map.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mvcc/mvcc.h"
#include "wal/wal.h"

namespace sqlarray::bench {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) return std::atoll(env);
  return fallback;
}

double Pct(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(p * (v.size() - 1))];
}

/// One database bundle with WAL + MVCC attached and `t` loaded.
struct MvccBench {
  storage::Database db;
  wal::WalManager wal;
  mvcc::MvccManager mvcc;
  engine::FunctionRegistry registry;
  engine::Executor executor;

  explicit MvccBench(int64_t rows)
      : wal(&db), mvcc(&db, &wal), executor(&db, &registry) {
    Check(udfs::RegisterAllUdfs(&registry), "udf registration");
    sql::Session setup(&executor);
    Check(setup.Execute("CREATE TABLE t (id BIGINT, v BIGINT)").status(),
          "create t");
    std::string values;
    for (int64_t i = 0; i < rows; ++i) {
      if (!values.empty()) values += ", ";
      values += "(" + std::to_string(i) + ", " + std::to_string(i % 17) + ")";
      if (values.size() > 200000 || i + 1 == rows) {
        Check(setup.Execute("INSERT INTO t VALUES " + values).status(),
              "load t");
        values.clear();
      }
    }
  }
};

/// Runs `readers` scan sessions (reader_ops ops each) against `writers`
/// sessions committing continuously; returns per-op reader latencies.
struct SweepResult {
  std::vector<double> reader_ms;
  int64_t writer_commits = 0;
  int64_t writer_conflicts = 0;
  double wall_s = 0;
};

SweepResult RunSweep(MvccBench* b, int readers, int reader_ops, int writers,
                     int64_t rows) {
  SweepResult out;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> commits{0};
  std::atomic<int64_t> conflicts{0};

  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> writer_threads;
  for (int w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      sql::Session s(&b->executor);
      // Disjoint insert ranges keep writers off each other's keys; every
      // 4th op rewrites a shared hot row so claims see some contention.
      int64_t base = 1000000 + static_cast<int64_t>(w) * 1000000;
      for (int64_t n = 0; !stop.load(std::memory_order_relaxed); ++n) {
        Status st;
        if (n % 4 == 3) {
          std::string k = std::to_string((w + n) % 4);
          st = s.Execute("BEGIN TRANSACTION; DELETE FROM t WHERE id = " + k +
                         "; INSERT INTO t VALUES (" + k + ", " +
                         std::to_string(w) + "); COMMIT")
                   .status();
        } else {
          st = s.Execute("INSERT INTO t VALUES (" + std::to_string(base + n) +
                         ", " + std::to_string(w) + ")")
                   .status();
        }
        if (st.ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        } else if (st.code() == StatusCode::kWriteConflict) {
          conflicts.fetch_add(1, std::memory_order_relaxed);
          (void)s.Execute("ROLLBACK");  // clear the stranded transaction
        } else {
          std::fprintf(stderr, "writer: %s\n", st.ToString().c_str());
          (void)s.Execute("ROLLBACK");
        }
      }
    });
  }

  std::vector<std::vector<double>> per_reader(readers);
  std::vector<std::thread> reader_threads;
  for (int r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      sql::Session s(&b->executor);
      std::string sql = "SELECT COUNT(id), SUM(v) FROM t WHERE id < " +
                        std::to_string(rows);
      for (int op = 0; op < reader_ops; ++op) {
        auto a0 = std::chrono::steady_clock::now();
        Check(s.Execute(sql).status(), "reader scan");
        auto a1 = std::chrono::steady_clock::now();
        per_reader[r].push_back(
            std::chrono::duration<double>(a1 - a0).count() * 1e3);
      }
    });
  }
  for (auto& t : reader_threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writer_threads) t.join();
  auto t1 = std::chrono::steady_clock::now();

  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (auto& v : per_reader) {
    out.reader_ms.insert(out.reader_ms.end(), v.begin(), v.end());
  }
  out.writer_commits = commits.load();
  out.writer_conflicts = conflicts.load();
  return out;
}

void RunBench() {
  const int64_t rows = std::min<int64_t>(BenchRows(), 20000);
  const int readers = static_cast<int>(EnvInt("BENCH_MVCC_READERS", 4));
  const int reader_ops = static_cast<int>(EnvInt("BENCH_MVCC_READER_OPS", 30));

  Banner("M1", "snapshot readers vs concurrent writers");
  std::printf("%lld rows, %d readers x %d ops per config\n\n",
              static_cast<long long>(rows), readers, reader_ops);

  for (int writers : {0, 1, 2, 4, 8}) {
    MvccBench b(rows);
    SweepResult r = RunSweep(&b, readers, reader_ops, writers, rows);
    double p50 = Pct(r.reader_ms, 0.5);
    double p99 = Pct(r.reader_ms, 0.99);
    double qps = r.wall_s > 0 ? r.reader_ms.size() / r.wall_s : 0;
    std::printf(
        "writers=%d  reader p50=%.2fms p99=%.2fms qps=%.0f | "
        "writer commits=%lld conflicts=%lld\n",
        writers, p50, p99, qps, static_cast<long long>(r.writer_commits),
        static_cast<long long>(r.writer_conflicts));
    RecordJson("bench_mvcc", "read_w" + std::to_string(writers), r.wall_s,
               qps);
    RecordJson("bench_mvcc", "read_p99_ms_w" + std::to_string(writers),
               r.wall_s, p99);
  }

  Banner("M2", "versions retained vs GC horizon");
  {
    const int rounds = 6;
    const int64_t churn = std::min<int64_t>(rows, 512);
    MvccBench b(rows);
    sql::Session writer(&b.executor);
    // Pin one snapshot: the GC horizon freezes at its LSN and every page
    // version written after it must be retained.
    auto snap = CheckResult(b.mvcc.AcquireSnapshot(), "pin snapshot");
    for (int round = 0; round < rounds; ++round) {
      for (int64_t i = 0; i < churn; i += 64) {
        Check(writer
                  .Execute("DELETE FROM t WHERE id >= " + std::to_string(i) +
                           " AND id < " + std::to_string(i + 32))
                  .status(),
              "churn delete");
        std::string values;
        for (int64_t k = i; k < i + 32; ++k) {
          if (!values.empty()) values += ", ";
          values += "(" + std::to_string(k) + ", " + std::to_string(round) +
                    ")";
        }
        Check(writer.Execute("INSERT INTO t VALUES " + values).status(),
              "churn insert");
      }
      mvcc::MvccStats st = b.mvcc.Stats();
      int64_t retained = st.versions_created - st.versions_gc;
      std::printf("round %d: versions retained=%lld history=%lld KiB\n",
                  round, static_cast<long long>(retained),
                  static_cast<long long>(st.history_bytes / 1024));
      RecordJson("bench_mvcc", "gc_retained_round" + std::to_string(round),
                 0.0, static_cast<double>(retained));
    }
    snap.reset();  // horizon moves to infinity; GC drains the chains
    mvcc::MvccStats st = b.mvcc.Stats();
    int64_t retained = st.versions_created - st.versions_gc;
    std::printf("after release: versions retained=%lld\n",
                static_cast<long long>(retained));
    RecordJson("bench_mvcc", "gc_retained_after_release", 0.0,
               static_cast<double>(retained));
  }

  FlushJson();
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::RunBench();
  return 0;
}
