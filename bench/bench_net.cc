// Experiment N1: wire-protocol overhead of the networked front-end.
//
// The same closed-loop query mix runs twice against one ArrayServer:
// in-process (threads calling Execute directly — the bench_server baseline
// path) and networked (each thread a NetClient over loopback TCP, speaking
// the length-prefixed frame protocol through NetServer's per-connection
// handler threads). BENCH_NET_CONNECTIONS concurrent clients (default 8)
// each run BENCH_NET_OPS statements (default 40): COUNT range filters, hash
// aggregates, chunk-streamed wide SELECTs, and per-connection INSERTs.
//
// Reported per path: p50/p99 statement latency and saturation qps; the
// delta is the cost of framing + CRC + socket hops + the extra
// per-statement worker thread. Loopback numbers are a floor for real
// networks, but catching a serialization regression is the point.
//
// --json output carries the standard {"records", "metrics"} shape plus a
// top-level "net" object with both paths' numbers
// (cmake/bench_json_smoke.cmake validates the shape).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "client/net_client.h"
#include "net/auth.h"
#include "net/net_server.h"
#include "server/server.h"
#include "wal/wal.h"

namespace sqlarray::bench {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) return std::atoll(env);
  return fallback;
}

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

struct PathResult {
  std::vector<double> latencies_ms;
  int64_t ok = 0;
  int64_t errors = 0;
  double wall_s = 0;

  double Percentile(double p) const {
    if (latencies_ms.empty()) return 0;
    std::vector<double> v = latencies_ms;
    std::sort(v.begin(), v.end());
    return v[static_cast<size_t>(p * (v.size() - 1))];
  }
  double Qps() const { return wall_s > 0 ? ok / wall_s : 0; }
};

/// The statement for (connection c, op i). The mix matches bench_server's
/// read classes plus a wide multi-chunk SELECT that exercises ROWS
/// streaming, plus private INSERTs so the WAL path is on both sides.
/// key_base keeps the two paths' INSERT keys disjoint — they share one
/// database, and the clustered key rejects duplicates.
std::string MixStatement(int c, int op, int64_t rows, int64_t key_base) {
  switch ((c + op) % 4) {
    case 0:
      return "SELECT COUNT(id) FROM shared WHERE id < " +
             std::to_string((op % 20 + 1) * (rows / 20 + 1));
    case 1:
      return "SELECT v, SUM(id) FROM shared GROUP BY v";
    case 2:
      return "SELECT id, v, id + v FROM shared WHERE id < 600";
    default:
      return "INSERT INTO n" + std::to_string(c) + " VALUES (" +
             std::to_string(key_base + op) + ", " + std::to_string(c) + ")";
  }
}

/// One statement executor: the in-process and networked closed loops differ
/// only in this callback's implementation.
template <typename ExecuteFn>
void RunClosedLoop(int connections, int ops, int64_t rows, int64_t key_base,
                   std::vector<PathResult>* per_thread, ExecuteFn make_exec) {
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto exec = make_exec(c);
      PathResult& out = (*per_thread)[c];
      for (int op = 0; op < ops; ++op) {
        std::string sql = MixStatement(c, op, rows, key_base);
        auto a0 = std::chrono::steady_clock::now();
        server::StatementOutcome r = exec(sql);
        auto a1 = std::chrono::steady_clock::now();
        if (r.ok()) {
          ++out.ok;
          out.latencies_ms.push_back(Seconds(a0, a1) * 1e3);
        } else if (r.status.code() == StatusCode::kResourceExhausted) {
          // Closed loop under the default (generous) admission config;
          // back off from the typed hint and retry once.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(std::max<int64_t>(
                  r.retry_after_ms, 1)));
          --op;
        } else {
          ++out.errors;
          std::fprintf(stderr, "unexpected: %s\n", r.status.ToString().c_str());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

PathResult Collect(std::vector<PathResult> per_thread, double wall_s) {
  PathResult total;
  total.wall_s = wall_s;
  for (PathResult& p : per_thread) {
    total.ok += p.ok;
    total.errors += p.errors;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              p.latencies_ms.begin(), p.latencies_ms.end());
  }
  return total;
}

void PrintResult(const char* label, const PathResult& r, int connections) {
  std::printf(
      "%-12s connections=%d ok=%lld errors=%lld  p50=%.3fms p99=%.3fms "
      "qps=%.0f wall=%.2fs\n",
      label, connections, static_cast<long long>(r.ok),
      static_cast<long long>(r.errors), r.Percentile(0.5), r.Percentile(0.99),
      r.Qps(), r.wall_s);
}

void AppendPathJson(std::FILE* f, const char* key, const PathResult& r,
                    bool last) {
  std::fprintf(f,
               "    \"%s\": {\"ok\": %lld, \"errors\": %lld, "
               "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"qps\": %.2f, "
               "\"wall_s\": %.4f}%s\n",
               key, static_cast<long long>(r.ok),
               static_cast<long long>(r.errors), r.Percentile(0.5),
               r.Percentile(0.99), r.Qps(), r.wall_s, last ? "" : ",");
}

/// FlushJson with an extra top-level "net" object. Mirrors bench_util's
/// writer so the smoke harness's shape check keeps passing.
void FlushNetJson(int connections, int ops, const PathResult& inproc,
                  const PathResult& net) {
  JsonSink& sink = GlobalJsonSink();
  if (sink.path.empty()) return;
  std::FILE* f = std::fopen(sink.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s for writing\n",
                 sink.path.c_str());
    std::abort();
  }
  std::fprintf(f, "{\n  \"records\": [\n");
  for (size_t i = 0; i < sink.records.size(); ++i) {
    const JsonRecord& r = sink.records[i];
    std::fprintf(f,
                 "    {\"bench\": \"%s\", \"case\": \"%s\", \"wall_s\": "
                 "%.9g, \"throughput\": %.9g}%s\n",
                 JsonEscape(r.bench).c_str(), JsonEscape(r.case_name).c_str(),
                 r.wall_s, r.throughput,
                 i + 1 < sink.records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"net\": {\n");
  std::fprintf(f, "    \"connections\": %d,\n    \"ops_per_connection\": %d,\n",
               connections, ops);
  AppendPathJson(f, "in_process", inproc, /*last=*/false);
  AppendPathJson(f, "networked", net, /*last=*/true);
  std::fprintf(f, "  },\n  \"metrics\": {\n");
  const std::map<std::string, int64_t> metrics =
      obs::MetricsRegistry::Global().Snapshot().values();
  size_t emitted = 0;
  for (const auto& [name, value] : metrics) {
    std::fprintf(f, "    \"%s\": %lld%s\n", JsonEscape(name).c_str(),
                 static_cast<long long>(value),
                 ++emitted < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %zu JSON records to %s\n", sink.records.size(),
              sink.path.c_str());
}

void RunBench() {
  const int connections =
      static_cast<int>(EnvInt("BENCH_NET_CONNECTIONS", 8));
  const int ops = static_cast<int>(EnvInt("BENCH_NET_OPS", 40));
  const int64_t rows = std::min<int64_t>(BenchRows(), 20000);

  Banner("N1", "wire-protocol overhead: networked vs in-process front-end");
  std::printf("closed loop: %d connections x %d ops, %lld shared rows\n\n",
              connections, ops, static_cast<long long>(rows));

  storage::Database db;
  wal::WalManager wal(&db);
  engine::FunctionRegistry registry;
  engine::Executor executor(&db, &registry);
  Check(udfs::RegisterAllUdfs(&registry), "udf registration");

  server::ServerConfig cfg;
  cfg.admission.max_concurrent = 8;
  cfg.admission.max_queue = 256;
  server::ArrayServer srv(&executor, cfg);

  int64_t setup = srv.OpenSession();
  Check(srv.Execute(setup, "CREATE TABLE shared (id BIGINT, v BIGINT)").status,
        "create shared");
  {
    std::string values;
    for (int64_t i = 0; i < rows; ++i) {
      if (!values.empty()) values += ", ";
      values += "(" + std::to_string(i) + ", " + std::to_string(i % 17) + ")";
      if (values.size() > 200000 || i + 1 == rows) {
        Check(srv.Execute(setup, "INSERT INTO shared VALUES " + values).status,
              "load shared");
        values.clear();
      }
    }
  }
  for (int c = 0; c < connections; ++c) {
    Check(srv.Execute(setup, "CREATE TABLE n" + std::to_string(c) +
                                 " (id BIGINT, v BIGINT)")
              .status,
          "create private");
  }

  // In-process baseline: the bench_server path, one session per thread.
  PathResult inproc;
  {
    std::vector<PathResult> per_thread(connections);
    std::vector<int64_t> ids;
    for (int c = 0; c < connections; ++c) ids.push_back(srv.OpenSession());
    auto t0 = std::chrono::steady_clock::now();
    RunClosedLoop(connections, ops, rows, /*key_base=*/0, &per_thread,
                  [&](int c) {
      int64_t id = ids[c];
      return [&srv, id](const std::string& sql) {
        return srv.Execute(id, sql);
      };
    });
    auto t1 = std::chrono::steady_clock::now();
    for (int64_t id : ids) Check(srv.CloseSession(id), "close session");
    inproc = Collect(std::move(per_thread), Seconds(t0, t1));
  }
  PrintResult("in_process", inproc, connections);

  // Networked: same mix through HELLO/AUTH + QUERY frames over loopback.
  net::AuthManager auth;
  Check(auth.AddUser("bench", "bench-pw"), "add user");
  net::NetServer netsrv(&srv, &auth);
  Check(netsrv.Start(), "net start");
  PathResult netres;
  {
    std::vector<PathResult> per_thread(connections);
    std::vector<std::unique_ptr<client::NetClient>> clients;
    for (int c = 0; c < connections; ++c) {
      clients.push_back(CheckResult(
          client::NetClient::Connect("127.0.0.1", netsrv.port()), "connect"));
      Check(clients.back()->Authenticate("bench", "bench-pw"), "auth");
    }
    auto t0 = std::chrono::steady_clock::now();
    RunClosedLoop(connections, ops, rows, /*key_base=*/1000000, &per_thread,
                  [&](int c) {
      client::NetClient* cl = clients[c].get();
      return [cl](const std::string& sql) { return cl->Execute(sql); };
    });
    auto t1 = std::chrono::steady_clock::now();
    for (auto& cl : clients) cl->Close();
    netres = Collect(std::move(per_thread), Seconds(t0, t1));
  }
  netsrv.Stop();
  PrintResult("networked", netres, connections);

  std::printf(
      "\nwire overhead: p50 %+.3fms, p99 %+.3fms per statement; qps %.0f -> "
      "%.0f (loopback floor: framing + CRC32C + 2 socket hops + worker "
      "handoff)\n",
      netres.Percentile(0.5) - inproc.Percentile(0.5),
      netres.Percentile(0.99) - inproc.Percentile(0.99), inproc.Qps(),
      netres.Qps());

  RecordJson("bench_net", "in_process", inproc.wall_s, inproc.Qps());
  RecordJson("bench_net", "networked", netres.wall_s, netres.Qps());
  FlushNetJson(connections, ops, inproc, netres);
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::RunBench();
  return 0;
}
