// Experiment R1: cost of page checksums (PAGE_VERIFY CHECKSUM stand-in).
//
// Measures raw CRC32C throughput and the wall-clock overhead checksumming
// adds to the simulated disk's read and write paths. The point of reference
// is the ~7 us of modeled transfer time per 8 kB page at the paper's
// 1150 MB/s: the CRC costs a few us of CPU per page (host-dependent), which
// a real engine overlaps with the I/O it guards.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/crc32c.h"
#include "storage/disk.h"

namespace sqlarray::bench {
namespace {

using storage::DiskConfig;
using storage::kPageSize;
using storage::Page;
using storage::PageId;
using storage::SimulatedDisk;

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Raw CRC32C throughput over page-sized buffers.
void BenchRawCrc(int64_t pages) {
  std::vector<uint8_t> buf(kPageSize);
  for (int64_t i = 0; i < kPageSize; ++i) {
    buf[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  uint32_t acc = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < pages; ++i) {
    buf[0] = static_cast<uint8_t>(i);  // defeat result caching
    acc ^= Crc32c(buf.data(), buf.size());
  }
  auto t1 = std::chrono::steady_clock::now();
  double s = Seconds(t0, t1);
  std::printf("raw CRC32C       : %7.0f MB/s  (%.3f us/page, acc=%08x)\n",
              pages * kPageSize / s / 1e6, s / pages * 1e6, acc);
}

/// Write+read round trips through the simulated disk.
void BenchDiskPath(bool verify, int64_t pages) {
  DiskConfig config;
  config.verify_checksums = verify;
  SimulatedDisk disk(config);
  std::vector<PageId> ids;
  for (int64_t i = 0; i < pages; ++i) ids.push_back(disk.AllocatePage());

  Page page;
  for (int64_t i = 0; i < kPageSize; ++i) {
    page.data()[i] = static_cast<uint8_t>(i);
  }

  auto w0 = std::chrono::steady_clock::now();
  for (PageId id : ids) disk.WritePage(id, page);
  auto w1 = std::chrono::steady_clock::now();

  Page out;
  auto r0 = std::chrono::steady_clock::now();
  for (PageId id : ids) disk.ReadPage(id, &out);
  auto r1 = std::chrono::steady_clock::now();

  double ws = Seconds(w0, w1), rs = Seconds(r0, r1);
  std::printf("disk %-11s : write %7.0f MB/s (%.3f us/page)  "
              "read %7.0f MB/s (%.3f us/page)\n",
              verify ? "checksummed" : "unchecked",
              pages * kPageSize / ws / 1e6, ws / pages * 1e6,
              pages * kPageSize / rs / 1e6, rs / pages * 1e6);
}

void Run() {
  std::printf("\n=== R1 — page checksum overhead (CRC32C, 8 kB pages) ===\n");
  const int64_t pages = 20000;
  BenchRawCrc(pages);
  BenchDiskPath(false, pages);
  BenchDiskPath(true, pages);
  std::printf("modeled transfer time per page at 1150 MB/s: %.3f us\n",
              kPageSize / 1150.0);
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
