// Experiment K1: typed kernel dispatch vs the boxed per-element path.
//
// Sweeps element-wise ops, aggregation, dot product, and dtype casts over an
// (op x dtype x size) grid, timing the kernel-dispatched entry points
// (ElementwiseBinary & co.) against the *Boxed reference implementations —
// the pre-kernel per-element GetComplex/GetDouble code path, kept as the
// differential-test oracle. The boxed column is therefore the in-binary
// "before" of the kernel work; speedups here back the PR's acceptance
// numbers (>= 3x on float64 add, >= 2x on SUM aggregation).
//
// BENCH_ELEMS limits the sweep to a single element count (used by the
// bench_smoke ctest target); --json out.json records every case.
#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/ops.h"

namespace sqlarray::bench {
namespace {

std::vector<int64_t> SweepSizes() {
  if (const char* env = std::getenv("BENCH_ELEMS")) {
    return {std::atoll(env)};
  }
  return {4096, 65536, 1 << 20};
}

/// Fills an array of `dtype` with deterministic nonzero values (safe as a
/// division right-hand side).
OwnedArray MakeOperand(DType dtype, int64_t n, uint64_t seed) {
  OwnedArray a =
      CheckResult(OwnedArray::Zeros(dtype, {n}), "bench operand");
  Rng rng(seed);
  auto fill = [&](auto tag) {
    using T = decltype(tag);
    auto data = a.MutableData<T>().value();
    for (int64_t i = 0; i < n; ++i) {
      double v = rng.Uniform(1.0, 100.0) * (i % 2 == 0 ? 1 : -1);
      data[i] = static_cast<T>(v);
    }
  };
  switch (dtype) {
    case DType::kInt8: fill(int8_t{}); break;
    case DType::kInt16: fill(int16_t{}); break;
    case DType::kInt32: fill(int32_t{}); break;
    case DType::kInt64: fill(int64_t{}); break;
    case DType::kFloat32: fill(float{}); break;
    case DType::kFloat64: fill(double{}); break;
    default: Check(Status::Internal("unsupported bench dtype"), "dtype");
  }
  return a;
}

/// Times `fn` (re-running it until ~20 ms have elapsed) and returns seconds
/// per call.
template <typename Fn>
double TimePerCall(Fn&& fn) {
  fn();  // warm-up + correctness check
  int reps = 1;
  for (;;) {
    Stopwatch w;
    for (int i = 0; i < reps; ++i) fn();
    double s = w.ElapsedSeconds();
    if (s >= 0.02 || reps >= 1 << 20) return s / reps;
    reps *= 4;
  }
}

struct CasePrinter {
  void Print(const std::string& name, int64_t n, double kernel_s,
             double boxed_s) {
    std::printf("%-28s %9" PRId64 " | %10.1f | %10.1f | %6.2fx\n",
                name.c_str(), n, n / kernel_s / 1e6, n / boxed_s / 1e6,
                boxed_s / kernel_s);
    RecordJson("kernels", name + "/" + std::to_string(n) + "/kernel",
               kernel_s, n / kernel_s);
    RecordJson("kernels", name + "/" + std::to_string(n) + "/boxed", boxed_s,
               n / boxed_s);
  }
};

const char* OpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kMul: return "mul";
    case BinOp::kDiv: return "div";
  }
  return "?";
}

void Run() {
  Banner("K1", "typed kernels vs boxed per-element path");
  std::printf("%-28s %9s | %10s | %10s | %7s\n", "case", "elems",
              "kernel Me/s", "boxed Me/s", "speedup");
  std::printf("%s\n", std::string(76, '-').c_str());

  const DType kDTypes[] = {DType::kInt32, DType::kInt64, DType::kFloat32,
                           DType::kFloat64};
  CasePrinter out;

  for (int64_t n : SweepSizes()) {
    // Element-wise binary: op x dtype (same-dtype pairs plus one mixed pair).
    for (BinOp op : {BinOp::kAdd, BinOp::kMul, BinOp::kDiv}) {
      for (DType dt : kDTypes) {
        OwnedArray lhs = MakeOperand(dt, n, 1);
        OwnedArray rhs = MakeOperand(dt, n, 2);
        double kernel_s = TimePerCall([&] {
          CheckResult(ElementwiseBinary(lhs.ref(), rhs.ref(), op), "kernel");
        });
        double boxed_s = TimePerCall([&] {
          CheckResult(ElementwiseBinaryBoxed(lhs.ref(), rhs.ref(), op),
                      "boxed");
        });
        out.Print(std::string(OpName(op)) + "_" + std::string(DTypeName(dt)), n, kernel_s,
                  boxed_s);
      }
    }
    {
      // Mixed promotion: int32 + float64.
      OwnedArray lhs = MakeOperand(DType::kInt32, n, 3);
      OwnedArray rhs = MakeOperand(DType::kFloat64, n, 4);
      double kernel_s = TimePerCall([&] {
        CheckResult(ElementwiseBinary(lhs.ref(), rhs.ref(), BinOp::kAdd),
                    "kernel");
      });
      double boxed_s = TimePerCall([&] {
        CheckResult(ElementwiseBinaryBoxed(lhs.ref(), rhs.ref(), BinOp::kAdd),
                    "boxed");
      });
      out.Print("add_int32_float64", n, kernel_s, boxed_s);
    }

    // Scalar broadcast.
    {
      OwnedArray a = MakeOperand(DType::kFloat64, n, 5);
      double kernel_s = TimePerCall([&] {
        CheckResult(ElementwiseScalar(a.ref(), 1.5, BinOp::kMul), "kernel");
      });
      double boxed_s = TimePerCall([&] {
        CheckResult(ElementwiseScalarBoxed(a.ref(), 1.5, BinOp::kMul),
                    "boxed");
      });
      out.Print("scalar_mul_float64", n, kernel_s, boxed_s);
    }

    // SUM aggregation.
    for (DType dt : kDTypes) {
      OwnedArray a = MakeOperand(dt, n, 6);
      double kernel_s = TimePerCall([&] {
        CheckResult(AggregateAll(a.ref(), AggKind::kSum), "kernel");
      });
      double boxed_s = TimePerCall([&] {
        CheckResult(AggregateAllBoxed(a.ref(), AggKind::kSum), "boxed");
      });
      out.Print(std::string("sum_") + std::string(DTypeName(dt)), n, kernel_s, boxed_s);
    }

    // Dot product and norm (float dtypes — the kernel fast paths).
    for (DType dt : {DType::kFloat32, DType::kFloat64}) {
      OwnedArray a = MakeOperand(dt, n, 7);
      OwnedArray b = MakeOperand(dt, n, 8);
      double kernel_s = TimePerCall(
          [&] { CheckResult(Dot(a.ref(), b.ref()), "kernel"); });
      double boxed_s = TimePerCall(
          [&] { CheckResult(DotBoxed(a.ref(), b.ref()), "boxed"); });
      out.Print(std::string("dot_") + std::string(DTypeName(dt)), n, kernel_s, boxed_s);

      kernel_s = TimePerCall([&] { CheckResult(Norm2(a.ref()), "kernel"); });
      boxed_s =
          TimePerCall([&] { CheckResult(Norm2Boxed(a.ref()), "boxed"); });
      out.Print(std::string("norm2_") + std::string(DTypeName(dt)), n, kernel_s, boxed_s);
    }

    // Casts.
    const std::pair<DType, DType> kCasts[] = {
        {DType::kFloat64, DType::kFloat32},
        {DType::kInt64, DType::kInt32},
        {DType::kInt32, DType::kFloat64},
        {DType::kFloat64, DType::kInt32},
    };
    for (auto [src, dst] : kCasts) {
      OwnedArray a = MakeOperand(src, n, 9);
      double kernel_s = TimePerCall(
          [&] { CheckResult(ConvertDType(a.ref(), dst), "kernel"); });
      double boxed_s = TimePerCall(
          [&] { CheckResult(ConvertDTypeBoxed(a.ref(), dst), "boxed"); });
      out.Print(std::string("cast_") + std::string(DTypeName(src)) + "_" + std::string(DTypeName(dst)),
                n, kernel_s, boxed_s);
    }
  }
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
