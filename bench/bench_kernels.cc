// Experiment K1: typed kernel dispatch vs the boxed per-element path.
//
// Sweeps element-wise ops, aggregation, dot product, and dtype casts over an
// (op x dtype x size) grid, timing the kernel-dispatched entry points
// (ElementwiseBinary & co.) against the *Boxed reference implementations —
// the pre-kernel per-element GetComplex/GetDouble code path, kept as the
// differential-test oracle. The boxed column is therefore the in-binary
// "before" of the kernel work; speedups here back the PR's acceptance
// numbers (>= 3x on float64 add, >= 2x on SUM aggregation).
//
// Experiment K2: the fused columnar expression pipeline vs row-at-a-time
// evaluation. Runs predicate/aggregate and predicate/projection queries
// through the executor twice per case — vectorized batches (engine/vec_expr)
// against the row-mode evaluator (batch_rows=1) — sweeping expression shape
// and batch size over the Table 1 scalar table. Both modes produce
// bit-identical results (tests/test_vec.cc proves it; the bench asserts row
// counts agree), so the ratio isolates the evaluation strategy. These
// numbers back the PR's acceptance criteria (>= 4x float elementwise + SUM
// at >= 64k elements from K1, >= 10x fused predicate at 1024-row batches
// from K2).
//
// BENCH_ELEMS limits the K1 sweep to a single element count and BENCH_ROWS
// scales the K2 table (both used by the bench_smoke ctest target);
// --json out.json records every case.
#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/ops.h"
#include "engine/exec.h"

namespace sqlarray::bench {
namespace {

std::vector<int64_t> SweepSizes() {
  if (const char* env = std::getenv("BENCH_ELEMS")) {
    return {std::atoll(env)};
  }
  return {4096, 65536, 1 << 20};
}

/// Fills an array of `dtype` with deterministic nonzero values (safe as a
/// division right-hand side).
OwnedArray MakeOperand(DType dtype, int64_t n, uint64_t seed) {
  OwnedArray a =
      CheckResult(OwnedArray::Zeros(dtype, {n}), "bench operand");
  Rng rng(seed);
  auto fill = [&](auto tag) {
    using T = decltype(tag);
    auto data = a.MutableData<T>().value();
    for (int64_t i = 0; i < n; ++i) {
      double v = rng.Uniform(1.0, 100.0) * (i % 2 == 0 ? 1 : -1);
      data[i] = static_cast<T>(v);
    }
  };
  switch (dtype) {
    case DType::kInt8: fill(int8_t{}); break;
    case DType::kInt16: fill(int16_t{}); break;
    case DType::kInt32: fill(int32_t{}); break;
    case DType::kInt64: fill(int64_t{}); break;
    case DType::kFloat32: fill(float{}); break;
    case DType::kFloat64: fill(double{}); break;
    default: Check(Status::Internal("unsupported bench dtype"), "dtype");
  }
  return a;
}

/// Times `fn` (re-running it until ~20 ms have elapsed) and returns seconds
/// per call.
template <typename Fn>
double TimePerCall(Fn&& fn) {
  fn();  // warm-up + correctness check
  int reps = 1;
  for (;;) {
    Stopwatch w;
    for (int i = 0; i < reps; ++i) fn();
    double s = w.ElapsedSeconds();
    if (s >= 0.02 || reps >= 1 << 20) return s / reps;
    reps *= 4;
  }
}

struct CasePrinter {
  void Print(const std::string& name, int64_t n, double kernel_s,
             double boxed_s) {
    std::printf("%-28s %9" PRId64 " | %10.1f | %10.1f | %6.2fx\n",
                name.c_str(), n, n / kernel_s / 1e6, n / boxed_s / 1e6,
                boxed_s / kernel_s);
    RecordJson("kernels", name + "/" + std::to_string(n) + "/kernel",
               kernel_s, n / kernel_s);
    RecordJson("kernels", name + "/" + std::to_string(n) + "/boxed", boxed_s,
               n / boxed_s);
  }
};

const char* OpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kMul: return "mul";
    case BinOp::kDiv: return "div";
  }
  return "?";
}

void Run() {
  Banner("K1", "typed kernels vs boxed per-element path");
  std::printf("%-28s %9s | %10s | %10s | %7s\n", "case", "elems",
              "kernel Me/s", "boxed Me/s", "speedup");
  std::printf("%s\n", std::string(76, '-').c_str());

  const DType kDTypes[] = {DType::kInt32, DType::kInt64, DType::kFloat32,
                           DType::kFloat64};
  CasePrinter out;

  for (int64_t n : SweepSizes()) {
    // Element-wise binary: op x dtype (same-dtype pairs plus one mixed pair).
    for (BinOp op : {BinOp::kAdd, BinOp::kMul, BinOp::kDiv}) {
      for (DType dt : kDTypes) {
        OwnedArray lhs = MakeOperand(dt, n, 1);
        OwnedArray rhs = MakeOperand(dt, n, 2);
        double kernel_s = TimePerCall([&] {
          CheckResult(ElementwiseBinary(lhs.ref(), rhs.ref(), op), "kernel");
        });
        double boxed_s = TimePerCall([&] {
          CheckResult(ElementwiseBinaryBoxed(lhs.ref(), rhs.ref(), op),
                      "boxed");
        });
        out.Print(std::string(OpName(op)) + "_" + std::string(DTypeName(dt)), n, kernel_s,
                  boxed_s);
      }
    }
    {
      // Mixed promotion: int32 + float64.
      OwnedArray lhs = MakeOperand(DType::kInt32, n, 3);
      OwnedArray rhs = MakeOperand(DType::kFloat64, n, 4);
      double kernel_s = TimePerCall([&] {
        CheckResult(ElementwiseBinary(lhs.ref(), rhs.ref(), BinOp::kAdd),
                    "kernel");
      });
      double boxed_s = TimePerCall([&] {
        CheckResult(ElementwiseBinaryBoxed(lhs.ref(), rhs.ref(), BinOp::kAdd),
                    "boxed");
      });
      out.Print("add_int32_float64", n, kernel_s, boxed_s);
    }

    // Scalar broadcast.
    {
      OwnedArray a = MakeOperand(DType::kFloat64, n, 5);
      double kernel_s = TimePerCall([&] {
        CheckResult(ElementwiseScalar(a.ref(), 1.5, BinOp::kMul), "kernel");
      });
      double boxed_s = TimePerCall([&] {
        CheckResult(ElementwiseScalarBoxed(a.ref(), 1.5, BinOp::kMul),
                    "boxed");
      });
      out.Print("scalar_mul_float64", n, kernel_s, boxed_s);
    }

    // SUM aggregation.
    for (DType dt : kDTypes) {
      OwnedArray a = MakeOperand(dt, n, 6);
      double kernel_s = TimePerCall([&] {
        CheckResult(AggregateAll(a.ref(), AggKind::kSum), "kernel");
      });
      double boxed_s = TimePerCall([&] {
        CheckResult(AggregateAllBoxed(a.ref(), AggKind::kSum), "boxed");
      });
      out.Print(std::string("sum_") + std::string(DTypeName(dt)), n, kernel_s, boxed_s);
    }

    // Dot product and norm (float dtypes — the kernel fast paths).
    for (DType dt : {DType::kFloat32, DType::kFloat64}) {
      OwnedArray a = MakeOperand(dt, n, 7);
      OwnedArray b = MakeOperand(dt, n, 8);
      double kernel_s = TimePerCall(
          [&] { CheckResult(Dot(a.ref(), b.ref()), "kernel"); });
      double boxed_s = TimePerCall(
          [&] { CheckResult(DotBoxed(a.ref(), b.ref()), "boxed"); });
      out.Print(std::string("dot_") + std::string(DTypeName(dt)), n, kernel_s, boxed_s);

      kernel_s = TimePerCall([&] { CheckResult(Norm2(a.ref()), "kernel"); });
      boxed_s =
          TimePerCall([&] { CheckResult(Norm2Boxed(a.ref()), "boxed"); });
      out.Print(std::string("norm2_") + std::string(DTypeName(dt)), n, kernel_s, boxed_s);
    }

    // Casts.
    const std::pair<DType, DType> kCasts[] = {
        {DType::kFloat64, DType::kFloat32},
        {DType::kInt64, DType::kInt32},
        {DType::kInt32, DType::kFloat64},
        {DType::kFloat64, DType::kInt32},
    };
    for (auto [src, dst] : kCasts) {
      OwnedArray a = MakeOperand(src, n, 9);
      double kernel_s = TimePerCall(
          [&] { CheckResult(ConvertDType(a.ref(), dst), "kernel"); });
      double boxed_s = TimePerCall(
          [&] { CheckResult(ConvertDTypeBoxed(a.ref(), dst), "boxed"); });
      out.Print(std::string("cast_") + std::string(DTypeName(src)) + "_" + std::string(DTypeName(dst)),
                n, kernel_s, boxed_s);
    }
  }
}

// ---------------------------------------------------------------------------
// K2: fused columnar pipeline vs row-mode evaluation
// ---------------------------------------------------------------------------

engine::SelectItem AggItem(engine::ExprPtr e, engine::SelectItem::AggKind agg,
                           const char* label) {
  engine::SelectItem it;
  it.expr = std::move(e);
  it.agg = agg;
  it.label = label;
  return it;
}

/// Times one bound query in vectorized mode (at `batch`) and in row mode
/// (batch_rows=1), asserts both modes agree on the result row count, prints
/// the pair, and records both as JSON cases.
void TimeVecVsRow(BenchServer* server, engine::Query* q,
                  const std::string& name, int64_t rows, int batch) {
  engine::Executor& ex = server->executor;
  Check(ex.Bind(q), "bind");

  ex.set_scan_workers(1);
  ex.set_vectorized(true);
  ex.set_batch_rows(batch);
  size_t vec_rows = CheckResult(ex.Execute(*q, nullptr), "vec").rows.size();
  double vec_s = TimePerCall(
      [&] { CheckResult(ex.Execute(*q, nullptr), "vec"); });

  ex.set_vectorized(false);
  ex.set_batch_rows(1);
  size_t row_rows = CheckResult(ex.Execute(*q, nullptr), "row").rows.size();
  double row_s = TimePerCall(
      [&] { CheckResult(ex.Execute(*q, nullptr), "row"); });
  ex.set_vectorized(true);
  ex.set_batch_rows(1024);

  if (vec_rows != row_rows) {
    Check(Status::Internal("vec/row result divergence in " + name), "K2");
  }

  const std::string case_name = name + "/" + std::to_string(batch);
  std::printf("%-34s %9" PRId64 " | %10.1f | %10.1f | %6.2fx\n",
              case_name.c_str(), rows, rows / vec_s / 1e6, rows / row_s / 1e6,
              row_s / vec_s);
  RecordJson("vec_expr", case_name + "/vec", vec_s, rows / vec_s);
  RecordJson("vec_expr", case_name + "/row", row_s, rows / row_s);
}

void RunVecExpr() {
  Banner("K2", "fused columnar pipeline vs row-mode evaluation");

  BenchServer server;
  const int64_t rows = BenchRows();
  BuildTable1Tables(&server.db, rows);
  storage::Table* t =
      CheckResult(server.db.GetTable("Tscalar"), "Tscalar lookup");

  std::printf("%-34s %9s | %10s | %10s | %7s\n", "case (query/batch)", "rows",
              "vec Mr/s", "row Mr/s", "speedup");
  std::printf("%s\n", std::string(82, '-').c_str());

  using engine::Bin;
  using engine::BinaryOp;
  using engine::Col;
  using engine::Lit;
  using engine::Query;
  using engine::SelectItem;
  using engine::Value;

  // Fused predicate + aggregate, float lanes — the acceptance case: a
  // compound four-conjunct predicate feeding a multi-term projection, the
  // shape where fusing the whole expression over columnar lanes pays most
  // (row mode walks 13 tree nodes per row; the fused program runs 13
  // kernels per batch). Swept across batch sizes; 1024 is the default the
  // criteria pin.
  for (int batch : {256, 1024, 4096}) {
    Query q;
    q.table = t;
    q.where = Bin(
        BinaryOp::kAnd,
        Bin(BinaryOp::kAnd,
            Bin(BinaryOp::kAnd,
                Bin(BinaryOp::kGt, Col("v1"), Lit(Value::Double(-0.25))),
                Bin(BinaryOp::kLt, Col("v2"), Lit(Value::Double(0.5)))),
            Bin(BinaryOp::kGe, Bin(BinaryOp::kMul, Col("v3"), Col("v4")),
                Lit(Value::Double(-0.8)))),
        Bin(BinaryOp::kNe, Col("v5"), Lit(Value::Double(0.125))));
    q.items.push_back(AggItem(
        Bin(BinaryOp::kSub,
            Bin(BinaryOp::kAdd, Bin(BinaryOp::kMul, Col("v1"), Col("v2")),
                Bin(BinaryOp::kMul, Col("v3"), Col("v4"))),
            Bin(BinaryOp::kMul, Col("v5"), Lit(Value::Double(0.5)))),
        SelectItem::AggKind::kSum, "s"));
    TimeVecVsRow(&server, &q, "fused_pred_sum_float", rows, batch);
  }

  // Integer predicate lanes: modulo + comparison over the BIGINT key.
  {
    Query q;
    q.table = t;
    q.where = Bin(BinaryOp::kNe,
                  Bin(BinaryOp::kMod, Col("id"), Lit(Value::Int(7))),
                  Lit(Value::Int(0)));
    q.items.push_back(
        AggItem(Col("id"), SelectItem::AggKind::kSum, "s"));
    TimeVecVsRow(&server, &q, "pred_mod_sum_int", rows, 1024);
  }

  // Unfiltered multi-aggregate: pure fold throughput.
  {
    Query q;
    q.table = t;
    q.items.push_back(AggItem(Col("v1"), SelectItem::AggKind::kSum, "s"));
    q.items.push_back(AggItem(Col("v2"), SelectItem::AggKind::kMin, "mn"));
    q.items.push_back(AggItem(Col("v3"), SelectItem::AggKind::kMax, "mx"));
    TimeVecVsRow(&server, &q, "agg_sum_min_max_float", rows, 1024);
  }

  // Predicate + projection in row mode: column materialization included.
  {
    Query q;
    q.table = t;
    q.where = Bin(BinaryOp::kGt, Col("v1"), Lit(Value::Double(0.5)));
    q.items.push_back(AggItem(Col("id"), SelectItem::AggKind::kNone, "id"));
    q.items.push_back(
        AggItem(Bin(BinaryOp::kSub, Bin(BinaryOp::kMul, Col("v2"), Col("v3")),
                    Col("v4")),
                SelectItem::AggKind::kNone, "e"));
    TimeVecVsRow(&server, &q, "pred_project_rows", rows, 1024);
  }
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::RunVecExpr();
  sqlarray::bench::FlushJson();
  return 0;
}
