// Experiment S1: overload behavior of the multi-session front-end.
//
// A closed-loop workload: BENCH_SESSIONS concurrent sessions (default 200)
// each drive BENCH_SERVER_OPS statements back-to-back through one
// ArrayServer over a shared executor. The mix is reads (COUNT range
// filters), hash aggregates, per-session INSERTs, and a "runaway" class —
// every 8th session arms a tiny STATEMENT_TIMEOUT_MS and runs a UDF-heavy
// scan that is guaranteed to blow it, so deadline kills happen under load.
//
// The same workload runs twice: admission control ON (bounded slots +
// bounded FIFO queue, overflow rejected with retry-after) and OFF (every
// statement races the engine directly). Reported per config: completed-op
// p50/p99 latency, saturation throughput, and the kill/reject census. The
// comparison is the point: admission keeps tail latency bounded and sheds
// load by rejecting, instead of letting everything pile up.
//
// --json output carries the standard {"records", "metrics"} shape plus a
// top-level "server" object with both configs' numbers
// (cmake/bench_json_smoke.cmake validates the shape).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "gov/gov.h"
#include "mvcc/mvcc.h"
#include "server/server.h"
#include "wal/wal.h"

namespace sqlarray::bench {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) return std::atoll(env);
  return fallback;
}

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Registers Gov.Spin(x): burns ~20us of CPU and returns x. The runaway
/// class scans through it so its statements reliably outlive a small
/// statement timeout.
void RegisterSpinUdf(engine::FunctionRegistry* registry) {
  engine::ScalarFunction spin;
  spin.schema = "Gov";
  spin.name = "Spin";
  spin.arity = 1;
  spin.boundary = engine::Boundary::kClr;
  spin.fn = [](std::span<const engine::Value> args,
               engine::UdfContext&) -> Result<engine::Value> {
    auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(20);
    while (std::chrono::steady_clock::now() < until) {
    }
    return args[0];
  };
  Check(registry->RegisterScalar(std::move(spin)), "register Gov.Spin");
}

struct LoadResult {
  /// First submit to completion, including reject/backoff/resubmit cycles.
  std::vector<double> latencies_ms;
  /// The successful attempt only: FIFO queue wait + execution. This is the
  /// latency an admitted statement experiences — the number admission
  /// control is supposed to keep bounded.
  std::vector<double> service_ms;
  int64_t ok = 0;
  int64_t rejected = 0;
  int64_t deadline_kills = 0;
  int64_t cancelled = 0;
  int64_t budget_kills = 0;
  int64_t write_conflicts = 0;
  int64_t other_errors = 0;
  double wall_s = 0;
  int64_t peak_queue_depth = 0;

  static double Pct(const std::vector<double>& samples, double p) {
    if (samples.empty()) return 0;
    std::vector<double> v = samples;
    std::sort(v.begin(), v.end());
    size_t idx = static_cast<size_t>(p * (v.size() - 1));
    return v[idx];
  }
  double Percentile(double p) const { return Pct(latencies_ms, p); }
  double ServicePercentile(double p) const { return Pct(service_ms, p); }
  double Qps() const { return wall_s > 0 ? ok / wall_s : 0; }
};

/// Runs the closed loop against a fresh database/server pair.
LoadResult RunLoad(bool admission_enabled, int sessions, int ops_per_session,
                   int64_t rows) {
  storage::Database db;
  wal::WalManager wal(&db);
  // MVCC front and center: every session's DML runs as a snapshot-isolated
  // transaction, and the hot-row op class below contends on claims so the
  // closed loop exercises the kWriteConflict backoff path.
  mvcc::MvccManager mvcc(&db, &wal);
  engine::FunctionRegistry registry;
  engine::Executor executor(&db, &registry);
  Check(udfs::RegisterAllUdfs(&registry), "udf registration");
  RegisterSpinUdf(&registry);

  server::ServerConfig cfg;
  cfg.admission.enabled = admission_enabled;
  cfg.admission.max_concurrent = 8;
  cfg.admission.max_queue = 64;
  cfg.watchdog_interval_ms = 2;
  server::ArrayServer srv(&executor, cfg);

  // Shared read table plus one private insert target per session.
  int64_t setup = srv.OpenSession();
  Check(srv.Execute(setup, "CREATE TABLE shared (id BIGINT, v BIGINT)")
            .status,
        "create shared");
  {
    std::string values;
    for (int64_t i = 0; i < rows; ++i) {
      if (!values.empty()) values += ", ";
      values +=
          "(" + std::to_string(i) + ", " + std::to_string(i % 17) + ")";
      if (values.size() > 200000 || i + 1 == rows) {
        Check(srv.Execute(setup, "INSERT INTO shared VALUES " + values)
                  .status,
              "load shared");
        values.clear();
      }
    }
  }

  // A tiny hot table: every 4th op rewrites one of 4 rows inside an
  // explicit transaction, so concurrent sessions collide on the same
  // clustered keys and the first-updater-wins path fires under load.
  Check(srv.Execute(setup, "CREATE TABLE hot (id BIGINT, v BIGINT)").status,
        "create hot");
  Check(srv.Execute(setup,
                    "INSERT INTO hot VALUES (0, 0), (1, 0), (2, 0), (3, 0)")
            .status,
        "load hot");

  std::vector<int64_t> ids;
  for (int s = 0; s < sessions; ++s) {
    int64_t id = srv.OpenSession();
    ids.push_back(id);
    Check(srv.Execute(id, "CREATE TABLE p" + std::to_string(s) +
                              " (id BIGINT, v BIGINT)")
              .status,
          "create private");
  }

  std::vector<LoadResult> per_thread(sessions);
  const int64_t spin_rows = std::min<int64_t>(rows, 2000);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      LoadResult& out = per_thread[s];
      int64_t id = ids[s];
      const bool runaway = s % 8 == 7;
      if (runaway) {
        (void)srv.Execute(id, "SET STATEMENT_TIMEOUT_MS = 5");
      }
      for (int op = 0; op < ops_per_session; ++op) {
        std::string sql;
        if (runaway && op % 2 == 1) {
          sql = "SELECT SUM(Gov.Spin(v)) FROM shared WHERE id < " +
                std::to_string(spin_rows);
        } else {
          switch ((s + op) % 4) {
            case 0:
              sql = "SELECT COUNT(id) FROM shared WHERE id < " +
                    std::to_string((op + 1) * 1000);
              break;
            case 1:
              sql = "SELECT v, SUM(id) FROM shared GROUP BY v";
              break;
            case 2:
              sql = "INSERT INTO p" + std::to_string(s) + " VALUES (" +
                    std::to_string(op) + ", " + std::to_string(s) + ")";
              break;
            default: {
              // Hot-row rewrite: the engine has no UPDATE, so rewrite is a
              // delete+insert of the same clustered key inside one
              // transaction — the claim on the key is what conflicts.
              std::string k = std::to_string((s + op) % 4);
              sql = "BEGIN TRANSACTION; DELETE FROM hot WHERE id = " + k +
                    "; INSERT INTO hot VALUES (" + k + ", " +
                    std::to_string(s) + "); COMMIT";
              break;
            }
          }
        }
        // Closed loop with retry-after: a rejected statement backs off for
        // the controller's advertised delay and resubmits. Latency is
        // end-to-end (first submit to completion), so queueing and backoff
        // both show up in the percentiles.
        auto q0 = std::chrono::steady_clock::now();
        for (int attempt = 0; attempt < 200; ++attempt) {
          auto a0 = std::chrono::steady_clock::now();
          auto r = srv.Execute(id, sql);
          if (r.ok()) {
            auto a1 = std::chrono::steady_clock::now();
            ++out.ok;
            out.latencies_ms.push_back(Seconds(q0, a1) * 1e3);
            out.service_ms.push_back(Seconds(a0, a1) * 1e3);
            break;
          }
          StatusCode code = r.status.code();
          if (code == StatusCode::kWriteConflict) {
            // First-updater-wins loser: roll the open transaction back
            // (best-effort — autocommitted losers already rolled back),
            // honor the typed retry-after hint, and resubmit the batch.
            ++out.write_conflicts;
            (void)srv.Execute(id, "ROLLBACK");
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::max<int64_t>(r.retry_after_ms, 1)
                << std::min(attempt, 4)));
            continue;
          }
          if (code == StatusCode::kResourceExhausted) {
            // Admission rejection (the workload has no memory budgets).
            // Back off exponentially from the outcome's typed retry-after
            // hint so 200 rejected sessions don't resubmit in lockstep.
            ++out.rejected;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                r.retry_after_ms << std::min(attempt, 4)));
            continue;
          }
          if (code == StatusCode::kDeadlineExceeded) {
            ++out.deadline_kills;
          } else if (code == StatusCode::kCancelled) {
            ++out.cancelled;
          } else {
            ++out.other_errors;
            std::fprintf(stderr, "unexpected: %s\n",
                         r.status.ToString().c_str());
          }
          // A kill mid-hot-batch can strand the explicit transaction;
          // clear it so the session's next BEGIN succeeds.
          if (sql.rfind("BEGIN", 0) == 0) (void)srv.Execute(id, "ROLLBACK");
          break;  // kills are terminal for the op; move on
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();

  LoadResult total;
  total.wall_s = Seconds(t0, t1);
  for (const LoadResult& p : per_thread) {
    total.ok += p.ok;
    total.rejected += p.rejected;
    total.deadline_kills += p.deadline_kills;
    total.cancelled += p.cancelled;
    total.budget_kills += p.budget_kills;
    total.write_conflicts += p.write_conflicts;
    total.other_errors += p.other_errors;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              p.latencies_ms.begin(), p.latencies_ms.end());
    total.service_ms.insert(total.service_ms.end(), p.service_ms.begin(),
                            p.service_ms.end());
  }
  total.peak_queue_depth = srv.admission_stats().peak_queue_depth;
  return total;
}

void PrintResult(const char* label, const LoadResult& r, int sessions) {
  std::printf(
      "%-14s sessions=%d ok=%lld rej=%lld dl_kills=%lld cancel=%lld "
      "conflicts=%lld other=%lld  service p50=%.2fms p99=%.2fms | e2e "
      "p50=%.2fms p99=%.2fms | qps=%.0f wall=%.2fs peakq=%lld\n",
      label, sessions, static_cast<long long>(r.ok),
      static_cast<long long>(r.rejected),
      static_cast<long long>(r.deadline_kills),
      static_cast<long long>(r.cancelled),
      static_cast<long long>(r.write_conflicts),
      static_cast<long long>(r.other_errors), r.ServicePercentile(0.5),
      r.ServicePercentile(0.99), r.Percentile(0.5), r.Percentile(0.99),
      r.Qps(), r.wall_s, static_cast<long long>(r.peak_queue_depth));
}

void AppendServerJson(std::FILE* f, const char* key, const LoadResult& r,
                      bool last) {
  std::fprintf(f,
               "    \"%s\": {\"ok\": %lld, \"rejected\": %lld, "
               "\"deadline_kills\": %lld, \"cancelled\": %lld, "
               "\"write_conflicts\": %lld, "
               "\"other_errors\": %lld, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
               "\"p50_e2e_ms\": %.4f, \"p99_e2e_ms\": %.4f, "
               "\"qps\": %.2f, \"wall_s\": %.4f, \"peak_queue_depth\": "
               "%lld}%s\n",
               key, static_cast<long long>(r.ok),
               static_cast<long long>(r.rejected),
               static_cast<long long>(r.deadline_kills),
               static_cast<long long>(r.cancelled),
               static_cast<long long>(r.write_conflicts),
               static_cast<long long>(r.other_errors),
               r.ServicePercentile(0.5), r.ServicePercentile(0.99),
               r.Percentile(0.5), r.Percentile(0.99), r.Qps(), r.wall_s,
               static_cast<long long>(r.peak_queue_depth), last ? "" : ",");
}

/// FlushJson with an extra top-level "server" object. Mirrors bench_util's
/// writer so the smoke harness's shape check keeps passing.
void FlushServerJson(int sessions, int ops, const LoadResult& on,
                     const LoadResult& off) {
  JsonSink& sink = GlobalJsonSink();
  if (sink.path.empty()) return;
  std::FILE* f = std::fopen(sink.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s for writing\n",
                 sink.path.c_str());
    std::abort();
  }
  std::fprintf(f, "{\n  \"records\": [\n");
  for (size_t i = 0; i < sink.records.size(); ++i) {
    const JsonRecord& r = sink.records[i];
    std::fprintf(f,
                 "    {\"bench\": \"%s\", \"case\": \"%s\", \"wall_s\": "
                 "%.9g, \"throughput\": %.9g}%s\n",
                 JsonEscape(r.bench).c_str(), JsonEscape(r.case_name).c_str(),
                 r.wall_s, r.throughput,
                 i + 1 < sink.records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"server\": {\n");
  std::fprintf(f, "    \"sessions\": %d,\n    \"ops_per_session\": %d,\n",
               sessions, ops);
  AppendServerJson(f, "admission_on", on, /*last=*/false);
  AppendServerJson(f, "admission_off", off, /*last=*/true);
  std::fprintf(f, "  },\n  \"metrics\": {\n");
  const std::map<std::string, int64_t> metrics =
      obs::MetricsRegistry::Global().Snapshot().values();
  size_t emitted = 0;
  for (const auto& [name, value] : metrics) {
    std::fprintf(f, "    \"%s\": %lld%s\n", JsonEscape(name).c_str(),
                 static_cast<long long>(value),
                 ++emitted < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %zu JSON records to %s\n", sink.records.size(),
              sink.path.c_str());
}

void RunBench() {
  const int sessions = static_cast<int>(EnvInt("BENCH_SESSIONS", 200));
  const int ops = static_cast<int>(EnvInt("BENCH_SERVER_OPS", 6));
  const int64_t rows = std::min<int64_t>(BenchRows(), 20000);

  Banner("S1", "overload behavior: admission control on vs off");
  std::printf("closed loop: %d sessions x %d ops, %lld shared rows\n\n",
              sessions, ops, static_cast<long long>(rows));

  LoadResult on = RunLoad(/*admission_enabled=*/true, sessions, ops, rows);
  PrintResult("admission_on", on, sessions);
  LoadResult off = RunLoad(/*admission_enabled=*/false, sessions, ops, rows);
  PrintResult("admission_off", off, sessions);

  std::printf(
      "\nservice p99 %.2fms (admitted) vs %.2fms (unthrottled, %d-way "
      "contention): admission bounds the latency an accepted statement "
      "sees; the cost is %lld retry-after rejections and e2e p99 %.2fms "
      "for sessions that kept resubmitting\n",
      on.ServicePercentile(0.99), off.ServicePercentile(0.99), sessions,
      static_cast<long long>(on.rejected), on.Percentile(0.99));

  RecordJson("bench_server", "admission_on", on.wall_s, on.Qps());
  RecordJson("bench_server", "admission_off", off.wall_s, off.Qps());
  FlushServerJson(sessions, ops, on, off);
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::RunBench();
  return 0;
}
