// Shared helpers for the experiment benches.
//
// Builds the Table 1 workload tables and prints paper-vs-measured tables.
// Scale: the paper uses 357 M rows on a Dell PowerVault testbed; benches
// default to a 1/1000 scale (357 k rows) and project modeled full-scale
// numbers by linear scaling (the scan workload is embarrassingly linear).
// Override with the BENCH_ROWS environment variable.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/array.h"
#include "engine/exec.h"
#include "obs/metrics.h"
#include "sql/session.h"
#include "storage/table.h"
#include "udfs/register.h"

namespace sqlarray::bench {

/// Row count of the paper's test tables (Sec. 6.2).
inline constexpr int64_t kPaperRows = 357000000;

/// Default bench scale (1/1000 of the paper).
inline int64_t BenchRows() {
  if (const char* env = std::getenv("BENCH_ROWS")) {
    return std::atoll(env);
  }
  return 357000;
}

/// Aborts with a message when a Status is not OK (bench-only convenience).
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

/// Builds Tscalar (five FLOAT columns) and Tvector (one packed 5-vector in a
/// fixed binary column), both keyed by BIGINT id, with identical values
/// (Sec. 6.2). Uses the bulk loader so loading stays linear.
inline void BuildTable1Tables(storage::Database* db, int64_t rows) {
  using storage::ColumnType;

  storage::Schema scalar_schema = CheckResult(
      storage::Schema::Create({{"id", ColumnType::kInt64, 0},
                               {"v1", ColumnType::kFloat64, 0},
                               {"v2", ColumnType::kFloat64, 0},
                               {"v3", ColumnType::kFloat64, 0},
                               {"v4", ColumnType::kFloat64, 0},
                               {"v5", ColumnType::kFloat64, 0}}),
      "scalar schema");
  // A 5-double short array blob is 24 + 40 = 64 bytes.
  storage::Schema vector_schema = CheckResult(
      storage::Schema::Create(
          {{"id", ColumnType::kInt64, 0}, {"v", ColumnType::kBinary, 64}}),
      "vector schema");

  storage::Table* tscalar = CheckResult(
      db->CreateTable("Tscalar", std::move(scalar_schema)), "Tscalar");
  storage::Table* tvector = CheckResult(
      db->CreateTable("Tvector", std::move(vector_schema)), "Tvector");

  // Load one table at a time so each table's leaf chain occupies contiguous
  // pages (the disk model distinguishes sequential from random reads). The
  // same seed makes the two tables hold identical values.
  {
    auto load = CheckResult(tscalar->StartBulkLoad(), "scalar bulk loader");
    Rng rng(20110324);
    for (int64_t id = 0; id < rows; ++id) {
      double v[5];
      for (int k = 0; k < 5; ++k) v[k] = rng.Uniform(-1, 1);
      Check(load.Add({id, v[0], v[1], v[2], v[3], v[4]}), "scalar insert");
    }
    Check(load.Finish(), "scalar finish");
  }
  {
    auto load = CheckResult(tvector->StartBulkLoad(), "vector bulk loader");
    Rng rng(20110324);
    OwnedArray vec = CheckResult(
        OwnedArray::Zeros(DType::kFloat64, {5}, StorageClass::kShort),
        "vector template");
    for (int64_t id = 0; id < rows; ++id) {
      auto data = vec.MutableData<double>().value();
      for (int k = 0; k < 5; ++k) data[k] = rng.Uniform(-1, 1);
      Check(load.Add({id, std::vector<uint8_t>(vec.blob().begin(),
                                               vec.blob().end())}),
            "vector insert");
    }
    Check(load.Finish(), "vector finish");
  }
}

/// An engine + registry + session bundle with all UDFs registered.
struct BenchServer {
  storage::Database db;
  engine::FunctionRegistry registry;
  engine::Executor executor;
  sql::Session session;

  BenchServer() : executor(&db, &registry), session(&executor) {
    Check(udfs::RegisterAllUdfs(&registry), "udf registration");
  }
};

/// Prints a standard experiment banner.
inline void Banner(const char* id, const char* title) {
  std::printf("\n=== %s — %s ===\n", id, title);
}

// ---------------------------------------------------------------------------
// Machine-readable results: pass `--json out.json` to any bench and FlushJson
// writes {"records": [...], "metrics": {...}} — every RecordJson call as a
// {"bench": ..., "case": ..., "wall_s": ..., "throughput": ...} record, plus
// a final MetricsRegistry snapshot (engine-wide counters such as
// storage.disk.pages_read and core.dispatch.kernel). Throughput units are
// bench-specific (rows/s or elements/s); wall_s is measured wall time.
// ---------------------------------------------------------------------------

struct JsonRecord {
  std::string bench;
  std::string case_name;
  double wall_s = 0;
  double throughput = 0;
};

struct JsonSink {
  std::string path;
  std::vector<JsonRecord> records;
};

inline JsonSink& GlobalJsonSink() {
  static JsonSink sink;
  return sink;
}

/// Parses bench command-line flags. Supports `--json <path>` and
/// `--json=<path>`; unknown arguments are ignored so benches stay tolerant
/// of harness-supplied flags.
inline void ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      GlobalJsonSink().path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      GlobalJsonSink().path = arg.substr(7);
    }
  }
}

/// Records one case's result; written out by FlushJson when --json was given.
inline void RecordJson(const std::string& bench, const std::string& case_name,
                       double wall_s, double throughput) {
  GlobalJsonSink().records.push_back({bench, case_name, wall_s, throughput});
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Writes the recorded cases to the --json path (no-op without the flag).
/// Call once at the end of main.
inline void FlushJson() {
  JsonSink& sink = GlobalJsonSink();
  if (sink.path.empty()) return;
  std::FILE* f = std::fopen(sink.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s for writing\n",
                 sink.path.c_str());
    std::abort();
  }
  std::fprintf(f, "{\n  \"records\": [\n");
  for (size_t i = 0; i < sink.records.size(); ++i) {
    const JsonRecord& r = sink.records[i];
    std::fprintf(f,
                 "    {\"bench\": \"%s\", \"case\": \"%s\", \"wall_s\": %.9g, "
                 "\"throughput\": %.9g}%s\n",
                 JsonEscape(r.bench).c_str(), JsonEscape(r.case_name).c_str(),
                 r.wall_s, r.throughput, i + 1 < sink.records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"metrics\": {\n");
  const std::map<std::string, int64_t> metrics =
      obs::MetricsRegistry::Global().Snapshot().values();
  size_t emitted = 0;
  for (const auto& [name, value] : metrics) {
    std::fprintf(f, "    \"%s\": %lld%s\n", JsonEscape(name).c_str(),
                 static_cast<long long>(value),
                 ++emitted < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %zu JSON records to %s\n", sink.records.size(),
              sink.path.c_str());
}

}  // namespace sqlarray::bench
