// Experiment C1b (Sec. 2.1): space-filling-curve clustering of blob rows.
//
// "If those [blobs] are still appropriately clustered along a space filling
// curve, even disk access could be controlled at the application level."
// A spatially coherent query stream (a particle drifting through the box —
// the Lagrangian tracking workload of the turbulence service) touches
// NEIGHBORING cubes consecutively. With Morton-ordered keys those cubes sit
// on nearby disk pages, so the scan degenerates gracefully; with row-major
// keys a +1 step in y or z jumps across the whole table.
#include <cmath>

#include "bench/bench_util.h"
#include "sci/turbulence/service.h"

namespace sqlarray::bench {
namespace {

/// A smooth pseudo-trajectory through the box.
std::vector<std::array<double, 3>> Trajectory(int64_t n, int steps) {
  std::vector<std::array<double, 3>> out;
  out.reserve(steps);
  double x = 3.0, y = 5.0, z = 7.0;
  for (int s = 0; s < steps; ++s) {
    // Drift dominated by z — the axis where row-major keys are least
    // contiguous — with incommensurate wiggle so all octants are visited.
    x += 0.3 + 0.3 * std::sin(s * 0.05);
    y += 0.5 + 0.3 * std::sin(s * 0.031 + 1.0);
    z += 0.9 + 0.3 * std::sin(s * 0.043 + 2.0);
    out.push_back({std::fmod(x, static_cast<double>(n)),
                   std::fmod(y, static_cast<double>(n)),
                   std::fmod(z, static_cast<double>(n))});
  }
  return out;
}

struct RunStats {
  double seq_fraction = 0;
  double io_ms = 0;
  int64_t pages = 0;
};

RunStats Measure(turbulence::CubeOrder order, int64_t n,
                 const std::vector<std::array<double, 3>>& path) {
  turbulence::SyntheticField field(n, 12, 3);
  turbulence::PartitionConfig config;
  config.core = 8;
  config.overlap = 4;
  config.order = order;
  storage::Database db;
  // A small buffer pool forces the access pattern to show up as I/O.
  storage::Table* table = CheckResult(
      turbulence::LoadIntoTable(field, config, &db, "blobs"), "load");
  turbulence::InterpolationService service(&db, table, config, n);

  db.ClearCache();
  db.disk()->ResetStats();
  for (const auto& p : path) {
    Check(service.Sample(p[0], p[1], p[2], math::InterpScheme::kLagrange8)
              .status(),
          "sample");
  }
  const storage::IoStats& io = db.disk()->stats();
  RunStats out;
  out.pages = io.pages_read;
  out.seq_fraction = io.pages_read > 0
                         ? static_cast<double>(io.sequential_reads) /
                               static_cast<double>(io.pages_read)
                         : 0;
  out.io_ms = io.virtual_read_seconds * 1e3;
  return out;
}

void Run() {
  Banner("C1b", "z-curve vs row-major clustering of blob rows");
  const int64_t n = 128;
  auto path = Trajectory(n, 6000);
  std::printf("workload: a particle trajectory of %zu steps through a "
              "%lld^3 field (8-point stencils, cold start)\n",
              path.size(), static_cast<long long>(n));

  RunStats morton = Measure(turbulence::CubeOrder::kMorton, n, path);
  RunStats rowmajor = Measure(turbulence::CubeOrder::kRowMajor, n, path);

  std::printf("\n%10s | %10s | %14s | %12s\n", "ordering", "pages",
              "seq. fraction", "modeled ms");
  std::printf("%s\n", std::string(56, '-').c_str());
  std::printf("%10s | %10lld | %13.1f%% | %12.2f\n", "morton",
              static_cast<long long>(morton.pages),
              100 * morton.seq_fraction, morton.io_ms);
  std::printf("%10s | %10lld | %13.1f%% | %12.2f\n", "row-major",
              static_cast<long long>(rowmajor.pages),
              100 * rowmajor.seq_fraction, rowmajor.io_ms);
  std::printf(
      "\nexpected shape: the Morton layout turns a spatially coherent query "
      "stream into more nearly-sequential page access than row-major keys, "
      "cutting modeled I/O time — the paper's clustering claim.\n");
}

}  // namespace
}  // namespace sqlarray::bench

int main(int argc, char** argv) {
  sqlarray::bench::ParseBenchArgs(argc, argv);
  sqlarray::bench::Run();
  sqlarray::bench::FlushJson();
  return 0;
}
