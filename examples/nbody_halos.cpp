// N-body scenario (Sec. 2.3): bucket a particle snapshot into array rows,
// find FOF halos, link them across time steps into a merger history, compute
// the CIC density + power spectrum, and extract a light cone.
//
// Run: ./build/examples/nbody_halos
#include <cstdio>

#include "sci/nbody/bucket.h"
#include "sci/nbody/cic.h"
#include "sci/nbody/correlation.h"
#include "sci/nbody/fof.h"
#include "sci/nbody/lightcone.h"
#include "sci/nbody/merger.h"

using namespace sqlarray;

int main() {
  nbody::SnapshotConfig config;
  config.num_halos = 10;
  config.particles_per_halo = 500;
  config.background_particles = 4000;

  // Three snapshots of the same particle set (the first two halos are on a
  // collision course).
  std::vector<nbody::Snapshot> snaps{nbody::MakeInitialSnapshot(config, 99)};
  for (int s = 0; s < 4; ++s) {
    snaps.push_back(nbody::EvolveSnapshot(snaps.back(), config, 100 + s));
  }
  std::printf("simulated %zu snapshots of %zu particles\n", snaps.size(),
              snaps[0].particles.size());

  // Bucketed array storage (the anti-1.6-trillion-rows design).
  storage::Database db;
  auto bucketed = nbody::LoadBucketed(snaps[0], &db, "snap0", 8);
  if (!bucketed.ok()) return 1;
  std::printf("snapshot 0 stored as %lld bucket rows (ids/pos/vel array "
              "blobs) instead of %zu point rows\n",
              static_cast<long long>((*bucketed)->row_count()),
              snaps[0].particles.size());

  // FOF halos per snapshot + merger links between consecutive snapshots.
  std::printf("\nFOF halos (linking length 0.8, >= 50 members):\n");
  std::vector<nbody::FofResult> fofs;
  for (const nbody::Snapshot& snap : snaps) {
    auto fof = nbody::FriendsOfFriends(snap, 0.8, 50);
    if (!fof.ok()) return 1;
    std::printf("  step %d: %2zu halos, largest %4zu members\n", snap.step,
                fof->halos.size(),
                fof->halos.empty() ? 0 : fof->halos[0].size());
    fofs.push_back(std::move(*fof));
  }

  std::printf("\nmerger history (progenitor -> descendant by shared IDs):\n");
  for (size_t s = 0; s + 1 < snaps.size(); ++s) {
    auto links = nbody::LinkHalos(snaps[s], fofs[s], snaps[s + 1],
                                  fofs[s + 1], 0.25);
    if (!links.ok()) return 1;
    std::map<int64_t, int> indegree;
    for (const nbody::MergerLink& link : *links) indegree[link.halo_next]++;
    int mergers = 0;
    for (auto& [halo, count] : indegree) mergers += count >= 2 ? 1 : 0;
    std::printf("  step %zu -> %zu: %zu links, %d merger(s)\n", s, s + 1,
                links->size(), mergers);
  }

  // CIC density + power spectrum of the final snapshot.
  const int64_t m = 64;
  auto delta = nbody::CicDensity(snaps.back(), m);
  if (!delta.ok()) return 1;
  auto power = nbody::PowerSpectrum(*delta, m, config.box, 8);
  if (!power.ok()) return 1;
  std::printf("\npower spectrum of the CIC density (%lld^3 grid):\n",
              static_cast<long long>(m));
  for (const nbody::PowerBin& bin : *power) {
    if (bin.modes == 0) continue;
    std::printf("  k = %5.2f  P(k) = %9.2e  (%lld modes)\n", bin.k,
                bin.power, static_cast<long long>(bin.modes));
  }

  // Two-point correlation function.
  auto xi = nbody::TwoPointCorrelation(snaps.back(), 10.0, 8);
  if (!xi.ok()) return 1;
  std::printf("\ntwo-point correlation xi(r):\n");
  for (const nbody::XiBin& bin : *xi) {
    std::printf("  r in [%4.1f, %4.1f): xi = %8.2f\n", bin.r_lo, bin.r_hi,
                bin.xi);
  }

  // Light cone through the snapshots.
  nbody::LightconeConfig cone;
  cone.observer = {-60, 50, 50};
  cone.direction = {1, 0, 0};
  cone.half_angle_deg = 20;
  cone.r0 = 50;
  cone.shell_depth = 45;
  auto lc = nbody::BuildLightcone(snaps, cone);
  if (!lc.ok()) return 1;
  double max_doppler = 0;
  for (const nbody::LightconePoint& p : *lc) {
    max_doppler = std::max(max_doppler, std::fabs(p.doppler_z));
  }
  std::printf("\nlight cone: %zu particles selected across %zu epoch "
              "shells; max |Doppler z| = %.2e\n",
              lc->size(), snaps.size(), max_doppler);
  return 0;
}
