// Turbulence scenario (Sec. 2.1): partition a velocity-field snapshot into
// z-curve-ordered blob rows, then run the particle interpolation service —
// "the equivalent of placing small sensors into the simulation instead of
// downloading all the data".
//
// Run: ./build/examples/turbulence_query
#include <cstdio>

#include "common/rng.h"
#include "sci/turbulence/service.h"

using namespace sqlarray;

int main() {
  // A synthetic solenoidal field standing in for the 1024^3 DNS snapshot.
  const int64_t n = 64;
  turbulence::SyntheticField field(n, 24, 2024);
  std::printf("synthetic isotropic field: %lld^3 grid, div-free, periodic\n",
              static_cast<long long>(n));

  // Partition into (16 + 2*4)^3 cubes along the Morton curve, one row each.
  turbulence::PartitionConfig config;
  config.core = 16;
  config.overlap = 4;
  storage::Database db;
  auto table_or = turbulence::LoadIntoTable(field, config, &db, "velocity");
  if (!table_or.ok()) {
    std::printf("load failed: %s\n", table_or.status().ToString().c_str());
    return 1;
  }
  storage::Table* table = *table_or;
  std::printf("partitioned into %lld blob rows of (%lld+2*%lld)^3 voxels "
              "(%.0f kB each)\n",
              static_cast<long long>(table->row_count()),
              static_cast<long long>(config.core),
              static_cast<long long>(config.overlap),
              config.BlobBytes() / 1e3);

  // Submit a batch of "sensor" particles, as the public service does.
  turbulence::InterpolationService service(&db, table, config, n);
  Rng rng(7);
  std::vector<std::array<double, 3>> particles(10);
  for (auto& p : particles) {
    p = {rng.Uniform(0, n), rng.Uniform(0, n), rng.Uniform(0, n)};
  }

  std::printf("\n%28s | %28s | %12s\n", "position",
              "velocity (8-pt Lagrangian)", "truth err");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (const auto& p : particles) {
    auto v_or =
        service.Sample(p[0], p[1], p[2], math::InterpScheme::kLagrange8);
    if (!v_or.ok()) {
      std::printf("sample failed: %s\n", v_or.status().ToString().c_str());
      return 1;
    }
    turbulence::VelocitySample v = *v_or;
    turbulence::FlowSample truth = field.Evaluate(p[0], p[1], p[2]);
    double err = std::max({std::fabs(v.u - truth.u), std::fabs(v.v - truth.v),
                           std::fabs(v.w - truth.w)});
    std::printf("(%7.2f, %7.2f, %7.2f) | (%7.3f, %7.3f, %7.3f) | %11.2e\n",
                p[0], p[1], p[2], v.u, v.v, v.w, err);
  }

  const turbulence::ServiceStats& stats = service.stats();
  std::printf("\nservice stats: %lld particles, %.1f kB of blob ranges read "
              "(not whole blobs), %lld cross-blob fallbacks\n",
              static_cast<long long>(stats.particles),
              stats.blob_bytes_read / 1e3,
              static_cast<long long>(stats.fallback_full_reads));

  // Compare interpolation schemes at one point, as the service menu offers.
  double x = 31.4, y = 15.9, z = 26.5;
  turbulence::FlowSample truth = field.Evaluate(x, y, z);
  std::printf("\nscheme comparison at (%.1f, %.1f, %.1f), truth u = %.6f\n",
              x, y, z, truth.u);
  struct SchemeRow {
    const char* name;
    math::InterpScheme scheme;
  };
  for (const SchemeRow& row :
       {SchemeRow{"nearest", math::InterpScheme::kNearest},
        SchemeRow{"linear", math::InterpScheme::kLinear},
        SchemeRow{"Lagrange-4", math::InterpScheme::kLagrange4},
        SchemeRow{"Lagrange-6", math::InterpScheme::kLagrange6},
        SchemeRow{"Lagrange-8", math::InterpScheme::kLagrange8}}) {
    auto v = service.Sample(x, y, z, row.scheme);
    if (v.ok()) {
      std::printf("  %-10s u = %9.6f   |err| = %.2e\n", row.name, v->u,
                  std::fabs(v->u - truth.u));
    }
  }
  return 0;
}
