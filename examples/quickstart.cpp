// Quickstart: stand up an in-process "server", run the paper's T-SQL
// examples (Sec. 5.1), and use the Sec. 8 subscript sugar.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "engine/exec.h"
#include "sql/session.h"
#include "udfs/register.h"

using sqlarray::engine::ResultSet;
using sqlarray::engine::Value;

namespace {

/// Runs a batch and prints every result set.
void Run(sqlarray::sql::Session* session, const char* sql) {
  std::printf("\nSQL> %s\n", sql);
  auto results = session->Execute(sql);
  if (!results.ok()) {
    std::printf("  error: %s\n", results.status().ToString().c_str());
    return;
  }
  for (const ResultSet& rs : *results) {
    for (const auto& row : rs.rows) {
      std::printf("  ");
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? " | " : "",
                    row[c].ToDisplayString().c_str());
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  // The "server": simulated disk + buffer pool + catalog + UDF registry.
  sqlarray::storage::Database db;
  sqlarray::engine::FunctionRegistry registry;
  if (!sqlarray::udfs::RegisterAllUdfs(&registry).ok()) return 1;
  sqlarray::engine::Executor executor(&db, &registry);
  sqlarray::sql::Session session(&executor);

  std::printf("== arrays as T-SQL values (Sec. 5.1 examples) ==\n");
  Run(&session,
      "DECLARE @a VARBINARY(100) = "
      "FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)");
  Run(&session, "SELECT FloatArray.Item_1(@a, 3)");
  Run(&session,
      "DECLARE @m VARBINARY(100) = FloatArray.Matrix_2(0.1, 0.2, 0.3, 0.4)");
  Run(&session, "SELECT FloatArray.Item_2(@m, 1, 0)");
  Run(&session, "SET @a = FloatArray.UpdateItem_1(@a, 3, 4.5)");
  Run(&session, "SELECT Array.ToString(@a)");

  std::printf("\n== subsetting a max (out-of-page) array ==\n");
  Run(&session, "DECLARE @cube VARBINARY(MAX) = "
                "FloatArrayMax.Create(12, 12, 12)");
  Run(&session, "SET @cube = FloatArrayMax.UpdateItem_3(@cube, 2, 5, 7, 42.0)");
  Run(&session,
      "DECLARE @b VARBINARY(MAX) = FloatArrayMax.Subarray(@cube, "
      "IntArray.Vector_3(1, 4, 6), IntArray.Vector_3(5, 5, 5), 0)");
  Run(&session, "SELECT FloatArrayMax.Item_3(@b, 1, 1, 1)");

  std::printf("\n== the Sec. 8 subscript sugar, implemented ==\n");
  Run(&session, "SELECT @a[3]");
  Run(&session, "SET @a[0] = -1");
  Run(&session, "SELECT Array.SumAll(@a[0:3])");

  std::printf("\n== arrays in tables, assembled with Concat ==\n");
  Run(&session, "CREATE TABLE samples (id BIGINT, ix BIGINT, v FLOAT)");
  Run(&session, "INSERT INTO samples VALUES (1, 0, 10.0), (2, 1, 20.0), "
                "(3, 2, 30.0), (4, 3, 40.0)");
  Run(&session, "DECLARE @dims VARBINARY(100) = IntArray.Vector_1(4)");
  Run(&session, "DECLARE @packed VARBINARY(MAX)");
  Run(&session, "SELECT @packed = FloatArrayMax.Concat(@dims, ix, v) "
                "FROM samples");
  Run(&session, "SELECT Array.ToString(@packed)");

  std::printf("\n== math bindings: FFT and SVD from SQL ==\n");
  Run(&session, "DECLARE @sig VARBINARY(MAX) = "
                "FloatArrayMax.From(FloatArray.Vector_8("
                "1, 0, -1, 0, 1, 0, -1, 0))");
  Run(&session, "DECLARE @ft VARBINARY(MAX)");
  Run(&session, "SET @ft = FloatArrayMax.FFTForward(@sig)");
  Run(&session, "SELECT DoubleComplexArrayMax.ItemRe_1(@ft, 2), "
                "DoubleComplexArrayMax.ItemRe_1(@ft, 0)");
  return 0;
}
