// Spectrum scenario (Sec. 2.2): load a synthetic spectrum archive into the
// database, compute composite spectra by redshift bin with ONE SQL statement
// (resampling UDF + vector-averaging aggregate), and run similar-spectrum
// search through a PCA basis with masked least-squares expansion.
//
// Run: ./build/examples/spectrum_pipeline
#include <cstdio>

#include "sci/spectrum/pipeline.h"
#include "udfs/register.h"

using namespace sqlarray;

int main() {
  // Synthetic archive: emission-line galaxies at redshifts 0..0.3, each on
  // its own wavelength grid, with flagged bad bins.
  spectrum::SyntheticSpectrumConfig config;
  config.bins = 192;
  Rng rng(8);
  std::vector<spectrum::Spectrum> archive;
  for (int i = 0; i < 120; ++i) {
    archive.push_back(spectrum::MakeSyntheticSpectrum(config, &rng));
  }
  std::printf("synthetic archive: %zu spectra, %d bins each, z <= %.1f\n",
              archive.size(), config.bins, config.max_redshift);

  // The server.
  storage::Database db;
  engine::FunctionRegistry registry;
  if (!udfs::RegisterAllUdfs(&registry).ok()) return 1;
  if (!spectrum::RegisterSpectrumUdfs(&registry).ok()) return 1;
  engine::Executor executor(&db, &registry);
  sql::Session session(&executor);

  auto table_or =
      spectrum::LoadSpectraTable(&db, "spectra", archive, 3,
                                 config.max_redshift);
  if (!table_or.ok()) {
    std::printf("load failed: %s\n", table_or.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded into table 'spectra' (wl/flux/err/flags as "
              "VARBINARY(MAX) array columns)\n");

  // Integrated fluxes straight from SQL.
  auto integrals = session.Execute(
      "SELECT TOP 5 id, z, Spectrum.Integrate(wl, flux, flags, 4500, 8000) "
      "FROM spectra");
  if (!integrals.ok()) {
    std::printf("query failed: %s\n", integrals.status().ToString().c_str());
    return 1;
  }
  std::printf("\nintegrated flux of the first spectra (in-query UDF):\n");
  for (const auto& row : (*integrals)[0].rows) {
    std::printf("  id %-3s z=%-6s  integral=%s\n",
                row[0].ToDisplayString().c_str(),
                row[1].ToDisplayString().c_str(),
                row[2].ToDisplayString().c_str());
  }

  // Composite spectra by redshift group: one SQL statement.
  auto composites =
      spectrum::CompositeByRedshift(&session, "spectra", 4200, 9000, 96);
  if (!composites.ok()) {
    std::printf("composite failed: %s\n",
                composites.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncomposites by redshift bin (GROUP BY + AvgVector UDA):\n");
  for (const auto& [zbin, flux] : *composites) {
    double peak = 0;
    size_t peak_at = 0;
    for (size_t i = 0; i < flux.size(); ++i) {
      if (flux[i] > peak) {
        peak = flux[i];
        peak_at = i;
      }
    }
    std::printf("  zbin %lld: %zu-bin composite, peak flux %.3f at bin %zu\n",
                static_cast<long long>(zbin), flux.size(), peak, peak_at);
  }

  // Similar-spectrum search: PCA basis + kd-tree over coefficients.
  std::vector<double> grid = spectrum::MakeLogGrid(4300, 8800, 96);
  auto index_or = spectrum::SimilarityIndex::Build(archive, grid, 8);
  if (!index_or.ok()) {
    std::printf("index failed: %s\n", index_or.status().ToString().c_str());
    return 1;
  }
  spectrum::SimilarityIndex& index = *index_or;

  spectrum::Spectrum query = archive[42];
  // Mask a stretch of bins, as a real query spectrum would be.
  for (size_t i = 30; i < 45; ++i) {
    query.flux[i] = 0;
    query.flags[i] = 1;
  }
  auto similar = index.QuerySimilar(query, 5);
  if (!similar.ok()) return 1;
  std::printf("\nsimilar to spectrum 42 (z=%.3f), with 15 masked bins:\n",
              archive[42].redshift);
  for (int64_t id : *similar) {
    std::printf("  spectrum %-3lld z=%.3f\n", static_cast<long long>(id),
                archive[id].redshift);
  }
  return 0;
}
