// Tests for interpolation kernels: Lagrange weights, periodic 1-D/3-D
// interpolation, PCHIP monotonicity.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "math/interp.h"

namespace sqlarray::math {
namespace {

TEST(LagrangeWeights, SumToOne) {
  double w[8];
  for (int n : {2, 4, 6, 8}) {
    for (double t : {0.0, 0.25, 0.5, 0.99}) {
      ASSERT_TRUE(LagrangeWeights(n, t, std::span<double>(w, 8)).ok());
      double sum = 0;
      for (int i = 0; i < n; ++i) sum += w[i];
      EXPECT_NEAR(sum, 1.0, 1e-12) << "n=" << n << " t=" << t;
    }
  }
}

TEST(LagrangeWeights, ExactAtNodes) {
  double w[8];
  // t = 0 sits on node -(n/2-1)+... the node with offset 0, index n/2-1.
  for (int n : {4, 6, 8}) {
    ASSERT_TRUE(LagrangeWeights(n, 0.0, std::span<double>(w, 8)).ok());
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(w[i], i == n / 2 - 1 ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(LagrangeWeights, RejectsOddWidths) {
  double w[8];
  EXPECT_FALSE(LagrangeWeights(3, 0.5, std::span<double>(w, 8)).ok());
  EXPECT_FALSE(LagrangeWeights(1, 0.5, std::span<double>(w, 8)).ok());
}

/// An N-point Lagrange scheme reproduces polynomials of degree N-1 exactly.
class PolynomialReproduction
    : public ::testing::TestWithParam<InterpScheme> {};

TEST_P(PolynomialReproduction, ExactOnPolynomials) {
  InterpScheme scheme = GetParam();
  int width = StencilWidth(scheme);
  int degree = width - 1;
  // Periodic signal y[i] = P(i) away from the wrap; evaluate mid-domain.
  const int n = 64;
  std::vector<double> y(n);
  auto poly = [&](double x) {
    double v = 0;
    for (int d = 0; d <= degree; ++d) {
      v += (d + 1) * std::pow(x - 30.0, d) / std::pow(8.0, d);
    }
    return v;
  };
  for (int i = 0; i < n; ++i) y[i] = poly(i);
  for (double x : {28.3, 30.0, 31.75, 33.5}) {
    double got = Interp1DPeriodic(scheme, y, x).value();
    EXPECT_NEAR(got, poly(x), 1e-9)
        << "scheme width " << width << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(LagrangeSchemes, PolynomialReproduction,
                         ::testing::Values(InterpScheme::kLinear,
                                           InterpScheme::kLagrange4,
                                           InterpScheme::kLagrange6,
                                           InterpScheme::kLagrange8));

TEST(Interp1D, NearestPicksClosestSample) {
  std::vector<double> y{10, 20, 30, 40};
  EXPECT_EQ(Interp1DPeriodic(InterpScheme::kNearest, y, 1.4).value(), 20);
  EXPECT_EQ(Interp1DPeriodic(InterpScheme::kNearest, y, 1.6).value(), 30);
  // Periodic wrap: 3.6 rounds to 4 == index 0.
  EXPECT_EQ(Interp1DPeriodic(InterpScheme::kNearest, y, 3.6).value(), 10);
}

TEST(Interp1D, PeriodicWrapMatchesShiftedEvaluation) {
  Rng rng(3);
  std::vector<double> y(32);
  for (double& v : y) v = rng.Normal();
  for (InterpScheme s : {InterpScheme::kLinear, InterpScheme::kLagrange4,
                         InterpScheme::kLagrange8}) {
    double a = Interp1DPeriodic(s, y, 1.3).value();
    double b = Interp1DPeriodic(s, y, 1.3 + 32.0).value();
    double c = Interp1DPeriodic(s, y, 1.3 - 32.0).value();
    EXPECT_NEAR(a, b, 1e-9);
    EXPECT_NEAR(a, c, 1e-9);
  }
}

TEST(Interp1D, HigherOrderIsMoreAccurateOnSmoothSignal) {
  const int n = 64;
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    y[i] = std::sin(2 * std::numbers::pi * i / n * 3.0);
  }
  auto exact = [&](double x) {
    return std::sin(2 * std::numbers::pi * x / n * 3.0);
  };
  double err4 = 0, err8 = 0;
  for (int k = 0; k < 50; ++k) {
    double x = 0.37 + k * 1.17;
    err4 = std::max(err4, std::fabs(Interp1DPeriodic(InterpScheme::kLagrange4,
                                                     y, x)
                                        .value() -
                                    exact(x)));
    err8 = std::max(err8, std::fabs(Interp1DPeriodic(InterpScheme::kLagrange8,
                                                     y, x)
                                        .value() -
                                    exact(x)));
  }
  EXPECT_LT(err8, err4);
  EXPECT_LT(err8, 1e-6);
}

TEST(Interp3D, SeparableMatchesTensorProduct) {
  // A product field f(x,y,z) = gx(x) gy(y) gz(z) of degree-3 polynomials is
  // reproduced exactly by the 4-point scheme.
  const int64_t n = 16;
  auto g = [](double x) { return 1.0 + 0.1 * x + 0.01 * x * x; };
  auto fetch = [&](int64_t i, int64_t j, int64_t k) {
    return g(i) * g(j + 1) * g(k + 2);
  };
  double got = Interp3DPeriodic(InterpScheme::kLagrange4, n, fetch, 5.3, 6.7,
                                7.1)
                   .value();
  EXPECT_NEAR(got, g(5.3) * g(7.7) * g(9.1), 1e-9);
}

TEST(Interp3D, NearestAndValidation) {
  auto fetch = [](int64_t i, int64_t j, int64_t k) {
    return static_cast<double>(i * 100 + j * 10 + k);
  };
  EXPECT_EQ(
      Interp3DPeriodic(InterpScheme::kNearest, 8, fetch, 1.2, 2.6, 3.4)
          .value(),
      133.0);  // llround: (1, 3, 3)
  EXPECT_FALSE(
      Interp3DPeriodic(InterpScheme::kPchip, 8, fetch, 1, 2, 3).ok());
}

TEST(Pchip, InterpolatesKnotsExactly) {
  std::vector<double> x{0, 1, 2.5, 4, 7};
  std::vector<double> y{1, 3, 2, 5, 4};
  PchipInterpolator p =
      PchipInterpolator::Create(x, y).value();
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(p.Eval(x[i]), y[i], 1e-12);
  }
}

TEST(Pchip, PreservesMonotonicity) {
  // Monotone data must produce a monotone interpolant (no overshoot).
  std::vector<double> x{0, 1, 2, 3, 4, 5};
  std::vector<double> y{0, 0.1, 0.2, 5.0, 9.8, 10.0};
  PchipInterpolator p = PchipInterpolator::Create(x, y).value();
  double prev = p.Eval(0.0);
  for (double t = 0.01; t <= 5.0; t += 0.01) {
    double v = p.Eval(t);
    EXPECT_GE(v, prev - 1e-12) << "at t=" << t;
    prev = v;
  }
  EXPECT_LE(p.Eval(3.5), 10.0);
  EXPECT_GE(p.Eval(0.5), 0.0);
}

TEST(Pchip, FlatSegmentsStayFlat) {
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{2, 2, 5, 5};
  PchipInterpolator p = PchipInterpolator::Create(x, y).value();
  EXPECT_NEAR(p.Eval(0.5), 2.0, 1e-12);
  EXPECT_NEAR(p.Eval(2.5), 5.0, 1e-9);
}

TEST(Pchip, ClampsOutsideRange) {
  std::vector<double> x{0, 1};
  std::vector<double> y{3, 7};
  PchipInterpolator p = PchipInterpolator::Create(x, y).value();
  EXPECT_EQ(p.Eval(-5), 3);
  EXPECT_EQ(p.Eval(99), 7);
}

TEST(Pchip, Validation) {
  EXPECT_FALSE(PchipInterpolator::Create({1}, {2}).ok());
  EXPECT_FALSE(PchipInterpolator::Create({1, 1}, {2, 3}).ok());
  EXPECT_FALSE(PchipInterpolator::Create({2, 1}, {2, 3}).ok());
}

TEST(StencilWidths, MatchSchemes) {
  EXPECT_EQ(StencilWidth(InterpScheme::kNearest), 1);
  EXPECT_EQ(StencilWidth(InterpScheme::kLinear), 2);
  EXPECT_EQ(StencilWidth(InterpScheme::kLagrange4), 4);
  EXPECT_EQ(StencilWidth(InterpScheme::kLagrange6), 6);
  EXPECT_EQ(StencilWidth(InterpScheme::kLagrange8), 8);
}

}  // namespace
}  // namespace sqlarray::math
