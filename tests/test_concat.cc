// Tests for the table <-> array bridge: ConcatBuilder and ToTable.
#include <gtest/gtest.h>

#include "core/concat.h"
#include "core/ops.h"

namespace sqlarray {
namespace {

TEST(ConcatBuilder, AssemblesByMultiIndex) {
  ConcatBuilder b = ConcatBuilder::Create(DType::kFloat64, {2, 2}).value();
  ASSERT_TRUE(b.Add(Dims{0, 0}, 1.0).ok());
  ASSERT_TRUE(b.Add(Dims{1, 0}, 2.0).ok());
  ASSERT_TRUE(b.Add(Dims{0, 1}, 3.0).ok());
  ASSERT_TRUE(b.Add(Dims{1, 1}, 4.0).ok());
  EXPECT_EQ(b.rows_consumed(), 4);
  OwnedArray a = std::move(b).Finish().value();
  EXPECT_EQ(a.ref().GetDoubleAt(Dims{1, 0}).value(), 2.0);
  EXPECT_EQ(a.ref().GetDoubleAt(Dims{0, 1}).value(), 3.0);
}

TEST(ConcatBuilder, MissingCellsStayZero) {
  ConcatBuilder b = ConcatBuilder::Create(DType::kInt32, {3}).value();
  ASSERT_TRUE(b.AddLinear(1, 7).ok());
  OwnedArray a = std::move(b).Finish().value();
  EXPECT_EQ(a.ref().GetDouble(0).value(), 0.0);
  EXPECT_EQ(a.ref().GetDouble(1).value(), 7.0);
}

TEST(ConcatBuilder, DuplicateIndexOverwrites) {
  ConcatBuilder b = ConcatBuilder::Create(DType::kFloat64, {2}).value();
  ASSERT_TRUE(b.AddLinear(0, 1.0).ok());
  ASSERT_TRUE(b.AddLinear(0, 9.0).ok());
  OwnedArray a = std::move(b).Finish().value();
  EXPECT_EQ(a.ref().GetDouble(0).value(), 9.0);
}

TEST(ConcatBuilder, RejectsBadIndex) {
  ConcatBuilder b = ConcatBuilder::Create(DType::kFloat64, {2}).value();
  EXPECT_FALSE(b.Add(Dims{2}, 1.0).ok());
  EXPECT_FALSE(b.AddLinear(-1, 1.0).ok());
}

TEST(ConcatBuilder, StateSerializationRoundTrip) {
  // The SQL Server UDA hosting contract: serialize after each row,
  // deserialize before the next (Sec. 4.2).
  ConcatBuilder b = ConcatBuilder::Create(DType::kFloat64, {4}).value();
  std::vector<uint8_t> state = b.SerializeState();
  for (int64_t i = 0; i < 4; ++i) {
    ConcatBuilder step = ConcatBuilder::DeserializeState(state).value();
    ASSERT_TRUE(step.AddLinear(i, static_cast<double>(i) * 1.5).ok());
    state = step.SerializeState();
  }
  ConcatBuilder last = ConcatBuilder::DeserializeState(state).value();
  EXPECT_EQ(last.rows_consumed(), 4);
  OwnedArray a = std::move(last).Finish().value();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.ref().GetDouble(i).value(), static_cast<double>(i) * 1.5);
  }
}

TEST(ConcatBuilder, StateGrowsWithArrayNotRows) {
  ConcatBuilder b = ConcatBuilder::Create(DType::kFloat64, {100}).value();
  size_t size0 = b.SerializeState().size();
  ASSERT_TRUE(b.AddLinear(0, 1.0).ok());
  ASSERT_TRUE(b.AddLinear(1, 1.0).ok());
  EXPECT_EQ(b.SerializeState().size(), size0);
}

TEST(ConcatBuilder, DeserializeRejectsCorruptState) {
  std::vector<uint8_t> junk(4, 0xFF);
  EXPECT_FALSE(ConcatBuilder::DeserializeState(junk).ok());
}

TEST(ToTable, ExplodesColumnMajor) {
  OwnedArray a = OwnedArray::Zeros(DType::kFloat64, {2, 2}).value();
  ASSERT_TRUE(a.SetDoubleAt(Dims{0, 0}, 1.0).ok());
  ASSERT_TRUE(a.SetDoubleAt(Dims{1, 0}, 2.0).ok());
  ASSERT_TRUE(a.SetDoubleAt(Dims{0, 1}, 3.0).ok());
  ASSERT_TRUE(a.SetDoubleAt(Dims{1, 1}, 4.0).ok());
  auto rows = ToTable(a.ref()).value();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].index, (Dims{0, 0}));
  EXPECT_EQ(rows[0].value, 1.0);
  EXPECT_EQ(rows[1].index, (Dims{1, 0}));  // first index varies fastest
  EXPECT_EQ(rows[1].value, 2.0);
  EXPECT_EQ(rows[2].index, (Dims{0, 1}));
  EXPECT_EQ(rows[3].value, 4.0);
}

TEST(ToTable, RejectsComplex) {
  OwnedArray c = OwnedArray::Zeros(DType::kComplex128, {2}).value();
  EXPECT_FALSE(ToTable(c.ref()).ok());
}

TEST(ConcatToTable, RoundTrip) {
  OwnedArray a = OwnedArray::Zeros(DType::kFloat64, {3, 2}).value();
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(a.SetDouble(i, static_cast<double>(i * i)).ok());
  }
  auto rows = ToTable(a.ref()).value();
  ConcatBuilder b = ConcatBuilder::Create(DType::kFloat64, {3, 2}).value();
  for (const ArrayTableRow& row : rows) {
    ASSERT_TRUE(b.Add(row.index, row.value).ok());
  }
  OwnedArray back = std::move(b).Finish().value();
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(back.ref().GetDouble(i).value(), a.ref().GetDouble(i).value());
  }
}

}  // namespace
}  // namespace sqlarray
