// Tests for the query engine: values, expressions, executor, aggregates,
// UDF boundary cost accounting.
#include <gtest/gtest.h>

#include "core/array.h"
#include "engine/exec.h"
#include "udfs/register.h"

namespace sqlarray::engine {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : executor_(&db_, &registry_) {
    EXPECT_TRUE(udfs::RegisterAllUdfs(&registry_).ok());
  }

  storage::Table* MakeScalarTable(const std::string& name, int64_t rows) {
    storage::Schema schema =
        storage::Schema::Create({{"id", storage::ColumnType::kInt64, 0},
                                 {"v1", storage::ColumnType::kFloat64, 0},
                                 {"v2", storage::ColumnType::kFloat64, 0}})
            .value();
    storage::Table* t = db_.CreateTable(name, std::move(schema)).value();
    for (int64_t i = 0; i < rows; ++i) {
      EXPECT_TRUE(
          t->Insert({i, static_cast<double>(i), static_cast<double>(2 * i)})
              .ok());
    }
    return t;
  }

  storage::Database db_;
  FunctionRegistry registry_;
  Executor executor_;
};

TEST_F(EngineTest, ValueAccessorsAndCoercion) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsDouble().value(), 5.0);
  EXPECT_EQ(Value::Double(2.7).AsInt().value(), 2);
  EXPECT_FALSE(Value::Str("x").AsDouble().ok());
  Value bytes = Value::Bytes({1, 2, 3});
  EXPECT_EQ(bytes.ByteSize(), 3);
  EXPECT_EQ((*bytes.AsBytes().value())[1], 2);
  EXPECT_EQ(bytes.MaterializeBytes().value().size(), 3u);
}

TEST_F(EngineTest, StandaloneExpressionArithmetic) {
  // (3 + 4) * 2 - 5 = 9
  ExprPtr e = Bin(BinaryOp::kSub,
                  Bin(BinaryOp::kMul,
                      Bin(BinaryOp::kAdd, Lit(Value::Int(3)),
                          Lit(Value::Int(4))),
                      Lit(Value::Int(2))),
                  Lit(Value::Int(5)));
  EXPECT_EQ(executor_.EvalStandalone(*e, nullptr).value().AsInt().value(), 9);
}

TEST_F(EngineTest, IntVsFloatSemantics) {
  ExprPtr int_div = Bin(BinaryOp::kDiv, Lit(Value::Int(7)),
                        Lit(Value::Int(2)));
  EXPECT_EQ(executor_.EvalStandalone(*int_div, nullptr).value().AsInt().value(),
            3);
  ExprPtr float_div = Bin(BinaryOp::kDiv, Lit(Value::Double(7)),
                          Lit(Value::Int(2)));
  EXPECT_EQ(executor_.EvalStandalone(*float_div, nullptr)
                .value().AsDouble().value(),
            3.5);
  ExprPtr div0 = Bin(BinaryOp::kDiv, Lit(Value::Int(1)), Lit(Value::Int(0)));
  EXPECT_FALSE(executor_.EvalStandalone(*div0, nullptr).ok());
}

TEST_F(EngineTest, NullPropagation) {
  ExprPtr e = Bin(BinaryOp::kAdd, Lit(Value::Null()), Lit(Value::Int(1)));
  EXPECT_TRUE(executor_.EvalStandalone(*e, nullptr).value().is_null());
}

TEST_F(EngineTest, VariablesResolve) {
  std::map<std::string, Value> vars{{"x", Value::Int(10)}};
  ExprPtr e = Bin(BinaryOp::kMul, Var("x"), Lit(Value::Int(3)));
  EXPECT_EQ(executor_.EvalStandalone(*e, &vars).value().AsInt().value(), 30);
  ExprPtr missing = Var("nope");
  EXPECT_FALSE(executor_.EvalStandalone(*missing, &vars).ok());
}

TEST_F(EngineTest, CountStarAndSum) {
  storage::Table* t = MakeScalarTable("t1", 100);
  Query q;
  q.table = t;
  {
    SelectItem count;
    count.agg = SelectItem::AggKind::kCount;
    count.expr = Star();
    count.label = "n";
    q.items.push_back(std::move(count));
  }
  {
    SelectItem sum;
    sum.agg = SelectItem::AggKind::kSum;
    sum.expr = Col("v1");
    sum.label = "s";
    q.items.push_back(std::move(sum));
  }
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ResultSet rs = executor_.Execute(q, nullptr).value();
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt().value(), 100);
  EXPECT_EQ(rs.rows[0][1].AsDouble().value(), 4950.0);
  EXPECT_EQ(rs.stats.rows_scanned, 100);
}

TEST_F(EngineTest, MinMaxAvgAndEmptyTable) {
  storage::Table* t = MakeScalarTable("t2", 10);
  Query q;
  q.table = t;
  for (auto kind : {SelectItem::AggKind::kMin, SelectItem::AggKind::kMax,
                    SelectItem::AggKind::kAvg}) {
    SelectItem item;
    item.agg = kind;
    item.expr = Col("v1");
    item.label = "x";
    q.items.push_back(std::move(item));
  }
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ResultSet rs = executor_.Execute(q, nullptr).value();
  EXPECT_EQ(rs.rows[0][0].AsDouble().value(), 0.0);
  EXPECT_EQ(rs.rows[0][1].AsDouble().value(), 9.0);
  EXPECT_EQ(rs.rows[0][2].AsDouble().value(), 4.5);

  storage::Table* empty = MakeScalarTable("t2e", 0);
  Query qe;
  qe.table = empty;
  SelectItem mn;
  mn.agg = SelectItem::AggKind::kMin;
  mn.expr = Col("v1");
  mn.label = "m";
  qe.items.push_back(std::move(mn));
  ASSERT_TRUE(executor_.Bind(&qe).ok());
  ResultSet rse = executor_.Execute(qe, nullptr).value();
  ASSERT_EQ(rse.rows.size(), 1u);
  EXPECT_TRUE(rse.rows[0][0].is_null());
}

TEST_F(EngineTest, WhereFilterAndTop) {
  storage::Table* t = MakeScalarTable("t3", 50);
  Query q;
  q.table = t;
  SelectItem item;
  item.expr = Col("id");
  item.label = "id";
  q.items.push_back(std::move(item));
  q.where = Bin(BinaryOp::kGe, Col("id"), Lit(Value::Int(40)));
  q.top = 5;
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ResultSet rs = executor_.Execute(q, nullptr).value();
  ASSERT_EQ(rs.rows.size(), 5u);
  EXPECT_EQ(rs.rows[0][0].AsInt().value(), 40);
  EXPECT_EQ(rs.rows[4][0].AsInt().value(), 44);
}

TEST_F(EngineTest, GroupByAggregates) {
  storage::Table* t = MakeScalarTable("t4", 30);
  Query q;
  q.table = t;
  {
    SelectItem key;
    key.expr = Bin(BinaryOp::kMod, Col("id"), Lit(Value::Int(3)));
    key.label = "k";
    q.items.push_back(std::move(key));
  }
  {
    SelectItem cnt;
    cnt.agg = SelectItem::AggKind::kCount;
    cnt.expr = Star();
    cnt.label = "n";
    q.items.push_back(std::move(cnt));
  }
  q.group_by.push_back(Bin(BinaryOp::kMod, Col("id"), Lit(Value::Int(3))));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ResultSet rs = executor_.Execute(q, nullptr).value();
  ASSERT_EQ(rs.rows.size(), 3u);
  for (const auto& row : rs.rows) {
    EXPECT_EQ(row[1].AsInt().value(), 10);
  }
}

TEST_F(EngineTest, ClrBoundaryCostIsCharged) {
  storage::Table* t = MakeScalarTable("t5", 1000);
  const CostModel& cost = executor_.cost_model();

  // Native query: no UDF calls.
  Query q1;
  q1.table = t;
  SelectItem s1;
  s1.agg = SelectItem::AggKind::kSum;
  s1.expr = Col("v1");
  s1.label = "s";
  q1.items.push_back(std::move(s1));
  ASSERT_TRUE(executor_.Bind(&q1).ok());
  ResultSet r1 = executor_.Execute(q1, nullptr).value();
  EXPECT_EQ(r1.stats.udf_calls, 0);
  double native_cpu = r1.stats.cpu_core_seconds;

  // The same sum through dbo.EmptyFunction: one CLR call per row.
  Query q2;
  q2.table = t;
  SelectItem s2;
  s2.agg = SelectItem::AggKind::kSum;
  std::vector<ExprPtr> args;
  args.push_back(Col("v1"));
  args.push_back(Lit(Value::Int(0)));
  s2.expr = Call("dbo", "EmptyFunction", std::move(args));
  s2.label = "s";
  q2.items.push_back(std::move(s2));
  ASSERT_TRUE(executor_.Bind(&q2).ok());
  ResultSet r2 = executor_.Execute(q2, nullptr).value();
  EXPECT_EQ(r2.stats.udf_calls, 1000);
  // At least rows * clr_call_ns of extra modeled CPU.
  EXPECT_GT(r2.stats.cpu_core_seconds,
            native_cpu + 1000 * cost.clr_call_ns * 1e-9 * 0.99);
}

TEST_F(EngineTest, ModeledMetricsFollowTheCostModel) {
  QueryStats stats;
  stats.cpu_core_seconds = 16.0;  // 2 s on 8 cores
  stats.io.virtual_read_seconds = 1.0;
  stats.io.bytes_read = 1000000000;
  CostModel cost;
  EXPECT_DOUBLE_EQ(stats.ModeledSeconds(cost), 2.0);  // CPU-bound
  EXPECT_DOUBLE_EQ(stats.ModeledCpuPct(cost), 100.0);
  EXPECT_DOUBLE_EQ(stats.ModeledIoMBps(cost), 500.0);

  stats.cpu_core_seconds = 0.8;
  EXPECT_DOUBLE_EQ(stats.ModeledSeconds(cost), 1.0);  // IO-bound
  EXPECT_DOUBLE_EQ(stats.ModeledCpuPct(cost), 10.0);
}

TEST_F(EngineTest, ParallelAggregateMatchesSerial) {
  storage::Table* t = MakeScalarTable("tp", 20000);
  auto make_query = [&]() {
    Query q;
    q.table = t;
    for (auto kind :
         {SelectItem::AggKind::kCount, SelectItem::AggKind::kSum,
          SelectItem::AggKind::kMin, SelectItem::AggKind::kMax,
          SelectItem::AggKind::kAvg}) {
      SelectItem item;
      item.agg = kind;
      item.expr = kind == SelectItem::AggKind::kCount ? Star() : Col("v1");
      item.label = "x";
      q.items.push_back(std::move(item));
    }
    q.where = Bin(BinaryOp::kGe, Col("id"), Lit(Value::Int(137)));
    return q;
  };

  Query serial_q = make_query();
  ASSERT_TRUE(executor_.Bind(&serial_q).ok());
  ResultSet serial = executor_.Execute(serial_q, nullptr).value();

  executor_.set_scan_workers(8);
  Query parallel_q = make_query();
  ASSERT_TRUE(executor_.Bind(&parallel_q).ok());
  ResultSet parallel = executor_.Execute(parallel_q, nullptr).value();
  executor_.set_scan_workers(1);

  ASSERT_EQ(serial.rows.size(), 1u);
  ASSERT_EQ(parallel.rows.size(), 1u);
  for (size_t c = 0; c < serial.rows[0].size(); ++c) {
    EXPECT_EQ(serial.rows[0][c].AsDouble().value(),
              parallel.rows[0][c].AsDouble().value())
        << "column " << c;
  }
  EXPECT_EQ(parallel.stats.rows_scanned, serial.stats.rows_scanned);
  EXPECT_NEAR(parallel.stats.cpu_core_seconds, serial.stats.cpu_core_seconds,
              serial.stats.cpu_core_seconds * 0.01);
}

TEST_F(EngineTest, ParallelAggregateWithUdfExpression) {
  // The Tvector-style workload: a UDF inside the aggregate argument runs on
  // every worker thread.
  storage::Schema schema =
      storage::Schema::Create({{"id", storage::ColumnType::kInt64, 0},
                               {"v", storage::ColumnType::kBinary, 64}})
          .value();
  storage::Table* t = db_.CreateTable("tpv", std::move(schema)).value();
  OwnedArray vec =
      OwnedArray::Zeros(DType::kFloat64, Dims{5}).value();
  double expect = 0;
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(vec.SetDouble(0, static_cast<double>(i)).ok());
    expect += static_cast<double>(i);
    ASSERT_TRUE(
        t->Insert({i, std::vector<uint8_t>(vec.blob().begin(),
                                           vec.blob().end())})
            .ok());
  }

  auto make_query = [&]() {
    Query q;
    q.table = t;
    SelectItem item;
    item.agg = SelectItem::AggKind::kSum;
    std::vector<ExprPtr> args;
    args.push_back(Col("v"));
    args.push_back(Lit(Value::Int(0)));
    item.expr = Call("FloatArray", "Item_1", std::move(args));
    item.label = "s";
    q.items.push_back(std::move(item));
    return q;
  };

  executor_.set_scan_workers(4);
  Query q = make_query();
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ResultSet rs = executor_.Execute(q, nullptr).value();
  executor_.set_scan_workers(1);
  EXPECT_EQ(rs.ScalarResult().value().AsDouble().value(), expect);
  EXPECT_EQ(rs.stats.udf_calls, 5000);
}

TEST_F(EngineTest, ParallelFallsBackForGroupByAndUda) {
  storage::Table* t = MakeScalarTable("tpf", 100);
  executor_.set_scan_workers(8);
  // GROUP BY still works (serial path).
  Query q;
  q.table = t;
  SelectItem key;
  key.expr = Bin(BinaryOp::kMod, Col("id"), Lit(Value::Int(2)));
  key.label = "k";
  q.items.push_back(std::move(key));
  SelectItem cnt;
  cnt.agg = SelectItem::AggKind::kCount;
  cnt.expr = Star();
  cnt.label = "n";
  q.items.push_back(std::move(cnt));
  q.group_by.push_back(Bin(BinaryOp::kMod, Col("id"), Lit(Value::Int(2))));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ResultSet rs = executor_.Execute(q, nullptr).value();
  executor_.set_scan_workers(1);
  EXPECT_EQ(rs.rows.size(), 2u);
}

// ---------------------------------------------------------------------------
// Batched execution differential tests: batch sizes <= 1 force the
// row-at-a-time loop; results (and exact cpu_core_seconds accounting) must
// be identical at any batch size. engine/batch.h documents the contract.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, BatchedAggregateMatchesRowAtATime) {
  storage::Table* t = MakeScalarTable("tb1", 5000);
  auto make_query = [&]() {
    Query q;
    q.table = t;
    for (auto kind :
         {SelectItem::AggKind::kCount, SelectItem::AggKind::kSum,
          SelectItem::AggKind::kMin, SelectItem::AggKind::kMax,
          SelectItem::AggKind::kAvg}) {
      SelectItem item;
      item.agg = kind;
      item.expr = kind == SelectItem::AggKind::kCount ? Star() : Col("v1");
      item.label = "x";
      q.items.push_back(std::move(item));
    }
    q.where = Bin(BinaryOp::kGe, Col("id"), Lit(Value::Int(321)));
    return q;
  };

  auto run = [&](int batch_rows) {
    executor_.set_batch_rows(batch_rows);
    Query q = make_query();
    EXPECT_TRUE(executor_.Bind(&q).ok());
    ResultSet rs = executor_.Execute(q, nullptr).value();
    executor_.set_batch_rows(1024);
    return rs;
  };

  ResultSet row = run(1);  // row-at-a-time reference
  for (int batch_rows : {7, 1024}) {
    ResultSet batched = run(batch_rows);
    ASSERT_EQ(batched.rows.size(), row.rows.size());
    for (size_t c = 0; c < row.rows[0].size(); ++c) {
      EXPECT_EQ(row.rows[0][c].AsDouble().value(),
                batched.rows[0][c].AsDouble().value())
          << "batch_rows=" << batch_rows << " column " << c;
    }
    EXPECT_EQ(batched.stats.rows_scanned, row.stats.rows_scanned);
    // The cost charges run per row in both modes; the accounting must agree
    // bit-for-bit, not just approximately.
    EXPECT_EQ(batched.stats.cpu_core_seconds, row.stats.cpu_core_seconds)
        << "batch_rows=" << batch_rows;
  }
}

TEST_F(EngineTest, BatchedAggregateWithUdfMatchesRowAtATime) {
  // Q4-shaped: SUM over a UDF of a binary array column — the workload the
  // byte-buffer pool exists for.
  storage::Schema schema =
      storage::Schema::Create({{"id", storage::ColumnType::kInt64, 0},
                               {"v", storage::ColumnType::kBinary, 64}})
          .value();
  storage::Table* t = db_.CreateTable("tbv", std::move(schema)).value();
  OwnedArray vec = OwnedArray::Zeros(DType::kFloat64, Dims{5}).value();
  for (int64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(vec.SetDouble(0, static_cast<double>(i) * 0.25).ok());
    ASSERT_TRUE(
        t->Insert({i, std::vector<uint8_t>(vec.blob().begin(),
                                           vec.blob().end())})
            .ok());
  }

  auto make_query = [&]() {
    Query q;
    q.table = t;
    SelectItem item;
    item.agg = SelectItem::AggKind::kSum;
    std::vector<ExprPtr> args;
    args.push_back(Col("v"));
    args.push_back(Lit(Value::Int(0)));
    item.expr = Call("FloatArray", "Item_1", std::move(args));
    item.label = "s";
    q.items.push_back(std::move(item));
    return q;
  };

  auto run = [&](int batch_rows, int workers) {
    executor_.set_batch_rows(batch_rows);
    executor_.set_scan_workers(workers);
    Query q = make_query();
    EXPECT_TRUE(executor_.Bind(&q).ok());
    ResultSet rs = executor_.Execute(q, nullptr).value();
    executor_.set_batch_rows(1024);
    executor_.set_scan_workers(1);
    return rs;
  };

  ResultSet row = run(1, 1);
  for (int batch_rows : {7, 1024}) {
    ResultSet batched = run(batch_rows, 1);
    EXPECT_EQ(row.ScalarResult().value().AsDouble().value(),
              batched.ScalarResult().value().AsDouble().value());
    EXPECT_EQ(batched.stats.udf_calls, row.stats.udf_calls);
    // UDF boundary charges interleave differently with the scan/step charges
    // in batch mode (per-column instead of per-row), so the double-summed
    // cost total may reassociate — but only by ulps, never by a real amount.
    EXPECT_NEAR(batched.stats.cpu_core_seconds, row.stats.cpu_core_seconds,
                1e-12 * row.stats.cpu_core_seconds);
  }
  // Batched parallel workers agree too (merge order is worker-ordered in
  // both modes).
  ResultSet parallel = run(1024, 4);
  EXPECT_EQ(row.ScalarResult().value().AsDouble().value(),
            parallel.ScalarResult().value().AsDouble().value());
  EXPECT_EQ(parallel.stats.udf_calls, row.stats.udf_calls);
}

TEST_F(EngineTest, BatchedRowModeMatchesRowAtATime) {
  storage::Table* t = MakeScalarTable("tb2", 2500);
  auto make_query = [&]() {
    Query q;
    q.table = t;
    SelectItem id;
    id.expr = Col("id");
    id.label = "id";
    q.items.push_back(std::move(id));
    SelectItem expr;
    expr.expr = Bin(BinaryOp::kAdd,
                    Bin(BinaryOp::kMul, Col("v1"), Lit(Value::Double(2.5))),
                    Col("v2"));
    expr.label = "e";
    q.items.push_back(std::move(expr));
    q.where = Bin(BinaryOp::kGe, Col("id"), Lit(Value::Int(100)));
    return q;
  };

  auto run = [&](int batch_rows) {
    executor_.set_batch_rows(batch_rows);
    Query q = make_query();
    EXPECT_TRUE(executor_.Bind(&q).ok());
    ResultSet rs = executor_.Execute(q, nullptr).value();
    executor_.set_batch_rows(1024);
    return rs;
  };

  ResultSet row = run(1);
  ASSERT_EQ(row.rows.size(), 2400u);
  for (int batch_rows : {7, 1024}) {
    ResultSet batched = run(batch_rows);
    ASSERT_EQ(batched.rows.size(), row.rows.size());
    for (size_t r = 0; r < row.rows.size(); ++r) {
      EXPECT_EQ(row.rows[r][0].AsInt().value(),
                batched.rows[r][0].AsInt().value());
      EXPECT_EQ(row.rows[r][1].AsDouble().value(),
                batched.rows[r][1].AsDouble().value());
    }
    EXPECT_EQ(batched.stats.rows_scanned, row.stats.rows_scanned);
    EXPECT_EQ(batched.stats.cpu_core_seconds, row.stats.cpu_core_seconds);
  }
}

TEST_F(EngineTest, BatchedFallbacksPreserveSemantics) {
  // TOP and GROUP BY are outside the batch gate; they must keep working
  // with batching enabled (the default) and match batch_rows=1 results.
  storage::Table* t = MakeScalarTable("tb3", 200);
  auto run_top = [&](int batch_rows) {
    executor_.set_batch_rows(batch_rows);
    Query q;
    q.table = t;
    SelectItem item;
    item.expr = Col("id");
    item.label = "id";
    q.items.push_back(std::move(item));
    q.where = Bin(BinaryOp::kGe, Col("id"), Lit(Value::Int(50)));
    q.top = 3;
    EXPECT_TRUE(executor_.Bind(&q).ok());
    ResultSet rs = executor_.Execute(q, nullptr).value();
    executor_.set_batch_rows(1024);
    return rs;
  };
  ResultSet a = run_top(1024);
  ResultSet b = run_top(1);
  ASSERT_EQ(a.rows.size(), 3u);
  ASSERT_EQ(b.rows.size(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(a.rows[r][0].AsInt().value(), b.rows[r][0].AsInt().value());
  }
  // TOP keeps the early-exit scan: identical rows_scanned either way.
  EXPECT_EQ(a.stats.rows_scanned, b.stats.rows_scanned);
}

TEST_F(EngineTest, FromLessSelect) {
  Query q;
  SelectItem item;
  item.expr = Bin(BinaryOp::kAdd, Lit(Value::Int(1)), Lit(Value::Int(2)));
  item.label = "three";
  q.items.push_back(std::move(item));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ResultSet rs = executor_.Execute(q, nullptr).value();
  EXPECT_EQ(rs.ScalarResult().value().AsInt().value(), 3);
}

TEST_F(EngineTest, RegistryResolution) {
  EXPECT_TRUE(registry_.Resolve("FloatArray", "Item_1", 2).ok());
  EXPECT_TRUE(registry_.Resolve("floatarray", "ITEM_1", 2).ok());  // case
  EXPECT_FALSE(registry_.Resolve("FloatArray", "Item_1", 5).ok());
  EXPECT_FALSE(registry_.Resolve("NoSchema", "F", 1).ok());
  EXPECT_TRUE(registry_.Resolve("Array", "Item", 3).ok());  // variadic
  EXPECT_TRUE(registry_.HasScalar("FloatArray", "Vector_5"));
  EXPECT_FALSE(registry_.HasScalar("FloatArray", "Bogus"));
  EXPECT_TRUE(registry_.ResolveUda("FloatArrayMax", "Concat").ok());
  EXPECT_FALSE(registry_.ResolveUda("FloatArrayMax", "Nope").ok());
}

TEST_F(EngineTest, CloneExprDeepCopies) {
  ExprPtr e = Bin(BinaryOp::kAdd, Col("a"), Lit(Value::Int(1)));
  ExprPtr c = CloneExpr(*e);
  e->args[0]->column_name = "changed";
  EXPECT_EQ(c->args[0]->column_name, "a");
  EXPECT_TRUE(NeedsRow(*c));
  EXPECT_FALSE(NeedsRow(*c->args[1]));
}

}  // namespace
}  // namespace sqlarray::engine
