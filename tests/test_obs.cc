// Tests for the observability layer (ISSUE 4): the metrics registry under
// concurrent increments, deterministic trace stitching, the RAII
// SubqueryScope, profile-tree determinism across worker counts, the
// EXPLAIN ANALYZE golden shape, and counter conservation (profile == stats
// delta == registry delta). Built both plain and under
// -DSQLARRAY_SANITIZE=thread (the tsan_obs_suite ctest entry).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "engine/exec.h"
#include "engine/query_context.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sql/session.h"
#include "storage/table.h"
#include "udfs/register.h"

namespace sqlarray {
namespace {

using engine::Value;

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, GetIsGetOrCreateWithStablePointers) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("x.count");
  obs::Counter* b = reg.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(reg.Snapshot().ValueOr("x.count"), 3);
  EXPECT_EQ(reg.Snapshot().ValueOr("no.such.metric", -7), -7);

  obs::Gauge* g = reg.GetGauge("x.level");
  g->Set(10);
  g->Add(-4);
  EXPECT_EQ(reg.Snapshot().ValueOr("x.level"), 6);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExactAfterJoin) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("concurrent.counter");
  obs::Histogram* h = reg.GetHistogram("concurrent.histo");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add(1);
        h->Observe(t + 1);
        // Snapshots taken while writers run must stay well-formed (monotone
        // lower bounds), which TSan verifies is race-free.
        if (i % 4096 == 0) {
          obs::MetricsSnapshot s = reg.Snapshot();
          EXPECT_GE(s.ValueOr("concurrent.counter"), 0);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  obs::MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.ValueOr("concurrent.counter"), kThreads * kPerThread);
  EXPECT_EQ(s.ValueOr("concurrent.histo.count"), kThreads * kPerThread);
  // sum = kPerThread * (1 + 2 + ... + kThreads)
  EXPECT_EQ(s.ValueOr("concurrent.histo.sum"),
            static_cast<int64_t>(kPerThread) * kThreads * (kThreads + 1) / 2);
}

TEST(MetricsRegistry, DeltaTreatsMissingInstrumentsAsZero) {
  obs::MetricsRegistry reg;
  obs::MetricsSnapshot before = reg.Snapshot();
  reg.GetCounter("late.arrival")->Add(5);
  obs::MetricsSnapshot after = reg.Snapshot();
  EXPECT_EQ(after.Delta(before, "late.arrival"), 5);
  EXPECT_EQ(after.Delta(before, "never.registered"), 0);
}

TEST(Histogram, BucketsArePowerOfTwoRanges) {
  obs::Histogram h;
  h.Observe(-3);
  h.Observe(0);
  h.Observe(1);
  EXPECT_EQ(h.bucket(0), 3);  // <= 0 and 1 land in bucket 0
  h.Observe(1000);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), -3 + 0 + 1 + 1000);
  // 1000 is in [512, 1024) = [2^9, 2^10) -> bucket 10.
  EXPECT_EQ(h.bucket(obs::Histogram::BucketOf(1000)), 1);
  EXPECT_EQ(obs::Histogram::BucketOf(512), obs::Histogram::BucketOf(1000));
  EXPECT_NE(obs::Histogram::BucketOf(1024), obs::Histogram::BucketOf(1000));
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

/// The deterministic projection of a stitched trace (everything but
/// wall_ns).
std::string TraceShape(const obs::TraceSink& sink) {
  std::string out;
  for (const obs::TraceSpan& s : sink.Stitched()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%lld/%lld/%d:%s\n",
                  static_cast<long long>(s.lane),
                  static_cast<long long>(s.seq), s.depth, s.name.c_str());
    out += buf;
  }
  return out;
}

TEST(Trace, SpansAreNoOpsWithoutABoundSink) {
  SQLARRAY_SPAN("orphan");  // must not crash or record anywhere
}

TEST(Trace, StitchingIsIndependentOfExecutionOrder) {
  // The same logical work executed in two different lane orders (as if
  // different workers had claimed the morsels) stitches identically.
  auto run = [](obs::TraceSink* sink, const std::vector<int64_t>& order) {
    {
      obs::ScopedTrace serial(sink, obs::kSerialLane);
      SQLARRAY_SPAN("exec.query");
      for (int64_t lane : order) {
        obs::ScopedTrace bind(sink, lane);
        SQLARRAY_SPAN("exec.scan.morsel");
        if (lane % 2 == 0) {
          SQLARRAY_SPAN("exec.scan.morsel.filter");  // nested: depth 1
        }
      }
    }
  };
  obs::TraceSink a;
  obs::TraceSink b;
  run(&a, {0, 1, 2, 3});
  run(&b, {3, 1, 0, 2});
  EXPECT_EQ(TraceShape(a), TraceShape(b));
  EXPECT_EQ(a.span_count(), b.span_count());
  EXPECT_GE(a.TotalWallNs("exec.scan.morsel"), 0.0);
  // Nested spans carry their depth.
  bool saw_nested = false;
  for (const obs::TraceSpan& s : a.Stitched()) {
    if (s.name == "exec.scan.morsel.filter") {
      EXPECT_EQ(s.depth, 1);
      saw_nested = true;
    }
  }
  EXPECT_TRUE(saw_nested);
}

TEST(Trace, ConcurrentLanesRecordIndependently) {
  // One sink, eight threads, each bound to its own lane — the TSan build of
  // this test is the race check for the per-binding buffer design.
  obs::TraceSink sink;
  std::vector<std::thread> threads;
  for (int64_t lane = 0; lane < 8; ++lane) {
    threads.emplace_back([&sink, lane]() {
      obs::ScopedTrace bind(&sink, lane);
      for (int i = 0; i < 100; ++i) {
        SQLARRAY_SPAN("exec.scan.morsel");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sink.span_count(), 8 * 100);
  std::vector<obs::TraceSpan> spans = sink.Stitched();
  for (size_t i = 1; i < spans.size(); ++i) {
    bool ordered = spans[i - 1].lane < spans[i].lane ||
                   (spans[i - 1].lane == spans[i].lane &&
                    spans[i - 1].seq < spans[i].seq);
    EXPECT_TRUE(ordered) << "stitched order broken at " << i;
  }
}

// ---------------------------------------------------------------------------
// SubqueryScope (RAII redesign of set_subquery_runner)
// ---------------------------------------------------------------------------

TEST(SubqueryScope, InstallReleaseAndMove) {
  storage::Database db;
  engine::FunctionRegistry registry;
  engine::Executor executor(&db, &registry);

  engine::SubqueryScope scope = executor.InstallSubqueryRunner(
      [](const std::string&) -> Result<engine::SubqueryResult> {
        return engine::SubqueryResult{};
      });
  EXPECT_TRUE(scope.active());

  // Moving the scope keeps the installation alive and transfers ownership.
  engine::SubqueryScope moved = std::move(scope);
  EXPECT_TRUE(moved.active());
  EXPECT_FALSE(scope.active());  // NOLINT(bugprone-use-after-move)

  // A later install displaces the earlier scope.
  engine::SubqueryScope second = executor.InstallSubqueryRunner(
      [](const std::string&) -> Result<engine::SubqueryResult> {
        return engine::SubqueryResult{};
      });
  EXPECT_TRUE(second.active());
  EXPECT_FALSE(moved.active());

  second.Release();
  EXPECT_FALSE(second.active());
  second.Release();  // idempotent
}

TEST(SubqueryScope, DestructorUninstallsCleanly) {
  storage::Database db;
  engine::FunctionRegistry registry;
  engine::Executor executor(&db, &registry);
  {
    engine::SubqueryScope scope = executor.InstallSubqueryRunner(
        [](const std::string&) -> Result<engine::SubqueryResult> {
          return engine::SubqueryResult{};
        });
    EXPECT_TRUE(scope.active());
  }
  // After the scope died a fresh install must work (no dangling pointer).
  engine::SubqueryScope again = executor.InstallSubqueryRunner(
      [](const std::string&) -> Result<engine::SubqueryResult> {
        return engine::SubqueryResult{};
      });
  EXPECT_TRUE(again.active());
}

// ---------------------------------------------------------------------------
// Profiles end to end
// ---------------------------------------------------------------------------

/// Test rig: one table of `rows` (id, v1, v2) rows behind a session.
class ObsQueryTest : public ::testing::Test {
 protected:
  ObsQueryTest() : executor_(&db_, &registry_), session_(&executor_) {
    EXPECT_TRUE(udfs::RegisterAllUdfs(&registry_).ok());
    executor_.set_min_pages_per_worker(0);  // parallelize tiny test tables
    storage::Schema schema =
        storage::Schema::Create({{"id", storage::ColumnType::kInt64, 0},
                                 {"v1", storage::ColumnType::kFloat64, 0},
                                 {"v2", storage::ColumnType::kFloat64, 0}})
            .value();
    table_ = db_.CreateTable("obs_t", std::move(schema)).value();
    storage::Table::BulkInserter load = table_->StartBulkLoad().value();
    for (int64_t i = 0; i < 20000; ++i) {
      // Association-sensitive v1: merge-order changes would move SUM by ulps.
      EXPECT_TRUE(load.Add({i, static_cast<double>(i) * 0.1 + 1.0 / 3.0,
                            static_cast<double>(i % 7)})
                      .ok());
    }
    EXPECT_TRUE(load.Finish().ok());
  }

  /// Serializes an EXPLAIN ANALYZE result set minus the trailing timing
  /// suffix (modeled_ms, wall_ms) — the deterministic prefix of the profile
  /// contract. wall_ms is measured; modeled_ms folds in the simulated
  /// disk's virtual clock, whose seek model is stateful across queries.
  static std::string DeterministicPrefix(const engine::ResultSet& rs) {
    std::string out;
    for (const std::vector<Value>& row : rs.rows) {
      for (size_t i = 0; i + 2 < row.size(); ++i) {
        const Value& v = row[i];
        char buf[64];
        if (v.kind() == Value::Kind::kString) {
          out += v.AsString().value();
        } else if (v.kind() == Value::Kind::kInt64) {
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(v.AsInt().value()));
          out += buf;
        } else if (v.kind() == Value::Kind::kFloat64) {
          std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble().value());
          out += buf;
        }
        out.push_back('|');
      }
      out.push_back('\n');
    }
    return out;
  }

  engine::ResultSet Explain(const std::string& select, int workers) {
    executor_.set_scan_workers(workers);
    db_.ClearCache();  // cold cache: hit/miss split is a function of the scan
    auto results = session_.Execute("EXPLAIN ANALYZE " + select).value();
    EXPECT_EQ(results.size(), 1u);
    return std::move(results[0]);
  }

  storage::Database db_;
  engine::FunctionRegistry registry_;
  engine::Executor executor_;
  sql::Session session_;
  storage::Table* table_ = nullptr;
};

TEST_F(ObsQueryTest, ExplainAnalyzeDeterministicAcrossWorkerCounts) {
  const std::string q = "SELECT v2, SUM(v1) AS s FROM obs_t GROUP BY v2";
  engine::ResultSet ref = Explain(q, 1);
  ASSERT_GT(ref.rows.size(), 0u);
  const std::string want = DeterministicPrefix(ref);
  for (int workers : {1, 2, 8}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      engine::ResultSet rs = Explain(q, workers);
      EXPECT_EQ(DeterministicPrefix(rs), want)
          << "workers=" << workers << " repeat=" << repeat;
    }
  }
}

TEST_F(ObsQueryTest, ExplainAnalyzeGoldenShape) {
  engine::ResultSet rs = Explain(
      "SELECT v2, SUM(v1) AS s FROM obs_t WHERE id >= 100 GROUP BY v2", 2);
  // Stable column keys, wall_ms last.
  EXPECT_EQ(rs.columns, obs::ProfileColumns());
  ASSERT_EQ(rs.columns.back(), "wall_ms");
  // Preorder operator chain, two-space indent per depth:
  // select > group-by > filter > scan.
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows[0][0].AsString().value(), "select");
  EXPECT_EQ(rs.rows[0][1].AsString().value(), "group-by");
  EXPECT_EQ(rs.rows[1][0].AsString().value(), "  group-by");
  EXPECT_EQ(rs.rows[2][0].AsString().value(), "    filter");
  EXPECT_EQ(rs.rows[3][0].AsString().value(), "      scan");
  EXPECT_EQ(rs.rows[3][1].AsString().value(), "obs_t");
  // The filter keeps 19900 of 20000 rows; the group-by emits 7 groups.
  const auto cell = [&](size_t row, size_t col) {
    return rs.rows[row][col].AsInt().value();
  };
  const size_t kRowsIn = 2;
  const size_t kRowsOut = 3;
  EXPECT_EQ(cell(2, kRowsIn), 20000);   // filter rows_in
  EXPECT_EQ(cell(2, kRowsOut), 19900);  // filter rows_out
  EXPECT_EQ(cell(1, kRowsIn), 19900);   // group-by rows_in
  EXPECT_EQ(cell(1, kRowsOut), 7);      // group-by rows_out
  EXPECT_EQ(cell(3, kRowsOut), 20000);  // scan rows_out
}

TEST_F(ObsQueryTest, ExplainRequiresAnalyzeAndASupportedStatement) {
  EXPECT_FALSE(session_.Execute("EXPLAIN SELECT 1").ok());
  // DML targets are supported since the WAL work; this one matches nothing,
  // profiles the key scan, and leaves the fixture rows alone.
  EXPECT_TRUE(
      session_.Execute("EXPLAIN ANALYZE DELETE FROM obs_t WHERE id < 0").ok());
  EXPECT_FALSE(session_.Execute("EXPLAIN ANALYZE CREATE TABLE nope (x INT)")
                   .ok());
  // EXPLAIN as a statement head is contextual only: it still works as an
  // identifier elsewhere (no new reserved word).
  EXPECT_TRUE(session_.Execute("SELECT 1 AS explain").ok());
}

TEST_F(ObsQueryTest, CountersConserveAcrossProfileStatsAndRegistry) {
  engine::Query q;
  q.table = table_;
  engine::SelectItem sum;
  sum.agg = engine::SelectItem::AggKind::kSum;
  sum.expr = engine::Col("v1");
  sum.label = "s";
  q.items.push_back(std::move(sum));
  ASSERT_TRUE(executor_.Bind(&q).ok());

  executor_.set_scan_workers(4);
  db_.ClearCache();
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  engine::QueryContext qctx;
  qctx.collect_profile = true;
  engine::ResultSet rs = executor_.Execute(q, nullptr, &qctx).value();
  obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();

  ASSERT_FALSE(qctx.profile.empty());
  // Find the scan leaf.
  const obs::ProfileNode* node = &qctx.profile.root();
  while (!node->children.empty()) node = &node->children[0];
  ASSERT_EQ(node->op, "scan");

  // Conservation: the profile's scan counters, the per-query stats, and the
  // process-wide registry deltas all describe the same physical events.
  EXPECT_GT(node->counters.pages_read, 0);
  EXPECT_EQ(node->counters.pages_read, qctx.stats.io.pages_read);
  EXPECT_EQ(node->counters.pages_read,
            after.Delta(before, "storage.disk.pages_read"));
  EXPECT_EQ(node->counters.cache_hits + node->counters.cache_misses,
            after.Delta(before, "storage.buffer_pool.hits") +
                after.Delta(before, "storage.buffer_pool.misses"));
  EXPECT_EQ(rs.stats.rows_scanned, 20000);
  EXPECT_EQ(qctx.stats.rows_scanned, rs.stats.rows_scanned);

  // The trace recorded the query spine and the morsel work.
  EXPECT_GT(qctx.trace.span_count(), 0);
  int64_t morsel_spans = 0;
  for (const obs::TraceSpan& s : qctx.trace.Stitched()) {
    if (s.name == "exec.scan.morsel") {
      EXPECT_GE(s.lane, 0);  // morsel lanes, not the serial spine
      ++morsel_spans;
    }
  }
  EXPECT_GT(morsel_spans, 0);
}

TEST_F(ObsQueryTest, ProfileTracksUdfBoundaryPerFunction) {
  auto results =
      session_
          .Execute(
              "EXPLAIN ANALYZE SELECT FloatArray.Vector_2(v1, v2) AS a "
              "FROM obs_t WHERE id < 64")
          .value();
  ASSERT_EQ(results.size(), 1u);
  const engine::ResultSet& rs = results[0];
  bool saw_udf = false;
  for (const std::vector<Value>& row : rs.rows) {
    std::string op = row[0].AsString().value();
    if (op.find("udf") != std::string::npos) {
      saw_udf = true;
      EXPECT_EQ(row[1].AsString().value(), "FloatArray.Vector_2");
      EXPECT_EQ(row[7].AsInt().value(), 64);  // udf_calls: one per kept row
      EXPECT_GT(row[8].AsInt().value(), 0);   // udf_bytes
    }
  }
  EXPECT_TRUE(saw_udf);
}

TEST_F(ObsQueryTest, LastStatsSurvivesSubqueries) {
  // The per-statement QueryContext redesign: a reader-style UDF's nested
  // subquery must not clobber the outer statement's session stats.
  ASSERT_TRUE(session_
                  .Execute("DECLARE @l VARBINARY(100) = IntArray.Vector_1(32); "
                           "DECLARE @a VARBINARY(MAX); "
                           "SET @a = FloatArrayMax.ConcatQuery(@l, "
                           "'SELECT id, v1 FROM obs_t WHERE id < 32')")
                  .ok());
  // The outer SET's stats include the subquery's scan, merged explicitly.
  EXPECT_GE(session_.last_stats().rows_scanned, 32);
  EXPECT_GT(session_.last_stats().udf_calls, 0);
}

}  // namespace
}  // namespace sqlarray
