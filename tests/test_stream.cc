// Tests for streamed (partial-read) array operations over ByteSources.
#include <gtest/gtest.h>

#include "core/build.h"
#include "core/byte_source.h"
#include "core/ops.h"
#include "core/stream_ops.h"

namespace sqlarray {
namespace {

/// A ByteSource wrapper that counts bytes actually read.
class CountingSource : public ByteSource {
 public:
  explicit CountingSource(std::span<const uint8_t> bytes) : mem_(bytes) {}

  int64_t size() const override { return mem_.size(); }
  Status ReadAt(int64_t offset, std::span<uint8_t> out) override {
    bytes_read_ += static_cast<int64_t>(out.size());
    ++read_calls_;
    return mem_.ReadAt(offset, out);
  }

  int64_t bytes_read() const { return bytes_read_; }
  int64_t read_calls() const { return read_calls_; }

 private:
  MemoryByteSource mem_;
  int64_t bytes_read_ = 0;
  int64_t read_calls_ = 0;
};

OwnedArray RampMax(Dims dims) {
  OwnedArray a =
      OwnedArray::Zeros(DType::kFloat64, dims, StorageClass::kMax).value();
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    EXPECT_TRUE(a.SetDouble(i, static_cast<double>(i)).ok());
  }
  return a;
}

TEST(StreamOps, ReadHeaderOnly) {
  OwnedArray a = RampMax({20, 30});
  CountingSource src(a.blob());
  ArrayHeader h = ReadHeaderFromSource(&src).value();
  EXPECT_EQ(h.dims, (Dims{20, 30}));
  // Header reads must not touch the payload.
  EXPECT_LT(src.bytes_read(), 64);
}

TEST(StreamOps, StreamItemTouchesOneElement) {
  OwnedArray a = RampMax({100, 100});
  CountingSource src(a.blob());
  double v = StreamItem(&src, Dims{5, 7}).value();
  EXPECT_EQ(v, 705.0);
  // Header (~2 reads) + one 8-byte element.
  EXPECT_LT(src.bytes_read(), 64);
}

TEST(StreamOps, StreamReadAllRoundTrip) {
  OwnedArray a = RampMax({17});
  MemoryByteSource src(a.blob());
  OwnedArray back = StreamReadAll(&src).value();
  EXPECT_EQ(back.dims(), a.dims());
  EXPECT_EQ(back.ref().GetDouble(16).value(), 16.0);
}

struct StreamSubCase {
  Dims dims;
  Dims offset;
  Dims sizes;
};

class StreamSubarrayMatchesLocal
    : public ::testing::TestWithParam<StreamSubCase> {};

TEST_P(StreamSubarrayMatchesLocal, SameResult) {
  const StreamSubCase& c = GetParam();
  OwnedArray a = RampMax(c.dims);
  MemoryByteSource src(a.blob());
  OwnedArray streamed =
      StreamSubarray(&src, c.offset, c.sizes, false).value();
  OwnedArray local = Subarray(a.ref(), c.offset, c.sizes, false).value();
  ASSERT_EQ(streamed.dims(), local.dims());
  for (int64_t i = 0; i < streamed.num_elements(); ++i) {
    EXPECT_EQ(streamed.ref().GetDouble(i).value(),
              local.ref().GetDouble(i).value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StreamSubarrayMatchesLocal,
    ::testing::Values(
        StreamSubCase{{50}, {10}, {20}},
        StreamSubCase{{20, 20}, {3, 5}, {4, 6}},
        StreamSubCase{{20, 20}, {0, 5}, {20, 6}},     // full leading dim
        StreamSubCase{{8, 8, 8}, {2, 2, 2}, {3, 3, 3}},
        StreamSubCase{{8, 8, 8}, {0, 0, 2}, {8, 8, 3}},  // contiguous planes
        StreamSubCase{{8, 8, 8}, {0, 0, 0}, {8, 8, 8}},
        StreamSubCase{{4, 4, 4, 4}, {1, 0, 2, 1}, {2, 4, 1, 3}}));

TEST(StreamOps, PartialReadIsProportionalToSubset) {
  // A 100x100x100 float64 max array is 8 MB; a 4^3 subset should read only
  // a few KB.
  OwnedArray a =
      OwnedArray::Zeros(DType::kFloat64, {100, 100, 100}, StorageClass::kMax)
          .value();
  CountingSource src(a.blob());
  OwnedArray sub =
      StreamSubarray(&src, Dims{10, 10, 10}, Dims{4, 4, 4}, false).value();
  EXPECT_EQ(sub.num_elements(), 64);
  // 16 runs of 4 elements = 512 payload bytes + header.
  EXPECT_LT(src.bytes_read(), 2000);
  EXPECT_LT(src.bytes_read(), static_cast<int64_t>(a.blob().size()) / 100);
}

TEST(StreamOps, ContiguousPrefixCoalescesReads) {
  OwnedArray a = RampMax({16, 16, 16});
  CountingSource src(a.blob());
  // Full leading two dims: the 16x16x4 block is one contiguous range.
  OwnedArray sub =
      StreamSubarray(&src, Dims{0, 0, 4}, Dims{16, 16, 4}, false).value();
  EXPECT_EQ(sub.num_elements(), 16 * 16 * 4);
  // Header reads + ONE payload read.
  EXPECT_LE(src.read_calls(), 3);
}

TEST(StreamOps, CollapseMatchesLocalSemantics) {
  OwnedArray a = RampMax({6, 7});
  MemoryByteSource src(a.blob());
  OwnedArray streamed = StreamSubarray(&src, Dims{0, 3}, Dims{6, 1}, true)
                            .value();
  EXPECT_EQ(streamed.dims(), (Dims{6}));
  EXPECT_EQ(streamed.ref().GetDouble(0).value(), 18.0);
}

TEST(StreamOps, ValidatesBounds) {
  OwnedArray a = RampMax({10});
  MemoryByteSource src(a.blob());
  EXPECT_FALSE(StreamSubarray(&src, Dims{8}, Dims{4}, false).ok());
  EXPECT_FALSE(StreamItem(&src, Dims{10}).ok());
  EXPECT_FALSE(StreamItem(&src, Dims{0, 0}).ok());
}

TEST(StreamOps, RejectsTruncatedSource) {
  OwnedArray a = RampMax({10});
  auto blob = a.blob();
  MemoryByteSource src(blob.first(blob.size() - 8));
  EXPECT_FALSE(ReadHeaderFromSource(&src).ok());
}

TEST(MemoryByteSource, BoundsChecked) {
  std::vector<uint8_t> bytes(16);
  MemoryByteSource src(bytes);
  std::vector<uint8_t> buf(8);
  EXPECT_TRUE(src.ReadAt(8, buf).ok());
  EXPECT_FALSE(src.ReadAt(9, buf).ok());
  EXPECT_FALSE(src.ReadAt(-1, buf).ok());
}

}  // namespace
}  // namespace sqlarray
