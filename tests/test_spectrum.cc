// Tests for the spectrum use case: synthesis, flux-conserving resampling,
// normalization, SQL composites, PCA similarity search (Sec. 2.2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/ops.h"
#include "sci/spectrum/datacube.h"
#include "sci/spectrum/pipeline.h"
#include "sci/spectrum/resample.h"
#include "sci/spectrum/spectrum.h"
#include "udfs/register.h"

namespace sqlarray::spectrum {
namespace {

SyntheticSpectrumConfig CleanConfig() {
  SyntheticSpectrumConfig config;
  config.noise_sigma = 0.001;
  config.flagged_fraction = 0.0;
  return config;
}

TEST(Synthetic, ShapesAndDeterminism) {
  SyntheticSpectrumConfig config;
  Rng rng1(5), rng2(5);
  Spectrum a = MakeSyntheticSpectrum(config, &rng1);
  Spectrum b = MakeSyntheticSpectrum(config, &rng2);
  EXPECT_EQ(a.size(), static_cast<size_t>(config.bins));
  EXPECT_EQ(a.flux, b.flux);
  EXPECT_EQ(a.wavelength, b.wavelength);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a.wavelength[i], a.wavelength[i - 1]);
  }
  EXPECT_GE(a.redshift, 0.0);
  EXPECT_LE(a.redshift, config.max_redshift);
}

TEST(Synthetic, WavelengthGridsDifferPerSpectrum) {
  SyntheticSpectrumConfig config;
  Rng rng(6);
  Spectrum a = MakeSyntheticSpectrum(config, &rng);
  Spectrum b = MakeSyntheticSpectrum(config, &rng);
  EXPECT_NE(a.wavelength[0], b.wavelength[0]);
}

TEST(Integrate, SkipsFlaggedBins) {
  Spectrum s;
  s.wavelength = {1, 2, 3, 4};
  s.flux = {1, 1, 100, 1};
  s.error = {0, 0, 0, 0};
  s.flags = {0, 0, 1, 0};
  double masked = IntegrateFlux(s, 1, 4);
  s.flags = {0, 0, 0, 0};
  double unmasked = IntegrateFlux(s, 1, 4);
  EXPECT_LT(masked, unmasked);
}

TEST(Normalize, MakesUnitIntegral) {
  Rng rng(7);
  Spectrum s = MakeSyntheticSpectrum(CleanConfig(), &rng);
  double lo = s.wavelength.front(), hi = s.wavelength.back();
  ASSERT_TRUE(NormalizeFlux(&s, lo, hi).ok());
  EXPECT_NEAR(IntegrateFlux(s, lo, hi), 1.0, 1e-9);
}

TEST(Correction, ScalesFluxByWavelengthFunction) {
  Spectrum s;
  s.wavelength = {100, 200};
  s.flux = {1, 1};
  s.error = {0.1, 0.1};
  s.flags = {0, 0};
  ApplyCorrection(&s, [](double lambda) { return lambda / 100.0; });
  EXPECT_EQ(s.flux[0], 1.0);
  EXPECT_EQ(s.flux[1], 2.0);
  EXPECT_NEAR(s.error[1], 0.2, 1e-12);
}

TEST(Resample, ConservesIntegratedFlux) {
  // The defining property: integral over the full range is preserved.
  Rng rng(8);
  Spectrum s = MakeSyntheticSpectrum(CleanConfig(), &rng);
  std::vector<double> grid =
      MakeLogGrid(s.wavelength.front() * 1.02, s.wavelength.back() * 0.98,
                  96);
  Spectrum r = ResampleFluxConserving(s, grid).value();
  double src = IntegrateFlux(s, grid.front(), grid.back());
  double dst = IntegrateFlux(r, grid.front(), grid.back());
  EXPECT_NEAR(dst, src, 0.02 * std::fabs(src));
}

TEST(Resample, ConstantSpectrumStaysConstant) {
  Spectrum s;
  for (int i = 0; i < 50; ++i) {
    s.wavelength.push_back(100.0 + i * 2.0);
    s.flux.push_back(3.0);
    s.error.push_back(0.1);
    s.flags.push_back(0);
  }
  std::vector<double> grid = MakeLogGrid(110, 180, 20);
  Spectrum r = ResampleFluxConserving(s, grid).value();
  for (size_t i = 0; i < r.size(); ++i) {
    ASSERT_EQ(r.flags[i], 0);
    EXPECT_NEAR(r.flux[i], 3.0, 1e-9) << "bin " << i;
  }
}

TEST(Resample, UncoveredBinsAreFlagged) {
  Spectrum s;
  for (int i = 0; i < 10; ++i) {
    s.wavelength.push_back(100.0 + i);
    s.flux.push_back(1.0);
    s.error.push_back(0.1);
    s.flags.push_back(0);
  }
  // Grid extends far beyond the source coverage.
  std::vector<double> grid = MakeLogGrid(50, 300, 40);
  Spectrum r = ResampleFluxConserving(s, grid).value();
  EXPECT_EQ(r.flags.front(), 1);
  EXPECT_EQ(r.flags.back(), 1);
  bool any_unflagged = false;
  for (uint8_t f : r.flags) any_unflagged |= (f == 0);
  EXPECT_TRUE(any_unflagged);
}

TEST(Resample, MaskedSourceBinsExcluded) {
  Spectrum s;
  for (int i = 0; i < 40; ++i) {
    s.wavelength.push_back(100.0 + i);
    s.flux.push_back(i >= 18 && i <= 22 ? 1000.0 : 2.0);
    s.error.push_back(0.1);
    s.flags.push_back(i >= 18 && i <= 22 ? 1 : 0);
  }
  std::vector<double> grid = MakeLogGrid(105, 135, 12);
  Spectrum r = ResampleFluxConserving(s, grid).value();
  for (size_t i = 0; i < r.size(); ++i) {
    if (!r.flags[i]) {
      EXPECT_LT(r.flux[i], 10.0) << "corrupted bin leaked at " << i;
    }
  }
}

TEST(Resample, Validation) {
  Spectrum tiny;
  tiny.wavelength = {1};
  tiny.flux = {1};
  tiny.error = {0};
  tiny.flags = {0};
  EXPECT_FALSE(ResampleFluxConserving(tiny, MakeLogGrid(1, 2, 4)).ok());
}

TEST(Datacube, CollapseEqualsManualSum) {
  Datacube cube = MakeSyntheticCube(32, 5, 4, 3).value();
  Spectrum total = CollapseToSpectrum(cube).value();
  ASSERT_EQ(total.size(), 32u);

  // Manual reduction over all spaxels must match the axis-aggregate path.
  ArrayRef ref = cube.flux.ref();
  for (int w = 0; w < 32; ++w) {
    double sum = 0;
    for (int64_t x = 0; x < 5; ++x) {
      for (int64_t y = 0; y < 4; ++y) {
        sum += ref.GetDoubleAt(Dims{w, x, y}).value();
      }
    }
    ASSERT_NEAR(total.flux[w], sum, 1e-9) << "bin " << w;
  }
}

TEST(Datacube, SpaxelsSumToTotal) {
  Datacube cube = MakeSyntheticCube(24, 3, 3, 4).value();
  Spectrum total = CollapseToSpectrum(cube).value();
  std::vector<double> accum(24, 0.0);
  for (int64_t x = 0; x < 3; ++x) {
    for (int64_t y = 0; y < 3; ++y) {
      Spectrum s = ExtractSpaxel(cube, x, y).value();
      for (int w = 0; w < 24; ++w) accum[w] += s.flux[w];
    }
  }
  for (int w = 0; w < 24; ++w) {
    EXPECT_NEAR(accum[w], total.flux[w], 1e-9);
  }
}

TEST(Datacube, CenterSpaxelIsBrightest) {
  Datacube cube = MakeSyntheticCube(32, 7, 7, 5).value();
  Spectrum center = ExtractSpaxel(cube, 3, 3).value();
  Spectrum corner = ExtractSpaxel(cube, 0, 0).value();
  double fc = 0, fk = 0;
  for (int w = 0; w < 32; ++w) {
    fc += center.flux[w];
    fk += corner.flux[w];
  }
  EXPECT_GT(fc, 2 * fk);  // exponential surface-brightness falloff
}

TEST(Datacube, SlitIsRank2AndConsistent) {
  Datacube cube = MakeSyntheticCube(16, 4, 5, 6).value();
  OwnedArray slit = ExtractSlit(cube).value();
  EXPECT_EQ(slit.dims(), (Dims{16, 4}));
  // Summing the slit over position equals the full collapse.
  OwnedArray total = AggregateAxis(slit.ref(), 1, AggKind::kSum).value();
  Spectrum collapsed = CollapseToSpectrum(cube).value();
  for (int w = 0; w < 16; ++w) {
    EXPECT_NEAR(total.ref().GetDouble(w).value(), collapsed.flux[w], 1e-9);
  }
}

TEST(Datacube, Validation) {
  EXPECT_FALSE(MakeSyntheticCube(4, 2, 2, 1).ok());
  Datacube cube = MakeSyntheticCube(16, 2, 2, 1).value();
  EXPECT_FALSE(ExtractSpaxel(cube, 2, 0).ok());
}

class SpectrumDbTest : public ::testing::Test {
 protected:
  SpectrumDbTest() : executor_(&db_, &registry_), session_(&executor_) {
    EXPECT_TRUE(udfs::RegisterAllUdfs(&registry_).ok());
    EXPECT_TRUE(RegisterSpectrumUdfs(&registry_).ok());
  }

  storage::Database db_;
  engine::FunctionRegistry registry_;
  engine::Executor executor_;
  sql::Session session_;
};

TEST_F(SpectrumDbTest, LoadAndCompositeByRedshift) {
  SyntheticSpectrumConfig config;
  config.bins = 128;
  Rng rng(11);
  std::vector<Spectrum> spectra;
  for (int i = 0; i < 40; ++i) {
    spectra.push_back(MakeSyntheticSpectrum(config, &rng));
  }
  storage::Table* table =
      LoadSpectraTable(&db_, "spectra", spectra, 4, config.max_redshift)
          .value();
  EXPECT_EQ(table->row_count(), 40);

  auto composites =
      CompositeByRedshift(&session_, "spectra", 4200, 9000, 64).value();
  EXPECT_GE(composites.size(), 2u);
  for (const auto& [zbin, flux] : composites) {
    EXPECT_GE(zbin, 0);
    EXPECT_LT(zbin, 4);
    ASSERT_EQ(flux.size(), 64u);
    // Composites are averages of positive-continuum spectra.
    double mean = 0;
    for (double f : flux) mean += f;
    EXPECT_GT(mean / 64, 0.0);
  }
}

TEST_F(SpectrumDbTest, SpectrumUdfsRunInQueries) {
  SyntheticSpectrumConfig config;
  config.bins = 64;
  Rng rng(12);
  std::vector<Spectrum> spectra;
  for (int i = 0; i < 5; ++i) {
    spectra.push_back(MakeSyntheticSpectrum(config, &rng));
  }
  ASSERT_TRUE(
      LoadSpectraTable(&db_, "sp", spectra, 2, config.max_redshift).ok());
  auto results = session_.Execute(
      "SELECT id, Spectrum.Integrate(wl, flux, flags, 4500, 8000) FROM sp");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ((*results)[0].rows.size(), 5u);
  for (const auto& row : (*results)[0].rows) {
    EXPECT_GT(row[1].AsDouble().value(), 0.0);
  }
}

TEST(SimilarityIndex, FindsSelfAndSimilarRedshifts) {
  SyntheticSpectrumConfig config;
  config.bins = 128;
  config.noise_sigma = 0.01;
  Rng rng(13);
  std::vector<Spectrum> spectra;
  for (int i = 0; i < 60; ++i) {
    spectra.push_back(MakeSyntheticSpectrum(config, &rng));
  }
  std::vector<double> grid = MakeLogGrid(4300, 8800, 96);
  SimilarityIndex index = SimilarityIndex::Build(spectra, grid, 8).value();

  // Querying with an archive spectrum must return itself first.
  auto ids = index.QuerySimilar(spectra[17], 5).value();
  ASSERT_GE(ids.size(), 1u);
  EXPECT_EQ(ids[0], 17);

  // Neighbors should be close in redshift (the dominant variation).
  double z_query = spectra[17].redshift;
  int closer = 0;
  for (size_t k = 1; k < ids.size(); ++k) {
    if (std::fabs(spectra[ids[k]].redshift - z_query) < 0.08) ++closer;
  }
  EXPECT_GE(closer, 2);
}

TEST(SimilarityIndex, MaskedQueryStillMatches) {
  SyntheticSpectrumConfig config;
  config.bins = 128;
  config.noise_sigma = 0.005;
  config.flagged_fraction = 0.0;
  Rng rng(14);
  std::vector<Spectrum> spectra;
  for (int i = 0; i < 40; ++i) {
    spectra.push_back(MakeSyntheticSpectrum(config, &rng));
  }
  std::vector<double> grid = MakeLogGrid(4300, 8800, 96);
  SimilarityIndex index = SimilarityIndex::Build(spectra, grid, 6).value();

  // Corrupt 10% of a query's bins and flag them: the masked expansion must
  // still find the original.
  Spectrum query = spectra[9];
  for (size_t i = 0; i < query.size(); i += 10) {
    query.flux[i] = 1e4;
    query.flags[i] = 1;
  }
  auto ids = index.QuerySimilar(query, 3).value();
  ASSERT_GE(ids.size(), 1u);
  EXPECT_EQ(ids[0], 9);
}

}  // namespace
}  // namespace sqlarray::spectrum
