// Tests for the T-SQL frontend: lexer, parser, session — including the
// paper's exact Sec. 5.1 statements and the Sec. 8 subscript sugar.
#include <gtest/gtest.h>

#include "core/array.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "udfs/register.h"

namespace sqlarray::sql {
namespace {

using engine::Value;

TEST(Lexer, TokenKinds) {
  auto tokens = Lex("SELECT @a = 1.5, 0xAB12 'str' (x) [1:2]").value();
  ASSERT_GE(tokens.size(), 12u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].type, TokenType::kVariable);
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_EQ(tokens[2].type, TokenType::kEq);
  EXPECT_EQ(tokens[3].type, TokenType::kFloat);
  EXPECT_EQ(tokens[3].float_value, 1.5);
  EXPECT_EQ(tokens[5].type, TokenType::kBinary);
  EXPECT_EQ(tokens[5].binary_value, (std::vector<uint8_t>{0xAB, 0x12}));
  EXPECT_EQ(tokens[6].type, TokenType::kString);
  EXPECT_EQ(tokens[6].text, "str");
}

TEST(Lexer, CommentsAndOperators) {
  auto tokens = Lex("a -- line comment\n /* block */ <= <> >= !=").value();
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[1].type, TokenType::kLe);
  EXPECT_EQ(tokens[2].type, TokenType::kNe);
  EXPECT_EQ(tokens[3].type, TokenType::kGe);
  EXPECT_EQ(tokens[4].type, TokenType::kNe);
}

TEST(Lexer, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("@ alone").ok());
  EXPECT_FALSE(Lex("0xABC").ok());  // odd hex digits
  EXPECT_FALSE(Lex("/* open").ok());
  EXPECT_FALSE(Lex("a ? b").ok());
}

TEST(Lexer, EscapedQuoteInString) {
  auto tokens = Lex("'it''s'").value();
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(Parser, ExpressionPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  engine::ExprPtr e = ParseExpression("1 + 2 * 3").value();
  ASSERT_EQ(e->kind, engine::Expr::Kind::kBinary);
  EXPECT_EQ(e->binary_op, engine::BinaryOp::kAdd);
  EXPECT_EQ(e->args[1]->binary_op, engine::BinaryOp::kMul);
}

TEST(Parser, SchemaQualifiedCall) {
  engine::ExprPtr e =
      ParseExpression("FloatArray.Vector_2(1.0, 2.0)").value();
  ASSERT_EQ(e->kind, engine::Expr::Kind::kCall);
  EXPECT_EQ(e->schema_name, "FloatArray");
  EXPECT_EQ(e->func_name, "Vector_2");
  EXPECT_EQ(e->args.size(), 2u);
}

TEST(Parser, SubscriptSugarDesugarsToItem) {
  engine::ExprPtr e = ParseExpression("@a[1, 2]").value();
  ASSERT_EQ(e->kind, engine::Expr::Kind::kCall);
  EXPECT_EQ(e->schema_name, "Array");
  EXPECT_EQ(e->func_name, "Item");
  EXPECT_EQ(e->args.size(), 3u);
}

TEST(Parser, SliceSugarDesugarsToSlice) {
  engine::ExprPtr e = ParseExpression("@a[1:5, 2]").value();
  ASSERT_EQ(e->kind, engine::Expr::Kind::kCall);
  EXPECT_EQ(e->func_name, "Slice");
  EXPECT_EQ(e->args.size(), 7u);  // arr + 2 dims * 3
}

TEST(Parser, StatementsParse) {
  EXPECT_TRUE(Parse("DECLARE @a VARBINARY(100) = 1").ok());
  EXPECT_TRUE(Parse("SET @a = 2").ok());
  EXPECT_TRUE(Parse("SELECT 1; SELECT 2").ok());
  EXPECT_TRUE(Parse("SELECT TOP 5 id FROM t WITH (NOLOCK) WHERE id > 3 "
                    "GROUP BY id")
                  .ok());
  EXPECT_TRUE(
      Parse("CREATE TABLE t (id BIGINT, v VARBINARY(MAX))").ok());
  EXPECT_TRUE(Parse("INSERT INTO t VALUES (1, 0x00), (2, 0x01)").ok());
  EXPECT_FALSE(Parse("DROP TABLE t").ok());
  EXPECT_FALSE(Parse("SELECT FROM").ok());
}

class SessionTest : public ::testing::Test {
 protected:
  SessionTest()
      : executor_(&db_, &registry_), session_(&executor_) {
    EXPECT_TRUE(udfs::RegisterAllUdfs(&registry_).ok());
  }

  /// Runs a script expecting success.
  std::vector<engine::ResultSet> Run(const std::string& sqltext) {
    auto r = session_.Execute(sqltext);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nSQL: " << sqltext;
    return r.ok() ? std::move(r).value() : std::vector<engine::ResultSet>{};
  }

  /// Fetches the array currently held by a session variable.
  OwnedArray VarArray(const std::string& name) {
    Value v = session_.GetVariable(name).value();
    return OwnedArray::FromBlob(v.MaterializeBytes().value()).value();
  }

  storage::Database db_;
  engine::FunctionRegistry registry_;
  engine::Executor executor_;
  Session session_;
};

TEST_F(SessionTest, PaperExampleVectorAndItem) {
  // Sec. 5.1: DECLARE @a ... = FloatArray.Vector_5(...); Item_1(@a, 3).
  Run("DECLARE @a VARBINARY(100) = "
      "FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)");
  auto results = Run("SELECT FloatArray.Item_1(@a, 3)");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].ScalarResult().value().AsDouble().value(), 4.0);
}

TEST_F(SessionTest, PaperExampleMatrixItem2) {
  Run("DECLARE @m VARBINARY(100) = "
      "FloatArray.Matrix_2(0.1, 0.2, 0.3, 0.4)");
  auto results = Run("SELECT FloatArray.Item_2(@m, 1, 0)");
  // Column-major: (1,0) is the second listed element.
  EXPECT_NEAR(results[0].ScalarResult().value().AsDouble().value(), 0.2,
              1e-12);
}

TEST_F(SessionTest, PaperExampleUpdateItem) {
  Run("DECLARE @a VARBINARY(100) = FloatArray.Vector_5(1, 2, 3, 4, 5)");
  Run("SET @a = FloatArray.UpdateItem_1(@a, 3, 4.5)");
  auto results = Run("SELECT FloatArray.Item_1(@a, 3)");
  EXPECT_EQ(results[0].ScalarResult().value().AsDouble().value(), 4.5);
}

TEST_F(SessionTest, PaperExampleSubarray) {
  // A 10x10x10 max array of floats, subset 5x5x5 at (1, 4, 6) (Sec. 5.1).
  Run("DECLARE @a VARBINARY(MAX) = FloatArrayMax.Create(12, 12, 12)");
  Run("DECLARE @b VARBINARY(MAX)");
  Run("SET @a = FloatArrayMax.UpdateItem_3(@a, 2, 5, 7, 42.0)");
  Run("SET @b = FloatArrayMax.Subarray(@a, "
      "IntArray.Vector_3(1, 4, 6), IntArray.Vector_3(5, 5, 5), 0)");
  OwnedArray b = VarArray("b");
  EXPECT_EQ(b.dims(), (Dims{5, 5, 5}));
  EXPECT_EQ(b.ref().GetDoubleAt(Dims{1, 1, 1}).value(), 42.0);
}

TEST_F(SessionTest, SubarrayCollapseFlag) {
  Run("DECLARE @m VARBINARY(100) = FloatArray.Matrix_2(1, 2, 3, 4)");
  Run("DECLARE @col VARBINARY(100)");
  Run("SET @col = FloatArray.Subarray(@m, IntArray.Vector_2(0, 1), "
      "IntArray.Vector_2(2, 1), 1)");
  OwnedArray col = VarArray("col");
  EXPECT_EQ(col.dims(), (Dims{2}));
  EXPECT_EQ(col.ref().GetDouble(0).value(), 3.0);
}

TEST_F(SessionTest, TableScanWithAggregates) {
  Run("CREATE TABLE nums (id BIGINT, v FLOAT)");
  Run("INSERT INTO nums VALUES (1, 1.5), (2, 2.5), (3, 3.0)");
  auto results =
      Run("SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM nums");
  const auto& row = results[0].rows[0];
  EXPECT_EQ(row[0].AsInt().value(), 3);
  EXPECT_EQ(row[1].AsDouble().value(), 7.0);
  EXPECT_EQ(row[2].AsDouble().value(), 1.5);
  EXPECT_EQ(row[3].AsDouble().value(), 3.0);
  EXPECT_NEAR(row[4].AsDouble().value(), 7.0 / 3, 1e-12);
}

TEST_F(SessionTest, NolockScanAndWhere) {
  Run("CREATE TABLE t (id BIGINT, v FLOAT)");
  Run("INSERT INTO t VALUES (1, 10.0), (2, 20.0), (3, 30.0)");
  auto results =
      Run("SELECT SUM(v) FROM t WITH (NOLOCK) WHERE id >= 2");
  EXPECT_EQ(results[0].ScalarResult().value().AsDouble().value(), 50.0);
}

TEST_F(SessionTest, PaperExampleConcatAggregate) {
  // Sec. 5.1: assemble an array from rows with the Concat UDA.
  Run("CREATE TABLE cells (id BIGINT, ix BIGINT, v FLOAT)");
  Run("INSERT INTO cells VALUES (1, 0, 10.0), (2, 1, 11.0), (3, 2, 12.0), "
      "(4, 3, 13.0)");
  Run("DECLARE @l VARBINARY(100) = IntArray.Vector_1(4)");
  Run("DECLARE @a VARBINARY(MAX)");
  Run("SELECT @a = FloatArrayMax.Concat(@l, ix, v) FROM cells");
  OwnedArray a = VarArray("a");
  EXPECT_EQ(a.dims(), (Dims{4}));
  EXPECT_EQ(a.ref().GetDouble(2).value(), 12.0);
}

TEST_F(SessionTest, ReaderStyleConcatQueryMatchesUda) {
  Run("CREATE TABLE cells2 (id BIGINT, ix BIGINT, v FLOAT)");
  Run("INSERT INTO cells2 VALUES (1, 0, 5.0), (2, 1, 6.0), (3, 2, 7.0)");
  Run("DECLARE @l VARBINARY(100) = IntArray.Vector_1(3)");
  Run("DECLARE @u VARBINARY(MAX)");
  Run("DECLARE @r VARBINARY(MAX)");
  Run("SELECT @u = FloatArrayMax.Concat(@l, ix, v) FROM cells2");
  Run("SET @r = FloatArrayMax.ConcatQuery(@l, "
      "'SELECT ix, v FROM cells2')");
  OwnedArray u = VarArray("u");
  OwnedArray r = VarArray("r");
  ASSERT_EQ(u.dims(), r.dims());
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(u.ref().GetDouble(i).value(), r.ref().GetDouble(i).value());
  }
}

TEST_F(SessionTest, SubscriptSugarReadsAndSlices) {
  Run("DECLARE @a VARBINARY(100) = FloatArray.Vector_5(10, 20, 30, 40, 50)");
  auto results = Run("SELECT @a[3]");
  EXPECT_EQ(results[0].ScalarResult().value().AsDouble().value(), 40.0);

  Run("DECLARE @m VARBINARY(100) = FloatArray.Matrix_2(1, 2, 3, 4)");
  auto item = Run("SELECT @m[1, 1]");
  EXPECT_EQ(item[0].ScalarResult().value().AsDouble().value(), 4.0);

  // Slice: first column of the matrix as a vector.
  Run("DECLARE @col VARBINARY(100)");
  Run("SET @col = @m[0:2, 0]");
  OwnedArray col = VarArray("col");
  EXPECT_EQ(col.dims(), (Dims{2}));
  EXPECT_EQ(col.ref().GetDouble(1).value(), 2.0);
}

TEST_F(SessionTest, SubscriptSugarAssignment) {
  Run("DECLARE @a VARBINARY(100) = FloatArray.Vector_3(1, 2, 3)");
  Run("SET @a[1] = 99");
  auto results = Run("SELECT @a[1]");
  EXPECT_EQ(results[0].ScalarResult().value().AsDouble().value(), 99.0);
}

TEST_F(SessionTest, ArrayStringAndIntrospection) {
  Run("DECLARE @a VARBINARY(100) = FloatArray.Vector_3(1, 2, 3)");
  auto rank = Run("SELECT Array.Rank(@a)");
  EXPECT_EQ(rank[0].ScalarResult().value().AsInt().value(), 1);
  auto len = Run("SELECT Array.Length(@a)");
  EXPECT_EQ(len[0].ScalarResult().value().AsInt().value(), 3);
  auto name = Run("SELECT Array.TypeName(@a)");
  EXPECT_EQ(name[0].ScalarResult().value().AsString().value(), "float64");
}

TEST_F(SessionTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(session_.Execute("SET @undeclared = 1").ok());
  EXPECT_FALSE(session_.Execute("SELECT * FROM missing_table").ok());
  EXPECT_FALSE(session_.Execute("SELECT Bogus.Func(1)").ok());
  Run("DECLARE @a VARBINARY(100) = FloatArray.Vector_2(1, 2)");
  // Out-of-bounds item is a runtime error.
  EXPECT_FALSE(session_.Execute("SELECT FloatArray.Item_1(@a, 7)").ok());
}

TEST_F(SessionTest, TypeMismatchDetectedAtRuntime) {
  // Paper Sec. 3.5: passing a blob to the wrong schema's function fails.
  Run("DECLARE @a VARBINARY(100) = FloatArray.Vector_2(1, 2)");
  EXPECT_FALSE(session_.Execute("SELECT IntArray.Item_1(@a, 0)").ok());
  EXPECT_FALSE(
      session_.Execute("SELECT FloatArrayMax.Item_1(@a, 0)").ok());
}

TEST_F(SessionTest, GroupByInSql) {
  Run("CREATE TABLE g (id BIGINT, k BIGINT, v FLOAT)");
  Run("INSERT INTO g VALUES (1, 0, 1.0), (2, 1, 2.0), (3, 0, 3.0), "
      "(4, 1, 4.0)");
  auto results = Run("SELECT k, SUM(v) FROM g GROUP BY k");
  ASSERT_EQ(results[0].rows.size(), 2u);
  double total = 0;
  for (const auto& row : results[0].rows) {
    total += row[1].AsDouble().value();
  }
  EXPECT_EQ(total, 10.0);
}

TEST_F(SessionTest, TableValuedFunctionExplodesArray) {
  // Sec. 5.1: "Arrays can be converted to tables by various table-valued
  // functions, e.g. ToTable, MatrixToTable etc."
  Run("DECLARE @a VARBINARY(100) = FloatArray.Vector_4(10, 20, 30, 40)");
  auto rows = Run("SELECT ix, v FROM FloatArray.ToTable(@a)");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].rows.size(), 4u);
  EXPECT_EQ(rows[0].rows[2][0].AsInt().value(), 2);
  EXPECT_EQ(rows[0].rows[2][1].AsDouble().value(), 30.0);
}

TEST_F(SessionTest, MatrixToTableYieldsTwoIndexColumns) {
  Run("DECLARE @m VARBINARY(100) = FloatArray.Matrix_2(1, 2, 3, 4)");
  auto rows = Run("SELECT ix, iy, v FROM FloatArray.MatrixToTable(@m)");
  ASSERT_EQ(rows[0].rows.size(), 4u);
  // Column-major: second row is (1, 0, 2.0).
  EXPECT_EQ(rows[0].rows[1][0].AsInt().value(), 1);
  EXPECT_EQ(rows[0].rows[1][1].AsInt().value(), 0);
  EXPECT_EQ(rows[0].rows[1][2].AsDouble().value(), 2.0);
}

TEST_F(SessionTest, TvfWithAggregatesAndWhere) {
  Run("DECLARE @a VARBINARY(100) = FloatArray.Vector_5(1, 2, 3, 4, 5)");
  auto sum = Run("SELECT SUM(v) FROM FloatArray.ToTable(@a) WHERE ix >= 2");
  EXPECT_EQ(sum[0].ScalarResult().value().AsDouble().value(), 12.0);
  auto count = Run("SELECT COUNT(*) FROM FloatArray.ToTable(@a)");
  EXPECT_EQ(count[0].ScalarResult().value().AsInt().value(), 5);
}

TEST_F(SessionTest, TvfRoundTripThroughConcat) {
  // Explode an array to rows and reassemble it with the Concat aggregate.
  Run("DECLARE @a VARBINARY(100) = FloatArray.Vector_3(7, 8, 9)");
  Run("DECLARE @dims VARBINARY(100) = IntArray.Vector_1(3)");
  Run("DECLARE @back VARBINARY(MAX)");
  Run("SELECT @back = FloatArrayMax.Concat(@dims, ix, v) "
      "FROM FloatArray.ToTable(@a)");
  OwnedArray back = VarArray("back");
  EXPECT_EQ(back.dims(), (Dims{3}));
  EXPECT_EQ(back.ref().GetDouble(2).value(), 9.0);
}

TEST_F(SessionTest, TvfErrors) {
  Run("DECLARE @a VARBINARY(100) = FloatArray.Vector_3(1, 2, 3)");
  // Wrong rank for MatrixToTable.
  EXPECT_FALSE(
      session_.Execute("SELECT v FROM FloatArray.MatrixToTable(@a)").ok());
  // Wrong schema.
  EXPECT_FALSE(
      session_.Execute("SELECT v FROM IntArray.ToTable(@a)").ok());
  // Unknown TVF.
  EXPECT_FALSE(
      session_.Execute("SELECT v FROM FloatArray.NoSuchTvf(@a)").ok());
  // Wrong arity.
  EXPECT_FALSE(
      session_.Execute("SELECT v FROM FloatArray.ToTable(@a, 1)").ok());
}

TEST_F(SessionTest, InsertIntoSelectCopiesAndTransforms) {
  Run("CREATE TABLE src (id BIGINT, v FLOAT)");
  Run("INSERT INTO src VALUES (1, 1.5), (2, 2.5), (3, 3.5)");
  Run("CREATE TABLE dst (id BIGINT, doubled FLOAT)");
  Run("INSERT INTO dst SELECT id, v * 2 FROM src");
  auto rows = Run("SELECT doubled FROM dst ORDER BY 1");
  ASSERT_EQ(rows[0].rows.size(), 3u);
  EXPECT_EQ(rows[0].rows[0][0].AsDouble().value(), 3.0);
  EXPECT_EQ(rows[0].rows[2][0].AsDouble().value(), 7.0);
}

TEST_F(SessionTest, InsertIntoSelectBuildsVectorTable) {
  // The paper's own test setup, server-side: pack scalar columns into a
  // vector column with one INSERT ... SELECT.
  Run("CREATE TABLE scalars (id BIGINT, v1 FLOAT, v2 FLOAT)");
  Run("INSERT INTO scalars VALUES (1, 1.0, 2.0), (2, 3.0, 4.0)");
  Run("CREATE TABLE vectors (id BIGINT, v VARBINARY(64))");
  Run("INSERT INTO vectors SELECT id, FloatArray.Vector_2(v1, v2) "
      "FROM scalars");
  auto item =
      Run("SELECT SUM(FloatArray.Item_1(v, 1)) FROM vectors");
  EXPECT_EQ(item[0].ScalarResult().value().AsDouble().value(), 6.0);
}

TEST_F(SessionTest, InsertIntoSelectValidation) {
  Run("CREATE TABLE a2 (id BIGINT, v FLOAT)");
  Run("CREATE TABLE b2 (id BIGINT)");
  Run("INSERT INTO a2 VALUES (1, 1.0)");
  // Arity mismatch.
  EXPECT_FALSE(session_.Execute("INSERT INTO b2 SELECT id, v FROM a2").ok());
  // Duplicate keys from the source.
  Run("INSERT INTO b2 SELECT id FROM a2");
  EXPECT_FALSE(session_.Execute("INSERT INTO b2 SELECT id FROM a2").ok());
}

TEST_F(SessionTest, DeleteFromWithWhere) {
  Run("CREATE TABLE d (id BIGINT, v FLOAT)");
  Run("INSERT INTO d VALUES (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)");
  Run("DELETE FROM d WHERE v > 2.5");
  auto rows = Run("SELECT COUNT(*), SUM(v) FROM d");
  EXPECT_EQ(rows[0].rows[0][0].AsInt().value(), 2);
  EXPECT_EQ(rows[0].rows[0][1].AsDouble().value(), 3.0);

  // Unconditional delete empties the table; reinsertion works.
  Run("DELETE FROM d");
  auto empty = Run("SELECT COUNT(*) FROM d");
  EXPECT_EQ(empty[0].ScalarResult().value().AsInt().value(), 0);
  Run("INSERT INTO d VALUES (1, 9.0)");
  auto one = Run("SELECT COUNT(*) FROM d");
  EXPECT_EQ(one[0].ScalarResult().value().AsInt().value(), 1);
  EXPECT_FALSE(session_.Execute("DELETE FROM missing").ok());
}

TEST_F(SessionTest, OrderByOrdinalAndLabel) {
  Run("CREATE TABLE o (id BIGINT, v FLOAT)");
  Run("INSERT INTO o VALUES (1, 3.0), (2, 1.0), (3, 2.0)");
  auto asc = Run("SELECT id, v AS val FROM o ORDER BY 2");
  ASSERT_EQ(asc[0].rows.size(), 3u);
  EXPECT_EQ(asc[0].rows[0][0].AsInt().value(), 2);
  EXPECT_EQ(asc[0].rows[2][0].AsInt().value(), 1);

  auto desc = Run("SELECT id, v AS val FROM o ORDER BY val DESC");
  EXPECT_EQ(desc[0].rows[0][0].AsInt().value(), 1);

  auto grouped = Run(
      "SELECT id % 2, COUNT(*) FROM o GROUP BY id % 2 ORDER BY 1 DESC");
  EXPECT_EQ(grouped[0].rows[0][0].AsInt().value(), 1);
  EXPECT_EQ(grouped[0].rows[1][0].AsInt().value(), 0);

  EXPECT_FALSE(session_.Execute("SELECT id FROM o ORDER BY 5").ok());
  EXPECT_FALSE(session_.Execute("SELECT id FROM o ORDER BY nope").ok());
}

TEST_F(SessionTest, OrderByMultipleKeys) {
  Run("CREATE TABLE m (id BIGINT, a BIGINT, b FLOAT)");
  Run("INSERT INTO m VALUES (1, 1, 2.0), (2, 0, 9.0), (3, 1, 1.0), "
      "(4, 0, 3.0)");
  auto rows = Run("SELECT a, b, id FROM m ORDER BY 1, 2 DESC");
  // a ascending, then b descending within each a.
  EXPECT_EQ(rows[0].rows[0][2].AsInt().value(), 2);  // (0, 9)
  EXPECT_EQ(rows[0].rows[1][2].AsInt().value(), 4);  // (0, 3)
  EXPECT_EQ(rows[0].rows[2][2].AsInt().value(), 1);  // (1, 2)
  EXPECT_EQ(rows[0].rows[3][2].AsInt().value(), 3);  // (1, 1)
}

TEST_F(SessionTest, MathUdfsFromSql) {
  Run("DECLARE @v VARBINARY(MAX) = "
      "FloatArrayMax.From(FloatArray.Vector_4(1, 2, 3, 4))");
  Run("DECLARE @f VARBINARY(MAX)");
  Run("SET @f = FloatArrayMax.FFTForward(@v)");
  OwnedArray f = VarArray("f");
  EXPECT_EQ(f.dtype(), DType::kComplex128);
  // DC bin = sum of inputs.
  EXPECT_NEAR(f.ref().GetComplex(0).value().real(), 10.0, 1e-9);
}

TEST_F(SessionTest, StorageCorruptionSurfacesAsSessionError) {
  // A rotted page under a query must come back to the client as a
  // kCorruption status naming the page — never a crash or a wrong answer.
  Run("CREATE TABLE rot (id BIGINT, v FLOAT)");
  for (int k = 0; k < 40; ++k) {
    Run("INSERT INTO rot VALUES (" + std::to_string(k) + ", 1.5)");
  }
  storage::Table* table = db_.GetTable("rot").value();
  storage::PageId leaf = table->clustered_index().first_leaf_page();
  db_.ClearCache();
  ASSERT_TRUE(db_.disk()->CorruptPageByte(leaf, 200).ok());

  auto r = session_.Execute("SELECT SUM(v) FROM rot");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find(std::to_string(leaf)),
            std::string::npos)
      << r.status().ToString();

  // Repairing the disk restores service in the same session.
  db_.ClearCache();
  ASSERT_TRUE(db_.disk()->CorruptPageByte(leaf, 200).ok());  // XOR undoes it
  auto ok = session_.Execute("SELECT SUM(v) FROM rot");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value()[0].ScalarResult().value().AsDouble().value(), 60.0);
}

}  // namespace
}  // namespace sqlarray::sql
