// Tests for the storage engine: simulated disk, buffer pool, row codec,
// blob store, B+-tree, tables.
#include <gtest/gtest.h>

#include <map>

#include "common/bytes.h"
#include "common/rng.h"
#include "storage/blob.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "storage/verify.h"

namespace sqlarray::storage {
namespace {

TEST(SimulatedDisk, AllocateReadWrite) {
  SimulatedDisk disk;
  PageId id = disk.AllocatePage();
  EXPECT_NE(id, kNullPage);
  Page page;
  page.data()[0] = 42;
  ASSERT_TRUE(disk.WritePage(id, page).ok());
  Page back;
  ASSERT_TRUE(disk.ReadPage(id, &back).ok());
  EXPECT_EQ(back.data()[0], 42);
}

TEST(SimulatedDisk, RejectsUnallocatedAccess) {
  SimulatedDisk disk;
  Page page;
  EXPECT_FALSE(disk.ReadPage(kNullPage, &page).ok());
  EXPECT_FALSE(disk.ReadPage(5, &page).ok());
  EXPECT_FALSE(disk.WritePage(9, page).ok());
}

TEST(SimulatedDisk, SequentialVsRandomAccounting) {
  SimulatedDisk disk;
  std::vector<PageId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(disk.AllocatePage());
  disk.ResetStats();
  Page page;
  for (PageId id : ids) ASSERT_TRUE(disk.ReadPage(id, &page).ok());
  // First read is random (no predecessor), the rest sequential.
  EXPECT_EQ(disk.stats().sequential_reads, 9);
  EXPECT_EQ(disk.stats().random_reads, 1);

  disk.ResetStats();
  ASSERT_TRUE(disk.ReadPage(ids[5], &page).ok());
  ASSERT_TRUE(disk.ReadPage(ids[2], &page).ok());
  EXPECT_EQ(disk.stats().random_reads, 2);
}

TEST(SimulatedDisk, VirtualTimeMatchesThroughputModel) {
  DiskConfig config;
  config.sequential_mb_per_s = 1150.0;
  config.random_latency_us = 0.0;  // also caps the distance-based seek
  SimulatedDisk disk(config);
  std::vector<PageId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(disk.AllocatePage());
  disk.ResetStats();
  Page page;
  for (PageId id : ids) ASSERT_TRUE(disk.ReadPage(id, &page).ok());
  double expect = 1000.0 * kPageSize / (1150.0 * 1e6);
  EXPECT_NEAR(disk.stats().virtual_read_seconds, expect, expect * 1e-9);
}

TEST(BufferPool, CachesAndEvicts) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 2);  // two-page cache
  PageId a = pool.AllocatePage(), b = pool.AllocatePage(),
         c = pool.AllocatePage();
  Page page;
  ASSERT_TRUE(pool.WritePage(a, page).ok());
  ASSERT_TRUE(pool.WritePage(b, page).ok());
  ASSERT_TRUE(pool.WritePage(c, page).ok());
  disk.ResetStats();

  ASSERT_TRUE(pool.GetPage(a).ok());  // miss
  ASSERT_TRUE(pool.GetPage(a).ok());  // hit
  ASSERT_TRUE(pool.GetPage(b).ok());  // miss
  ASSERT_TRUE(pool.GetPage(c).ok());  // miss, evicts a (LRU)
  ASSERT_TRUE(pool.GetPage(a).ok());  // miss again
  storage::BufferPool::Stats stats = pool.Snapshot();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 4);
  EXPECT_EQ(stats.evictions, 2);
  EXPECT_EQ(disk.stats().pages_read, 4);
}

TEST(BufferPool, ClearCacheForcesColdReads) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 16);
  PageId a = pool.AllocatePage();
  Page page;
  ASSERT_TRUE(pool.WritePage(a, page).ok());
  ASSERT_TRUE(pool.GetPage(a).ok());
  disk.ResetStats();
  pool.ClearCache();
  ASSERT_TRUE(pool.GetPage(a).ok());
  EXPECT_EQ(disk.stats().pages_read, 1);
}

TEST(BufferPool, PinnedPageSurvivesEvictionPressure) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 2);  // two-page cache
  PageId a = pool.AllocatePage(), b = pool.AllocatePage(),
         c = pool.AllocatePage();
  Page page;
  page.data()[0] = 0xAB;
  ASSERT_TRUE(pool.WritePage(a, page).ok());
  ASSERT_TRUE(pool.WritePage(b, page).ok());
  ASSERT_TRUE(pool.WritePage(c, page).ok());
  pool.ClearCache();

  // Hold a pin on `a` while faulting in enough pages to evict it twice over.
  PinnedPage pinned = pool.GetPage(a).value();
  EXPECT_EQ(pool.Snapshot().pinned_pages, 1);
  const Page* raw = pinned.get();
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(pool.GetPage(b).ok());
    ASSERT_TRUE(pool.GetPage(c).ok());
  }
  // The pinned frame was never evicted or moved: the pointer still reads the
  // same bytes, and re-fetching `a` is a cache hit, not a disk read.
  EXPECT_EQ(raw, pinned.get());
  EXPECT_EQ(pinned->data()[0], 0xAB);
  disk.ResetStats();
  ASSERT_TRUE(pool.GetPage(a).ok());
  EXPECT_EQ(disk.stats().pages_read, 0);

  pinned.Release();
  EXPECT_EQ(pool.Snapshot().pinned_pages, 0);

  // ClearCache also spares pinned frames.
  PinnedPage again = pool.GetPage(b).value();
  pool.ClearCache();
  EXPECT_EQ(again->data()[0], 0xAB);
  EXPECT_EQ(again.id(), b);
}

TEST(Schema, RowSizeAndOffsets) {
  Schema s = Schema::Create({{"id", ColumnType::kInt64, 0},
                             {"v1", ColumnType::kFloat64, 0},
                             {"small", ColumnType::kBinary, 16},
                             {"big", ColumnType::kVarBinaryMax, 0}})
                 .value();
  EXPECT_EQ(s.row_size(), 8 + 8 + (2 + 16) + 12);
  EXPECT_EQ(s.column_offset(1), 8);
  EXPECT_EQ(s.ColumnIndex("small").value(), 2);
  EXPECT_FALSE(s.ColumnIndex("missing").ok());
}

TEST(Schema, RequiresBigIntKey) {
  EXPECT_FALSE(Schema::Create({{"id", ColumnType::kInt32, 0}}).ok());
  EXPECT_FALSE(Schema::Create({}).ok());
}

TEST(Schema, RowCodecRoundTrip) {
  Schema s = Schema::Create({{"id", ColumnType::kInt64, 0},
                             {"a", ColumnType::kInt32, 0},
                             {"b", ColumnType::kFloat32, 0},
                             {"c", ColumnType::kFloat64, 0},
                             {"d", ColumnType::kBinary, 8},
                             {"e", ColumnType::kVarBinaryMax, 0}})
                 .value();
  Row row{int64_t{42}, int32_t{-7}, 1.5f, 2.25,
          std::vector<uint8_t>{1, 2, 3}, BlobId{9, 1000}};
  std::vector<uint8_t> buf(s.row_size());
  ASSERT_TRUE(s.EncodeRow(row, buf.data()).ok());
  EXPECT_EQ(s.DecodeKey(buf.data()), 42);
  Row back = s.DecodeRow(buf.data()).value();
  EXPECT_EQ(std::get<int64_t>(back[0]), 42);
  EXPECT_EQ(std::get<int32_t>(back[1]), -7);
  EXPECT_EQ(std::get<float>(back[2]), 1.5f);
  EXPECT_EQ(std::get<double>(back[3]), 2.25);
  EXPECT_EQ(std::get<std::vector<uint8_t>>(back[4]),
            (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(std::get<BlobId>(back[5]), (BlobId{9, 1000}));
}

TEST(Schema, ValidatesRowShapeAndTypes) {
  Schema s = Schema::Create({{"id", ColumnType::kInt64, 0},
                             {"d", ColumnType::kBinary, 4}})
                 .value();
  EXPECT_FALSE(s.ValidateRow({int64_t{1}}).ok());  // arity
  EXPECT_FALSE(
      s.ValidateRow({int64_t{1}, int64_t{2}}).ok());  // wrong kind
  EXPECT_FALSE(
      s.ValidateRow({int64_t{1}, std::vector<uint8_t>(5)}).ok());  // too big
  EXPECT_TRUE(s.ValidateRow({int64_t{1}, std::vector<uint8_t>(4)}).ok());
}

TEST(BlobStore, RoundTripSizes) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 14);
  BlobStore store(&pool);
  Rng rng(3);
  for (int64_t size : {0, 1, 100, 8183, 8184, 8185, 100000, 3000000}) {
    std::vector<uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextU64());
    BlobId id = store.Write(bytes).value();
    EXPECT_EQ(id.size, size);
    std::vector<uint8_t> back = store.ReadAll(id).value();
    EXPECT_EQ(back, bytes) << "size " << size;
  }
}

TEST(BlobStream, PartialReadsMatchFull) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 14);
  BlobStore store(&pool);
  Rng rng(4);
  std::vector<uint8_t> bytes(50000);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextU64());
  BlobId id = store.Write(bytes).value();

  BlobStream stream = BlobStream::Open(&pool, id).value();
  for (auto [off, len] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 10}, {8180, 20}, {49990, 10}, {12345, 20000}, {0, 50000}}) {
    std::vector<uint8_t> buf(len);
    ASSERT_TRUE(stream.ReadAt(off, buf).ok());
    for (int64_t i = 0; i < len; ++i) {
      ASSERT_EQ(buf[i], bytes[off + i]) << "offset " << off + i;
    }
  }
  std::vector<uint8_t> past(10);
  EXPECT_FALSE(stream.ReadAt(49995, past).ok());
}

TEST(BlobStream, PartialReadTouchesFewPages) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 14);
  BlobStore store(&pool);
  std::vector<uint8_t> bytes(6 * 1000 * 1000);  // the paper's 6 MB blob
  BlobId id = store.Write(bytes).value();
  pool.ClearCache();
  disk.ResetStats();

  BlobStream stream = BlobStream::Open(&pool, id).value();
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(stream.ReadAt(3000000, buf).ok());
  // Root + one level-1 index + two data pages at most.
  EXPECT_LE(disk.stats().pages_read, 5);
}

TEST(BTree, InsertAscendingAndScan) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 14);
  BTree tree = BTree::Create(&pool, 16).value();
  const int64_t n = 5000;
  std::vector<uint8_t> row(16);
  for (int64_t k = 0; k < n; ++k) {
    EncodeLE<int64_t>(row.data(), k);
    EncodeLE<int64_t>(row.data() + 8, k * k);
    ASSERT_TRUE(tree.Insert(row).ok());
  }
  EXPECT_EQ(tree.row_count(), n);

  // Ascending bulk load fills pages densely: close to n / capacity pages.
  int64_t min_pages = (n + tree.leaf_capacity() - 1) / tree.leaf_capacity();
  EXPECT_LE(tree.leaf_page_count(), min_pages + 1);

  BTree::Cursor cursor = tree.ScanAll().value();
  int64_t expect = 0;
  while (cursor.valid()) {
    EXPECT_EQ(DecodeLE<int64_t>(cursor.row().data()), expect);
    EXPECT_EQ(DecodeLE<int64_t>(cursor.row().data() + 8), expect * expect);
    ++expect;
    ASSERT_TRUE(cursor.Next().ok());
  }
  EXPECT_EQ(expect, n);
}

TEST(BTree, RandomInsertMatchesModel) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 14);
  BTree tree = BTree::Create(&pool, 24).value();
  std::map<int64_t, int64_t> model;
  Rng rng(5);
  std::vector<uint8_t> row(24);
  for (int trial = 0; trial < 3000; ++trial) {
    int64_t key = rng.UniformInt(0, 999);
    EncodeLE<int64_t>(row.data(), key);
    EncodeLE<int64_t>(row.data() + 8, trial);
    Status st = tree.Insert(row);
    if (model.count(key)) {
      EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
    } else {
      ASSERT_TRUE(st.ok());
      model[key] = trial;
    }
  }
  EXPECT_EQ(tree.row_count(), static_cast<int64_t>(model.size()));

  // Every model key is found with the right payload; absent keys miss.
  std::vector<uint8_t> found;
  for (auto [key, payload] : model) {
    ASSERT_TRUE(tree.Lookup(key, &found).value());
    EXPECT_EQ(DecodeLE<int64_t>(found.data() + 8), payload);
  }
  EXPECT_FALSE(tree.Lookup(-5, &found).value());
  EXPECT_FALSE(tree.Lookup(1000, &found).value());

  // Scan yields keys in sorted order, matching the model exactly.
  BTree::Cursor cursor = tree.ScanAll().value();
  auto it = model.begin();
  while (cursor.valid()) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(DecodeLE<int64_t>(cursor.row().data()), it->first);
    ++it;
    ASSERT_TRUE(cursor.Next().ok());
  }
  EXPECT_EQ(it, model.end());
}

TEST(BTree, GrowsMultipleLevels) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 15);
  // Large rows -> few per leaf -> deep tree quickly.
  BTree tree = BTree::Create(&pool, 1000).value();
  std::vector<uint8_t> row(1000);
  for (int64_t k = 0; k < 8000; ++k) {
    EncodeLE<int64_t>(row.data(), k * 7919 % 100003);  // scattered keys
    ASSERT_TRUE(tree.Insert(row).ok());
  }
  EXPECT_GE(tree.height(), 3);
  std::vector<uint8_t> found;
  EXPECT_TRUE(tree.Lookup(7919 % 100003, &found).value());
}

TEST(BTree, Validation) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 64);
  EXPECT_FALSE(BTree::Create(&pool, 4).ok());     // smaller than a key
  EXPECT_FALSE(BTree::Create(&pool, 8000).ok());  // <2 rows per leaf
  BTree tree = BTree::Create(&pool, 16).value();
  std::vector<uint8_t> wrong(8);
  EXPECT_FALSE(tree.Insert(wrong).ok());
}

TEST(BTree, BulkLoadMatchesScanAndLookup) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 14);
  BTree tree = BTree::Create(&pool, 16).value();
  BTree::BulkLoader loader = tree.StartBulkLoad().value();
  const int64_t n = 20000;
  std::vector<uint8_t> row(16);
  for (int64_t k = 0; k < n; ++k) {
    EncodeLE<int64_t>(row.data(), k * 3);  // gaps between keys
    EncodeLE<int64_t>(row.data() + 8, k);
    ASSERT_TRUE(loader.Add(row).ok());
  }
  ASSERT_TRUE(loader.Finish().ok());
  EXPECT_EQ(tree.row_count(), n);

  // Dense leaves: page count near the minimum.
  int64_t min_pages = (n + tree.leaf_capacity() - 1) / tree.leaf_capacity();
  EXPECT_LE(tree.leaf_page_count(), min_pages + 1);

  BTree::Cursor cursor = tree.ScanAll().value();
  int64_t count = 0;
  while (cursor.valid()) {
    EXPECT_EQ(DecodeLE<int64_t>(cursor.row().data()), count * 3);
    ++count;
    ASSERT_TRUE(cursor.Next().ok());
  }
  EXPECT_EQ(count, n);

  std::vector<uint8_t> found;
  EXPECT_TRUE(tree.Lookup(300, &found).value());
  EXPECT_EQ(DecodeLE<int64_t>(found.data() + 8), 100);
  EXPECT_FALSE(tree.Lookup(301, &found).value());
  EXPECT_FALSE(tree.Lookup(-1, &found).value());
  EXPECT_TRUE(tree.Lookup((n - 1) * 3, &found).value());
}

TEST(BTree, BulkLoadValidation) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 12);
  BTree tree = BTree::Create(&pool, 16).value();
  std::vector<uint8_t> row(16);
  {
    BTree::BulkLoader loader = tree.StartBulkLoad().value();
    EncodeLE<int64_t>(row.data(), 5);
    ASSERT_TRUE(loader.Add(row).ok());
    EXPECT_FALSE(loader.Add(row).ok());  // not strictly ascending
    ASSERT_TRUE(loader.Finish().ok());
  }
  EXPECT_FALSE(tree.StartBulkLoad().ok());  // non-empty now
}

TEST(BTree, BulkLoadExactLeafBoundary) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 12);
  BTree tree = BTree::Create(&pool, 16).value();
  BTree::BulkLoader loader = tree.StartBulkLoad().value();
  std::vector<uint8_t> row(16);
  const int64_t n = tree.leaf_capacity() * 3;  // exactly three full leaves
  for (int64_t k = 0; k < n; ++k) {
    EncodeLE<int64_t>(row.data(), k);
    ASSERT_TRUE(loader.Add(row).ok());
  }
  ASSERT_TRUE(loader.Finish().ok());
  BTree::Cursor cursor = tree.ScanAll().value();
  int64_t count = 0;
  while (cursor.valid()) {
    ++count;
    ASSERT_TRUE(cursor.Next().ok());
  }
  EXPECT_EQ(count, n);
}

TEST(Table, BulkLoadWithBlobColumn) {
  Database db;
  Schema schema = Schema::Create({{"id", ColumnType::kInt64, 0},
                                  {"v", ColumnType::kVarBinaryMax, 0}})
                      .value();
  Table* table = db.CreateTable("bulk", std::move(schema)).value();
  Table::BulkInserter inserter = table->StartBulkLoad().value();
  for (int64_t k = 0; k < 100; ++k) {
    std::vector<uint8_t> blob(20000, static_cast<uint8_t>(k));
    ASSERT_TRUE(inserter.Add({k, std::move(blob)}).ok());
  }
  ASSERT_TRUE(inserter.Finish().ok());
  EXPECT_EQ(table->row_count(), 100);
  Row row = table->Lookup(37).value().value();
  std::vector<uint8_t> back =
      table->ReadBlob(std::get<BlobId>(row[1])).value();
  EXPECT_EQ(back.size(), 20000u);
  EXPECT_EQ(back[5], 37);
}

TEST(FaultInjection, ReadErrorSurfacesFromEveryLayer) {
  // One injected disk fault must propagate cleanly (no crash, no silent
  // wrong answer) through the pool, the B-tree, and the blob stream.
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 12);
  // This test asserts raw single-read propagation; disable the pool's
  // read-retry so the one-shot fault is not healed transparently.
  pool.set_max_read_attempts(1);

  // Buffer pool: failed reads are not cached.
  PageId p = pool.AllocatePage();
  Page page;
  ASSERT_TRUE(pool.WritePage(p, page).ok());
  pool.ClearCache();
  disk.InjectReadFaultAfter(0);
  EXPECT_EQ(pool.GetPage(p).status().code(), StatusCode::kCorruption);
  // Retry succeeds (fault is one-shot and the bad entry was not cached).
  EXPECT_TRUE(pool.GetPage(p).ok());

  // B-tree scan: fault mid-scan propagates out of Next()/LoadLeaf.
  BTree tree = BTree::Create(&pool, 16).value();
  {
    BTree::BulkLoader loader = tree.StartBulkLoad().value();
    std::vector<uint8_t> row(16);
    for (int64_t k = 0; k < 5000; ++k) {
      EncodeLE<int64_t>(row.data(), k);
      ASSERT_TRUE(loader.Add(row).ok());
    }
    ASSERT_TRUE(loader.Finish().ok());
  }
  pool.ClearCache();
  disk.InjectReadFaultAfter(3);
  auto cursor_or = tree.ScanAll();
  Status scan_status = cursor_or.status();
  if (cursor_or.ok()) {
    BTree::Cursor cursor = std::move(cursor_or).value();
    while (cursor.valid()) {
      scan_status = cursor.Next();
      if (!scan_status.ok()) break;
    }
  }
  EXPECT_EQ(scan_status.code(), StatusCode::kCorruption);

  // Blob stream: fault inside a partial read propagates.
  BlobStore store(&pool);
  std::vector<uint8_t> blob(100000, 0x5A);
  BlobId id = store.Write(blob).value();
  pool.ClearCache();
  disk.InjectReadFaultAfter(2);
  EXPECT_FALSE(store.ReadAll(id).ok());
  // And the store recovers afterwards.
  EXPECT_TRUE(store.ReadAll(id).ok());
}

TEST(FaultInjection, TableLookupPropagatesFault) {
  Database db;
  Schema schema = Schema::Create({{"id", ColumnType::kInt64, 0},
                                  {"v", ColumnType::kFloat64, 0}})
                      .value();
  Table* table = db.CreateTable("t", std::move(schema)).value();
  for (int64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(table->Insert({k, 1.0}).ok());
  }
  db.ClearCache();
  db.buffer_pool()->set_max_read_attempts(1);  // assert raw propagation
  db.disk()->InjectReadFaultAfter(0);
  EXPECT_FALSE(table->Lookup(1500).ok());
  EXPECT_TRUE(table->Lookup(1500).ok());  // one-shot
}

TEST(PageChecksums, DetectMediaCorruption) {
  SimulatedDisk disk;
  PageId id = disk.AllocatePage();
  Page page;
  page.data()[100] = 42;
  ASSERT_TRUE(disk.WritePage(id, page).ok());

  Page out;
  ASSERT_TRUE(disk.ReadPage(id, &out).ok());
  ASSERT_TRUE(disk.CorruptPageByte(id, 100).ok());
  EXPECT_EQ(disk.ReadPage(id, &out).code(), StatusCode::kCorruption);

  // Rewriting the page refreshes the checksum.
  ASSERT_TRUE(disk.WritePage(id, page).ok());
  EXPECT_TRUE(disk.ReadPage(id, &out).ok());

  // Verification can be turned off (PAGE_VERIFY NONE).
  ASSERT_TRUE(disk.CorruptPageByte(id, 5).ok());
  disk.set_checksums_enabled(false);
  EXPECT_TRUE(disk.ReadPage(id, &out).ok());
  EXPECT_FALSE(disk.CorruptPageByte(id, 99999).ok());
}

TEST(PageChecksums, CorruptBlobSurfacesThroughTheStack) {
  Database db;
  Schema schema = Schema::Create({{"id", ColumnType::kInt64, 0},
                                  {"v", ColumnType::kVarBinaryMax, 0}})
                      .value();
  Table* table = db.CreateTable("c", std::move(schema)).value();
  std::vector<uint8_t> blob(50000, 0x77);
  ASSERT_TRUE(table->Insert({int64_t{1}, blob}).ok());
  Row row = table->Lookup(1).value().value();
  BlobId id = std::get<BlobId>(row[1]);

  // Corrupt one data page of the blob; the streamed read must notice.
  db.ClearCache();
  ASSERT_TRUE(db.disk()->CorruptPageByte(id.root - 3, 4000).ok());
  EXPECT_EQ(table->ReadBlob(id).status().code(), StatusCode::kCorruption);
}

TEST(DistanceSeekModel, NearHopsCheaperThanFarHops) {
  DiskConfig config;
  SimulatedDisk disk(config);
  std::vector<PageId> ids;
  for (int i = 0; i < 20000; ++i) ids.push_back(disk.AllocatePage());
  Page page;

  // Near hop: +2 pages (non-sequential but close).
  ASSERT_TRUE(disk.ReadPage(ids[0], &page).ok());
  disk.ResetStats();
  ASSERT_TRUE(disk.ReadPage(ids[0], &page).ok());
  ASSERT_TRUE(disk.ReadPage(ids[2], &page).ok());
  double near = disk.stats().virtual_read_seconds;

  disk.ResetStats();
  ASSERT_TRUE(disk.ReadPage(ids[0], &page).ok());
  ASSERT_TRUE(disk.ReadPage(ids[19000], &page).ok());
  double far = disk.stats().virtual_read_seconds;
  EXPECT_LT(near, far);
  // The far hop is capped at the full random latency.
  EXPECT_LE(far, near + config.random_latency_us * 1e-6);
}

TEST(BTree, DeleteRemovesAndAllowsReinsert) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 13);
  BTree tree = BTree::Create(&pool, 16).value();
  std::vector<uint8_t> row(16);
  for (int64_t k = 0; k < 2000; ++k) {
    EncodeLE<int64_t>(row.data(), k);
    EncodeLE<int64_t>(row.data() + 8, k * 10);
    ASSERT_TRUE(tree.Insert(row).ok());
  }
  // Delete every third key.
  for (int64_t k = 0; k < 2000; k += 3) {
    EXPECT_TRUE(tree.Delete(k).value());
  }
  EXPECT_FALSE(tree.Delete(0).value());  // already gone
  EXPECT_FALSE(tree.Delete(99999).value());
  EXPECT_EQ(tree.row_count(), 2000 - (2000 + 2) / 3);

  std::vector<uint8_t> found;
  EXPECT_FALSE(tree.Lookup(3, &found).value());
  EXPECT_TRUE(tree.Lookup(4, &found).value());
  EXPECT_EQ(DecodeLE<int64_t>(found.data() + 8), 40);

  // Scan sees exactly the survivors, in order.
  BTree::Cursor cursor = tree.ScanAll().value();
  int64_t prev = -1, count = 0;
  while (cursor.valid()) {
    int64_t k = DecodeLE<int64_t>(cursor.row().data());
    EXPECT_GT(k, prev);
    EXPECT_NE(k % 3, 0);
    prev = k;
    ++count;
    ASSERT_TRUE(cursor.Next().ok());
  }
  EXPECT_EQ(count, tree.row_count());

  // Deleted keys can be reinserted.
  EncodeLE<int64_t>(row.data(), 3);
  EXPECT_TRUE(tree.Insert(row).ok());
  EXPECT_TRUE(tree.Lookup(3, &found).value());
}

TEST(Table, InsertLookupWithBlobSpill) {
  Database db;
  Schema schema = Schema::Create({{"id", ColumnType::kInt64, 0},
                                  {"v", ColumnType::kVarBinaryMax, 0}})
                      .value();
  Table* table = db.CreateTable("t", std::move(schema)).value();
  std::vector<uint8_t> big(100000, 0xCD);
  ASSERT_TRUE(table->Insert({int64_t{1}, big}).ok());

  Row row = table->Lookup(1).value().value();
  BlobId id = std::get<BlobId>(row[1]);
  EXPECT_EQ(id.size, 100000);
  std::vector<uint8_t> back = table->ReadBlob(id).value();
  EXPECT_EQ(back, big);
  EXPECT_FALSE(table->Lookup(2).value().has_value());
}

TEST(Table, DuplicateKeyRejected) {
  Database db;
  Schema schema =
      Schema::Create({{"id", ColumnType::kInt64, 0}}).value();
  Table* table = db.CreateTable("t", std::move(schema)).value();
  ASSERT_TRUE(table->Insert({int64_t{1}}).ok());
  EXPECT_EQ(table->Insert({int64_t{1}}).code(), StatusCode::kAlreadyExists);
}

TEST(Database, CatalogBasics) {
  Database db;
  Schema schema =
      Schema::Create({{"id", ColumnType::kInt64, 0}}).value();
  ASSERT_TRUE(db.CreateTable("a", schema).ok());
  EXPECT_FALSE(db.CreateTable("a", schema).ok());
  EXPECT_TRUE(db.GetTable("a").ok());
  EXPECT_FALSE(db.GetTable("b").ok());
}

TEST(Table, DeleteReclaimsBlobPages) {
  Database db;
  Schema schema = Schema::Create({{"id", ColumnType::kInt64, 0},
                                  {"v", ColumnType::kVarBinaryMax, 0}})
                      .value();
  Table* table = db.CreateTable("t", std::move(schema)).value();

  // Each blob spans several out-of-page blob pages.
  constexpr int64_t kRows = 20;
  constexpr size_t kBlobBytes = 20000;
  for (int64_t k = 0; k < kRows; ++k) {
    std::vector<uint8_t> blob(kBlobBytes, static_cast<uint8_t>(k));
    ASSERT_TRUE(table->Insert({k, std::move(blob)}).ok());
  }
  int64_t pages_after_load = db.disk()->page_count();
  ASSERT_TRUE(db.blob_store()->free_pages().empty());

  // Deleting the rows must put every referenced blob page on the free-list
  // (the old inline Delete leaked them permanently).
  for (int64_t k = 0; k < kRows; ++k) {
    ASSERT_TRUE(table->Delete(k).value());
  }
  size_t freed = db.blob_store()->free_pages().size();
  EXPECT_GE(freed, static_cast<size_t>(kRows * 2));  // >= 2 pages per blob

  // Page accounting: reinserting blobs of the same total size must reuse
  // the reclaimed pages, not grow the disk.
  for (int64_t k = 100; k < 100 + kRows; ++k) {
    std::vector<uint8_t> blob(kBlobBytes, static_cast<uint8_t>(k));
    ASSERT_TRUE(table->Insert({k, std::move(blob)}).ok());
  }
  EXPECT_EQ(db.disk()->page_count(), pages_after_load);
  EXPECT_LT(db.blob_store()->free_pages().size(), freed);

  // And the reused blobs read back intact.
  Row row = table->Lookup(105).value().value();
  std::vector<uint8_t> back = table->ReadBlob(std::get<BlobId>(row[1])).value();
  ASSERT_EQ(back.size(), kBlobBytes);
  EXPECT_EQ(back[123], 105);
}

TEST(Table, DeleteWithoutBlobColumnsSkipsBlobBookkeeping) {
  Database db;
  Schema schema = Schema::Create({{"id", ColumnType::kInt64, 0},
                                  {"v", ColumnType::kFloat64, 0}})
                      .value();
  Table* table = db.CreateTable("t", std::move(schema)).value();
  ASSERT_TRUE(table->Insert({int64_t{1}, 2.5}).ok());
  EXPECT_TRUE(table->Delete(1).value());
  EXPECT_FALSE(table->Delete(1).value());
  EXPECT_TRUE(db.blob_store()->free_pages().empty());
}

TEST(Table, AttachReopensFromRootPage) {
  Database db;
  Schema schema = Schema::Create({{"id", ColumnType::kInt64, 0},
                                  {"v", ColumnType::kInt64, 0}})
                      .value();
  Table* table = db.CreateTable("orig", schema).value();
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(table->Insert({k, k * 2}).ok());
  }
  PageId root = table->clustered_index().root_page();

  // Attach walks the tree from the root and rebuilds the metadata —
  // recovery's path from a logged catalog entry back to a live table.
  std::unique_ptr<Table> attached =
      Table::Attach("again", schema, root, db.buffer_pool(), db.blob_store())
          .value();
  EXPECT_EQ(attached->row_count(), 500);
  Row row = attached->Lookup(321).value().value();
  EXPECT_EQ(std::get<int64_t>(row[1]), 642);
  EXPECT_FALSE(attached->Lookup(500).value().has_value());
  EXPECT_TRUE(VerifyTable(*attached, db.buffer_pool()).issues.empty());
}

}  // namespace
}  // namespace sqlarray::storage
