// Tests for the N-body use case: snapshots, FOF, CIC + power spectrum,
// merger linking, bucketed storage, light cones, correlations (Sec. 2.3).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sci/nbody/bucket.h"
#include "sci/nbody/cic.h"
#include "sci/nbody/correlation.h"
#include "sci/nbody/cosmology.h"
#include "sci/nbody/fof.h"
#include "sci/nbody/lightcone.h"
#include "sci/nbody/merger.h"
#include "sci/nbody/snapshot.h"

namespace sqlarray::nbody {
namespace {

SnapshotConfig SmallConfig() {
  SnapshotConfig config;
  config.num_halos = 6;
  config.particles_per_halo = 150;
  config.background_particles = 500;
  return config;
}

TEST(Snapshot, GeneratorBasics) {
  SnapshotConfig config = SmallConfig();
  Snapshot snap = MakeInitialSnapshot(config, 1);
  EXPECT_EQ(snap.particles.size(),
            static_cast<size_t>(config.num_halos *
                                    config.particles_per_halo +
                                config.background_particles));
  std::set<int64_t> ids;
  for (const Particle& p : snap.particles) {
    ids.insert(p.id);
    EXPECT_GE(p.position.x, 0);
    EXPECT_LT(p.position.x, config.box);
    EXPECT_GE(p.position.z, 0);
    EXPECT_LT(p.position.z, config.box);
  }
  EXPECT_EQ(ids.size(), snap.particles.size());  // unique labels
}

TEST(Snapshot, EvolutionPreservesIds) {
  SnapshotConfig config = SmallConfig();
  Snapshot s0 = MakeInitialSnapshot(config, 2);
  Snapshot s1 = EvolveSnapshot(s0, config, 3);
  EXPECT_EQ(s1.step, 1);
  ASSERT_EQ(s1.particles.size(), s0.particles.size());
  for (size_t i = 0; i < s0.particles.size(); ++i) {
    EXPECT_EQ(s1.particles[i].id, s0.particles[i].id);
    EXPECT_GE(s1.particles[i].position.x, 0);
    EXPECT_LT(s1.particles[i].position.x, config.box);
  }
}

TEST(Fof, GridMatchesBruteForce) {
  SnapshotConfig config = SmallConfig();
  config.background_particles = 300;
  Snapshot snap = MakeInitialSnapshot(config, 4);
  const double link = 0.8;
  FofResult fast = FriendsOfFriends(snap, link, 10).value();
  FofResult brute = FriendsOfFriendsBrute(snap, link, 10).value();
  ASSERT_EQ(fast.halos.size(), brute.halos.size());
  for (size_t h = 0; h < fast.halos.size(); ++h) {
    std::set<int64_t> a(fast.halos[h].begin(), fast.halos[h].end());
    std::set<int64_t> b(brute.halos[h].begin(), brute.halos[h].end());
    EXPECT_EQ(a, b) << "halo " << h;
  }
}

TEST(Fof, FindsTheSeededHalos) {
  SnapshotConfig config = SmallConfig();
  Snapshot snap = MakeInitialSnapshot(config, 5);
  FofResult fof = FriendsOfFriends(snap, 0.8, 50).value();
  // The engineered halos 0/1 start 6 sigma apart and may link; all the
  // others are separated, so expect at least num_halos - 1 groups.
  EXPECT_GE(static_cast<int>(fof.halos.size()), config.num_halos - 1);
  // Halos are sorted by size, largest first.
  for (size_t h = 1; h < fof.halos.size(); ++h) {
    EXPECT_LE(fof.halos[h].size(), fof.halos[h - 1].size());
  }
  // halo_of is consistent with the member lists.
  for (size_t h = 0; h < fof.halos.size(); ++h) {
    for (int64_t i : fof.halos[h]) {
      EXPECT_EQ(fof.halo_of[i], static_cast<int64_t>(h));
    }
  }
}

TEST(Fof, LinkingLengthControlsMerging) {
  SnapshotConfig config = SmallConfig();
  Snapshot snap = MakeInitialSnapshot(config, 6);
  // Without a size floor, a looser linking length only coarsens the
  // partition (union-find merging is monotone in the radius).
  FofResult tight = FriendsOfFriends(snap, 0.3, 1).value();
  FofResult loose = FriendsOfFriends(snap, 3.0, 1).value();
  EXPECT_LT(loose.halos.size(), tight.halos.size());
  EXPECT_FALSE(FriendsOfFriends(snap, -1, 20).ok());
}

TEST(Cic, DensityContrastAveragesToZero) {
  SnapshotConfig config = SmallConfig();
  Snapshot snap = MakeInitialSnapshot(config, 7);
  const int64_t m = 16;
  std::vector<double> delta = CicDensity(snap, m).value();
  double sum = 0;
  for (double d : delta) {
    sum += d;
    EXPECT_GE(d, -1.0 - 1e-9);  // density cannot be negative
  }
  EXPECT_NEAR(sum / static_cast<double>(m * m * m), 0.0, 1e-10);
}

TEST(Cic, SingleParticleSplitsTrilinearly) {
  Snapshot snap;
  snap.box = 16.0;
  Particle p;
  p.id = 0;
  p.position = {3.5, 3.5, 3.5};  // exactly at the center of cell (3,3,3)
  snap.particles.push_back(p);
  const int64_t m = 16;
  std::vector<double> delta = CicDensity(snap, m).value();
  // Mean density = 1 / 4096 per cell; at the cell center all mass lands in
  // one cell: delta = count/mean - 1 = 4096 - 1 there.
  EXPECT_NEAR(delta[3 + m * (3 + m * 3)], 4095.0, 1e-6);
}

TEST(Cic, ClusteredFieldHasMorePowerThanUniform) {
  SnapshotConfig clustered = SmallConfig();
  Snapshot snap = MakeInitialSnapshot(clustered, 8);
  const int64_t m = 32;
  std::vector<double> delta = CicDensity(snap, m).value();
  auto bins = PowerSpectrum(delta, m, clustered.box, 8).value();

  SnapshotConfig uniform = clustered;
  uniform.num_halos = 0;
  uniform.background_particles = static_cast<int>(snap.particles.size());
  Snapshot usnap = MakeInitialSnapshot(uniform, 9);
  std::vector<double> udelta = CicDensity(usnap, m).value();
  auto ubins = PowerSpectrum(udelta, m, uniform.box, 8).value();

  // At large scales (low k) the clustered field has far more power.
  double p_clustered = 0, p_uniform = 0;
  for (int b = 0; b < 3; ++b) {
    p_clustered += bins[b].power;
    p_uniform += ubins[b].power;
  }
  EXPECT_GT(p_clustered, 5 * p_uniform);
}

TEST(Power, ParsevalConsistency) {
  // Sum over all modes of P(k) equals the field variance (Parseval).
  SnapshotConfig config = SmallConfig();
  Snapshot snap = MakeInitialSnapshot(config, 10);
  const int64_t m = 16;
  std::vector<double> delta = CicDensity(snap, m).value();
  auto bins = PowerSpectrum(delta, m, config.box, 64).value();
  double mode_sum = 0;
  for (const PowerBin& b : bins) {
    mode_sum += b.power * static_cast<double>(b.modes);
  }
  double variance = 0;
  for (double d : delta) variance += d * d;
  variance /= static_cast<double>(m * m * m);
  // The k >= k_max corner modes are excluded from the bins, so the binned
  // sum is slightly below the full variance.
  EXPECT_LE(mode_sum, variance * 1.0001);
  EXPECT_GT(mode_sum, 0.4 * variance);
}

TEST(Merger, TracksHalosAcrossSteps) {
  SnapshotConfig config = SmallConfig();
  Snapshot s0 = MakeInitialSnapshot(config, 11);
  Snapshot s1 = EvolveSnapshot(s0, config, 12);
  FofResult f0 = FriendsOfFriends(s0, 0.8, 50).value();
  FofResult f1 = FriendsOfFriends(s1, 0.8, 50).value();
  auto links = LinkHalos(s0, f0, s1, f1, 0.25).value();
  // Nearly every halo should find a descendant after one small step.
  EXPECT_GE(links.size(), f0.halos.size() - 1);
  for (const MergerLink& link : links) {
    EXPECT_GE(link.fraction, 0.25);
    EXPECT_GT(link.shared_particles, 0);
    EXPECT_GE(link.halo_next, 0);
    EXPECT_LT(link.halo_next, static_cast<int64_t>(f1.halos.size()));
  }
}

TEST(Merger, EngineeredMergerIsDetected) {
  SnapshotConfig config = SmallConfig();
  Snapshot snap = MakeInitialSnapshot(config, 13);
  // The engineered pair starts 6 sigma apart approaching at 2 x 100 units
  // per time unit (2 units per dt = 0.01 step), so they overlap within a
  // few steps. Walk the snapshots until the merger shows up in the links.
  FofResult first = FriendsOfFriends(snap, 0.8, 50).value();
  Snapshot current = snap;
  int mergers = 0;
  for (int s = 0; s < 8 && mergers == 0; ++s) {
    current = EvolveSnapshot(current, config, 100 + s);
    FofResult now = FriendsOfFriends(current, 0.8, 50).value();
    auto links = LinkHalos(snap, first, current, now, 0.2).value();
    // A merger: two earlier halos pointing at the same later halo.
    std::map<int64_t, int> indegree;
    for (const MergerLink& link : links) indegree[link.halo_next]++;
    for (auto& [halo, count] : indegree) {
      if (count >= 2) ++mergers;
    }
  }
  EXPECT_GE(mergers, 1);
}

TEST(Bucket, BucketedVsPerPointLayout) {
  SnapshotConfig config = SmallConfig();
  Snapshot snap = MakeInitialSnapshot(config, 14);
  storage::Database db;
  storage::Table* bucketed = LoadBucketed(snap, &db, "buckets", 4).value();
  storage::Table* perpoint = LoadPerPoint(snap, &db, "points").value();

  // The paper's motivation: orders of magnitude fewer rows.
  EXPECT_EQ(perpoint->row_count(),
            static_cast<int64_t>(snap.particles.size()));
  EXPECT_LE(bucketed->row_count(), 4 * 4 * 4);
  EXPECT_LT(bucketed->row_count(), perpoint->row_count() / 10);
}

TEST(Bucket, LookupFindsParticleViaArrayAccess) {
  SnapshotConfig config = SmallConfig();
  Snapshot snap = MakeInitialSnapshot(config, 15);
  storage::Database db;
  storage::Table* table = LoadBucketed(snap, &db, "buckets", 4).value();
  for (size_t i = 0; i < snap.particles.size(); i += 97) {
    const Particle& p = snap.particles[i];
    spatial::Vec3 got =
        LookupBucketedParticle(table, snap, 4, p.id, p.position).value();
    EXPECT_EQ(got.x, p.position.x);
    EXPECT_EQ(got.y, p.position.y);
    EXPECT_EQ(got.z, p.position.z);
  }
}

TEST(Lightcone, SelectsConeAndShells) {
  SnapshotConfig config = SmallConfig();
  std::vector<Snapshot> snaps{MakeInitialSnapshot(config, 16)};
  snaps.push_back(EvolveSnapshot(snaps[0], config, 17));
  snaps.push_back(EvolveSnapshot(snaps[1], config, 18));

  LightconeConfig cone;
  cone.observer = {-40, 50, 50};
  cone.direction = {1, 0, 0};
  cone.half_angle_deg = 25;
  cone.r0 = 40;
  cone.shell_depth = 35;
  auto points = BuildLightcone(snaps, cone).value();
  ASSERT_GT(points.size(), 0u);

  const spatial::Vec3 axis = cone.direction.Normalized();
  for (const LightconePoint& p : points) {
    // Inside the angular cone.
    spatial::Vec3 d = p.position - cone.observer;
    double cosang = d.Dot(axis) / d.Norm();
    EXPECT_GE(cosang, std::cos(25.5 * M_PI / 180));
    // In the shell assigned to its snapshot (later steps nearer).
    size_t shell = snaps.size() - 1 - static_cast<size_t>(p.snapshot_step);
    EXPECT_GE(p.distance, cone.r0 + shell * cone.shell_depth - 1e-9);
    EXPECT_LE(p.distance, cone.r0 + (shell + 1) * cone.shell_depth + 1e-9);
    // Doppler shift is radial velocity over c.
    EXPECT_NEAR(p.doppler_z, p.radial_velocity / cone.speed_of_light,
                1e-12);
  }
}

TEST(Correlation, ClusteredExceedsUniformAtSmallR) {
  SnapshotConfig config = SmallConfig();
  Snapshot clustered = MakeInitialSnapshot(config, 19);
  auto xi = TwoPointCorrelation(clustered, 10.0, 10).value();

  SnapshotConfig uconfig = config;
  uconfig.num_halos = 0;
  uconfig.background_particles =
      static_cast<int>(clustered.particles.size());
  Snapshot uniform = MakeInitialSnapshot(uconfig, 20);
  auto uxi = TwoPointCorrelation(uniform, 10.0, 10).value();

  // Strong clustering at small separations; none for the uniform field.
  EXPECT_GT(xi[1].xi, 5.0);
  EXPECT_NEAR(uxi[1].xi, 0.0, 0.5);
  // xi decays with distance for the clustered set.
  EXPECT_GT(xi[1].xi, xi[8].xi);
}

TEST(Correlation, ThreePointClusteredExceedsUniform) {
  SnapshotConfig config = SmallConfig();
  config.box = 25.0;                // dense enough for non-zero RRR
  config.particles_per_halo = 80;  // keep triangle counting fast
  config.background_particles = 400;
  Snapshot clustered = MakeInitialSnapshot(config, 23);
  auto zeta = ThreePointEquilateral(clustered, 4.0, 4).value();

  SnapshotConfig uconfig = config;
  uconfig.num_halos = 0;
  uconfig.background_particles =
      static_cast<int>(clustered.particles.size());
  Snapshot uniform = MakeInitialSnapshot(uconfig, 24);
  auto uzeta = ThreePointEquilateral(uniform, 4.0, 4).value();

  // Halos produce a large excess of equilateral triangles; a uniform set
  // stays near the random expectation wherever counts exist.
  int64_t ddd_clustered = 0, ddd_uniform = 0;
  for (int b = 0; b < 4; ++b) {
    ddd_clustered += zeta[b].triplets;
    ddd_uniform += uzeta[b].triplets;
  }
  EXPECT_GT(ddd_clustered, 20 * std::max<int64_t>(1, ddd_uniform));
  EXPECT_GT(zeta[3].zeta, 3.0);
  EXPECT_NEAR(uzeta[3].zeta, 0.0, 1.5);
  EXPECT_FALSE(ThreePointEquilateral(clustered, 60.0, 4).ok());
  EXPECT_FALSE(ThreePointEquilateral(clustered, 4.0, 0).ok());
}

TEST(Cosmology, ComovingDistanceKnownValues) {
  // Flat LCDM (70, 0.3, 0.7): standard textbook values.
  Cosmology cosmo;
  EXPECT_EQ(ComovingDistance(cosmo, 0.0).value(), 0.0);
  // D_C(z=0.5) ~ 1888 Mpc, D_C(z=1) ~ 3303 Mpc for these parameters.
  EXPECT_NEAR(ComovingDistance(cosmo, 0.5).value(), 1888.0, 10.0);
  EXPECT_NEAR(ComovingDistance(cosmo, 1.0).value(), 3303.0, 15.0);
  // Monotone increasing.
  EXPECT_LT(ComovingDistance(cosmo, 1.0).value(),
            ComovingDistance(cosmo, 2.0).value());
  EXPECT_FALSE(ComovingDistance(cosmo, -0.1).ok());
}

TEST(Cosmology, RedshiftDistanceInverse) {
  Cosmology cosmo;
  for (double z : {0.1, 0.5, 1.0, 3.0}) {
    double d = ComovingDistance(cosmo, z).value();
    double back = RedshiftAtComovingDistance(cosmo, d).value();
    EXPECT_NEAR(back, z, 1e-6) << "z=" << z;
  }
  EXPECT_EQ(RedshiftAtComovingDistance(cosmo, 0.0).value(), 0.0);
}

TEST(Cosmology, ObservedRedshiftAndShellVolume) {
  // Doppler composition: (1+z_cos)(1+v/c) - 1.
  EXPECT_NEAR(ObservedRedshift(0.0, 300.0), 300.0 / 299792.458, 1e-12);
  double z_obs = ObservedRedshift(1.0, 299.792458);  // v/c = 1e-3
  EXPECT_NEAR(z_obs, 1.0 + 2e-3 + 1e-3 * 0, 1.1e-3);

  Cosmology cosmo;
  double inner = ComovingShellVolume(cosmo, 0.0, 0.5).value();
  double outer = ComovingShellVolume(cosmo, 0.5, 1.0).value();
  EXPECT_GT(inner, 0);
  EXPECT_GT(outer, inner);  // shells grow with distance
  EXPECT_FALSE(ComovingShellVolume(cosmo, 1.0, 0.5).ok());
}

TEST(Correlation, Validation) {
  SnapshotConfig config = SmallConfig();
  Snapshot snap = MakeInitialSnapshot(config, 21);
  EXPECT_FALSE(TwoPointCorrelation(snap, -1, 4).ok());
  EXPECT_FALSE(TwoPointCorrelation(snap, 60.0, 4).ok());  // > box/2
  EXPECT_FALSE(TwoPointCorrelation(snap, 5.0, 0).ok());
}

}  // namespace
}  // namespace sqlarray::nbody
