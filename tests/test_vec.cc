// Tests for the columnar expression pipeline: kernel-level SIMD-vs-scalar
// bit equivalence, null/NaN/selection edge cases, and differential
// execution — the vectorized path must produce BITWISE-identical results to
// the row path at every batch size and worker count, in both the
// native-arch and forced-scalar builds (the ctest vec suites run this
// binary in both trees).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/column.h"
#include "core/vec_kernels.h"
#include "engine/exec.h"
#include "engine/query_context.h"
#include "gov/gov.h"
#include "obs/metrics.h"
#include "udfs/register.h"

namespace sqlarray::engine {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Deterministic 64-bit generator (splitmix64) so every run sees the same
// edge-value mix.
uint64_t Mix(uint64_t* s) {
  uint64_t z = (*s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// Kernel-level tests
// ---------------------------------------------------------------------------

/// Builds an edge-heavy double buffer: NaN, +/-inf, +/-0, denormals, and
/// pseudorandom values.
std::vector<double> EdgeDoubles(int32_t n, uint64_t seed) {
  std::vector<double> v(n);
  uint64_t s = seed;
  for (int32_t i = 0; i < n; ++i) {
    switch (i % 11) {
      case 0: v[i] = kNaN; break;
      case 1: v[i] = kInf; break;
      case 2: v[i] = -kInf; break;
      case 3: v[i] = 0.0; break;
      case 4: v[i] = -0.0; break;
      case 5: v[i] = std::numeric_limits<double>::denorm_min(); break;
      default:
        v[i] = static_cast<double>(static_cast<int64_t>(Mix(&s))) * 1e-6;
    }
  }
  return v;
}

std::vector<int64_t> EdgeInts(int32_t n, uint64_t seed) {
  std::vector<int64_t> v(n);
  uint64_t s = seed;
  for (int32_t i = 0; i < n; ++i) {
    switch (i % 7) {
      case 0: v[i] = std::numeric_limits<int64_t>::max(); break;
      case 1: v[i] = std::numeric_limits<int64_t>::min(); break;
      case 2: v[i] = (int64_t{1} << 53) + 1; break;
      case 3: v[i] = 0; break;
      default: v[i] = static_cast<int64_t>(Mix(&s));
    }
  }
  return v;
}

/// Sizes straddling SIMD widths and the cancellation block.
const int32_t kKernelSizes[] = {1, 3, 4, 5, 31, 32, 33, 127, 128, 1000, 9000};

TEST(VecKernels, SimdMatchesScalarBitwiseF64) {
  for (int32_t n : kKernelSizes) {
    std::vector<double> a = EdgeDoubles(n, 1), b = EdgeDoubles(n, 2);
    std::vector<double> simd(n), scalar(n);
    std::vector<int64_t> simd_i(n), scalar_i(n);
    using FnF = Status (*)(const double*, const double*, int32_t, double*);
    const FnF fns[] = {col::AddF64, col::SubF64, col::MulF64};
    for (FnF fn : fns) {
      col::SetForceScalar(false);
      ASSERT_TRUE(fn(a.data(), b.data(), n, simd.data()).ok());
      col::SetForceScalar(true);
      ASSERT_TRUE(fn(a.data(), b.data(), n, scalar.data()).ok());
      col::SetForceScalar(false);
      EXPECT_EQ(std::memcmp(simd.data(), scalar.data(), n * sizeof(double)), 0)
          << "n=" << n;
    }
    const col::CmpOp cmps[] = {col::CmpOp::kEq, col::CmpOp::kNe,
                               col::CmpOp::kLt, col::CmpOp::kLe,
                               col::CmpOp::kGt, col::CmpOp::kGe};
    for (col::CmpOp op : cmps) {
      col::SetForceScalar(false);
      ASSERT_TRUE(col::CmpF64(op, a.data(), b.data(), n, simd_i.data()).ok());
      col::SetForceScalar(true);
      ASSERT_TRUE(col::CmpF64(op, a.data(), b.data(), n, scalar_i.data()).ok());
      col::SetForceScalar(false);
      EXPECT_EQ(
          std::memcmp(simd_i.data(), scalar_i.data(), n * sizeof(int64_t)), 0)
          << "n=" << n << " op=" << static_cast<int>(op);
    }
    col::SetForceScalar(false);
    ASSERT_TRUE(col::NegF64(a.data(), n, simd.data()).ok());
    col::SetForceScalar(true);
    ASSERT_TRUE(col::NegF64(a.data(), n, scalar.data()).ok());
    col::SetForceScalar(false);
    EXPECT_EQ(std::memcmp(simd.data(), scalar.data(), n * sizeof(double)), 0);
  }
}

TEST(VecKernels, SimdMatchesScalarBitwiseI64) {
  for (int32_t n : kKernelSizes) {
    std::vector<int64_t> a = EdgeInts(n, 3), b = EdgeInts(n, 4);
    std::vector<int64_t> simd(n), scalar(n);
    using FnI = Status (*)(const int64_t*, const int64_t*, int32_t, int64_t*);
    const FnI fns[] = {col::AddI64, col::SubI64, col::MulI64, col::AndI64,
                       col::OrI64};
    for (FnI fn : fns) {
      col::SetForceScalar(false);
      ASSERT_TRUE(fn(a.data(), b.data(), n, simd.data()).ok());
      col::SetForceScalar(true);
      ASSERT_TRUE(fn(a.data(), b.data(), n, scalar.data()).ok());
      col::SetForceScalar(false);
      EXPECT_EQ(
          std::memcmp(simd.data(), scalar.data(), n * sizeof(int64_t)), 0)
          << "n=" << n;
    }
    col::SetForceScalar(false);
    ASSERT_TRUE(col::NegI64(a.data(), n, simd.data()).ok());
    ASSERT_TRUE(col::NotI64(a.data(), n, scalar.data()).ok());
    col::SetForceScalar(true);
    std::vector<int64_t> neg2(n), not2(n);
    ASSERT_TRUE(col::NegI64(a.data(), n, neg2.data()).ok());
    ASSERT_TRUE(col::NotI64(a.data(), n, not2.data()).ok());
    col::SetForceScalar(false);
    EXPECT_EQ(std::memcmp(simd.data(), neg2.data(), n * sizeof(int64_t)), 0);
    EXPECT_EQ(std::memcmp(scalar.data(), not2.data(), n * sizeof(int64_t)), 0);
  }
}

TEST(VecKernels, CmpNaNSemantics) {
  const double a[] = {kNaN, 1.0, kNaN};
  const double b[] = {1.0, kNaN, kNaN};
  int64_t out[3];
  ASSERT_TRUE(col::CmpF64(col::CmpOp::kEq, a, b, 3, out).ok());
  EXPECT_EQ(out[0], 0); EXPECT_EQ(out[1], 0); EXPECT_EQ(out[2], 0);
  ASSERT_TRUE(col::CmpF64(col::CmpOp::kNe, a, b, 3, out).ok());
  EXPECT_EQ(out[0], 1); EXPECT_EQ(out[1], 1); EXPECT_EQ(out[2], 1);
  ASSERT_TRUE(col::CmpF64(col::CmpOp::kLt, a, b, 3, out).ok());
  EXPECT_EQ(out[0], 0); EXPECT_EQ(out[1], 0); EXPECT_EQ(out[2], 0);
  ASSERT_TRUE(col::CmpF64(col::CmpOp::kGe, a, b, 3, out).ok());
  EXPECT_EQ(out[0], 0);
}

TEST(VecKernels, BuildSelAndCountValidBoundaries) {
  for (int32_t n : {1, 3, 63, 64, 65, 127, 128, 1000}) {
    col::ColumnVec c;
    int64_t* v = c.MutableI64(n);
    for (int32_t i = 0; i < n; ++i) v[i] = i % 3 == 0 ? 1 : 0;
    // All valid: sel = multiples of 3.
    std::vector<int32_t> sel;
    col::BuildSel(c.i64(), c.valid_words(), n, &sel);
    EXPECT_EQ(static_cast<int32_t>(sel.size()), (n + 2) / 3) << "n=" << n;
    for (int32_t idx : sel) EXPECT_EQ(idx % 3, 0);
    EXPECT_EQ(col::CountValid(c.valid_words(), n), n);

    // Ragged validity: only even rows valid — odd truthy rows drop out.
    uint64_t* words = c.MutableValidity();
    for (int32_t i = 1; i < n; i += 2) {
      words[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }
    EXPECT_EQ(col::CountValid(c.valid_words(), n), (n + 1) / 2);
    sel.clear();
    col::BuildSel(c.i64(), c.valid_words(), n, &sel);
    for (int32_t idx : sel) {
      EXPECT_EQ(idx % 2, 0);
      EXPECT_EQ(idx % 3, 0);
    }

    // All null: nothing selected.
    c.SetAllNull();
    EXPECT_EQ(col::CountValid(c.valid_words(), n), 0);
    sel.clear();
    col::BuildSel(c.i64(), c.valid_words(), n, &sel);
    EXPECT_TRUE(sel.empty());
  }
}

TEST(VecKernels, GatherStridesSelectionAndWidening) {
  // Rows of 20 bytes: int32 at 0, int64 at 4, float at 12, padding at 16.
  struct Row { int32_t i32; int64_t i64; float f32; };
  const int32_t n = 57;
  std::vector<uint8_t> rows(n * 20);
  for (int32_t i = 0; i < n; ++i) {
    int32_t a = i % 2 == 0 ? -i - 1 : i;  // negatives: sign extension
    int64_t b = (int64_t{1} << 53) + i;
    float c = 0.1f * static_cast<float>(i);
    std::memcpy(rows.data() + i * 20 + 0, &a, 4);
    std::memcpy(rows.data() + i * 20 + 4, &b, 8);
    std::memcpy(rows.data() + i * 20 + 12, &c, 4);
  }
  std::vector<int64_t> oi(n);
  std::vector<double> of(n);
  // Dense (sel == nullptr).
  col::GatherI64FromI32(rows.data() + 0, 20, nullptr, n, oi.data());
  EXPECT_EQ(oi[2], -3);
  EXPECT_EQ(oi[3], 3);
  col::GatherI64FromI64(rows.data() + 4, 20, nullptr, n, oi.data());
  EXPECT_EQ(oi[5], (int64_t{1} << 53) + 5);
  col::GatherF64FromF32(rows.data() + 12, 20, nullptr, n, of.data());
  EXPECT_EQ(of[7], static_cast<double>(0.1f * 7.0f));  // exact widening
  // Selection vector, including repeats and reverse order.
  const std::vector<int32_t> sel = {n - 1, 0, 0, 13};
  col::GatherI64FromI32(rows.data() + 0, 20, sel.data(),
                        static_cast<int32_t>(sel.size()), oi.data());
  EXPECT_EQ(oi[1], -1);
  EXPECT_EQ(oi[2], -1);
  EXPECT_EQ(oi[3], 13);
}

TEST(VecKernels, FoldsMatchSerialAccumulation) {
  for (bool force : {false, true}) {
    col::SetForceScalar(force);
    const int32_t n = 501;
    std::vector<double> d = EdgeDoubles(n, 9);
    // Reference: the row loop's serial chain.
    double sum = 0, mn = std::numeric_limits<double>::infinity(),
           mx = -std::numeric_limits<double>::infinity();
    int64_t count = 0;
    for (int32_t i = 0; i < n; ++i) {
      count++;
      sum += d[i];
      mn = std::min(mn, d[i]);
      mx = std::max(mx, d[i]);
    }
    col::VecAggState st;
    st.mn = std::numeric_limits<double>::infinity();
    st.mx = -std::numeric_limits<double>::infinity();
    ASSERT_TRUE(col::FoldF64(d.data(), nullptr, n, &st).ok());
    EXPECT_EQ(st.count, count);
    // Bitwise comparison — NaN sums must match NaN sums.
    EXPECT_EQ(std::memcmp(&st.sum, &sum, 8), 0);
    EXPECT_EQ(std::memcmp(&st.mn, &mn, 8), 0);
    EXPECT_EQ(std::memcmp(&st.mx, &mx, 8), 0);
    EXPECT_FALSE(st.int_only);

    // Int fold with a ragged validity mask.
    std::vector<int64_t> iv = EdgeInts(n, 10);
    col::ColumnVec c;
    int64_t* p = c.MutableI64(n);
    std::memcpy(p, iv.data(), n * 8);
    uint64_t* words = c.MutableValidity();
    for (int32_t i = 0; i < n; i += 5) {
      words[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }
    int64_t isum = 0, icount = 0;
    double dsum = 0, dmn = std::numeric_limits<double>::infinity(),
           dmx = -std::numeric_limits<double>::infinity();
    for (int32_t i = 0; i < n; ++i) {
      if (i % 5 == 0) continue;
      isum = static_cast<int64_t>(static_cast<uint64_t>(isum) +
                                  static_cast<uint64_t>(iv[i]));
      icount++;
      const double x = static_cast<double>(iv[i]);
      dsum += x;
      dmn = std::min(dmn, x);
      dmx = std::max(dmx, x);
    }
    col::VecAggState ist;
    ist.mn = std::numeric_limits<double>::infinity();
    ist.mx = -std::numeric_limits<double>::infinity();
    ASSERT_TRUE(col::FoldI64(c.i64(), c.valid_words(), n, &ist).ok());
    EXPECT_EQ(ist.count, icount);
    EXPECT_EQ(ist.isum, isum);
    EXPECT_EQ(std::memcmp(&ist.sum, &dsum, 8), 0);
    EXPECT_EQ(ist.mn, dmn);
    EXPECT_EQ(ist.mx, dmx);
    EXPECT_TRUE(ist.int_only);
  }
  col::SetForceScalar(false);
}

TEST(VecKernels, DivModZeroMaskingAndMessages) {
  const int32_t n = 4;
  const int64_t a[] = {10, 7, 9, 8};
  const int64_t zero_at_1[] = {2, 0, 3, 4};
  int64_t out[n];
  // Valid zero divisor raises with the row path's exact message.
  Status st = col::DivI64(a, zero_at_1, nullptr, n, out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "division by zero");
  st = col::ModI64(a, zero_at_1, nullptr, n, out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "modulo by zero");
  // The same zero masked invalid does not raise; invalid lanes hold 0.
  col::ColumnVec mask;
  mask.MutableI64(n);
  uint64_t* words = mask.MutableValidity();
  words[0] &= ~uint64_t{2};  // lane 1 null
  ASSERT_TRUE(col::DivI64(a, zero_at_1, mask.valid_words(), n, out).ok());
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 3);
  ASSERT_TRUE(col::ModI64(a, zero_at_1, mask.valid_words(), n, out).ok());
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[3], 0);
  // Float: -0.0 divisor also raises (b == 0.0 compares true).
  const double fa[] = {1.0, 2.0};
  const double fb[] = {1.0, -0.0};
  double fout[2];
  st = col::DivF64(fa, fb, nullptr, 2, fout);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "division by zero");
}

TEST(VecKernels, CancellationProbesInsideKernels) {
  auto cancel = std::make_shared<gov::CancelSource>();
  gov::QueryLimits limits;
  limits.cancel = cancel;
  gov::ScopedThreadLimits thread_limits(&limits);
  cancel->Cancel(gov::KillReason::kUser, "test");
  const int32_t n = col::kCancelBlock * 3;
  std::vector<int64_t> a(n, 1), b(n, 2), out(n);
  Status st = col::AddI64(a.data(), b.data(), n, out.data());
  EXPECT_FALSE(st.ok());
  std::vector<double> fa(n, 1.0), fout(n);
  st = col::NegF64(fa.data(), n, fout.data());
  EXPECT_FALSE(st.ok());
}

TEST(VecKernels, ZeroCopyViewsAliasWithoutCopying) {
  std::vector<int64_t> data = {5, -7, 11};
  col::ColumnVec c;
  c.ViewI64(data.data(), 3);
  EXPECT_TRUE(c.is_view());
  EXPECT_EQ(c.i64(), data.data());
  EXPECT_TRUE(c.all_valid());
  data[1] = 42;
  EXPECT_EQ(c.i64()[1], 42);
}

// ---------------------------------------------------------------------------
// Differential engine tests: vectorized vs row results must be bitwise
// identical across batch sizes, worker counts, and SIMD/scalar kernels.
// ---------------------------------------------------------------------------

class VecEngineTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 1000;  // not a multiple of any batch size

  VecEngineTest() : executor_(&db_, &registry_) {
    EXPECT_TRUE(udfs::RegisterAllUdfs(&registry_).ok());
  }
  ~VecEngineTest() override { col::SetForceScalar(false); }

  /// Full numeric dtype matrix with edge values: negative int32s, int64s
  /// past 2^53, NaN / +/-inf / -0.0 doubles and floats.
  storage::Table* MakeMixedTable(const std::string& name, int64_t rows) {
    storage::Schema schema =
        storage::Schema::Create({{"id", storage::ColumnType::kInt64, 0},
                                 {"a", storage::ColumnType::kInt32, 0},
                                 {"b", storage::ColumnType::kInt64, 0},
                                 {"x", storage::ColumnType::kFloat32, 0},
                                 {"y", storage::ColumnType::kFloat64, 0}})
            .value();
    storage::Table* t = db_.CreateTable(name, std::move(schema)).value();
    uint64_t s = 0xabcdef12345ull;
    for (int64_t i = 0; i < rows; ++i) {
      int32_t a = static_cast<int32_t>(Mix(&s) >> 33) - (1 << 29);
      int64_t b = static_cast<int64_t>(Mix(&s) >> 8);
      float x = static_cast<float>(static_cast<int32_t>(Mix(&s) >> 40)) / 64;
      double y = static_cast<double>(static_cast<int64_t>(Mix(&s))) * 1e-9;
      if (i % 97 == 0) y = kNaN;
      if (i % 89 == 0) y = i % 2 == 0 ? kInf : -kInf;
      if (i % 83 == 0) y = -0.0;
      if (i % 79 == 0) b = (int64_t{1} << 53) + i;  // lossy as double
      if (i % 61 == 0) x = std::numeric_limits<float>::quiet_NaN();
      EXPECT_TRUE(t->Insert({i, a, b, x, y}).ok());
    }
    return t;
  }

  /// Bitwise result fingerprint: kind tag + exact payload bytes per value.
  static std::string Fingerprint(const ResultSet& rs) {
    std::string out;
    for (const auto& row : rs.rows) {
      for (const Value& v : row) {
        out.push_back(static_cast<char>(v.kind()));
        if (v.kind() == Value::Kind::kInt64) {
          const int64_t x = v.AsInt().value();
          out.append(reinterpret_cast<const char*>(&x), 8);
        } else if (v.kind() == Value::Kind::kFloat64) {
          const double d = v.AsDouble().value();
          out.append(reinterpret_cast<const char*>(&d), 8);
        }
      }
      out.push_back('|');
    }
    return out;
  }

  struct Outcome {
    bool ok = false;
    std::string payload;  // fingerprint, or "CODE: message" on error
    int64_t rows_scanned = 0;
    int64_t rows_kept = 0;
  };

  Outcome Run(const Query& q, std::map<std::string, Value>* vars,
              bool vectorized, int batch, int workers, bool force_scalar) {
    col::SetForceScalar(force_scalar);
    executor_.set_vectorized(vectorized);
    executor_.set_batch_rows(batch);
    executor_.set_scan_workers(workers);
    Result<ResultSet> r = executor_.Execute(q, vars);
    col::SetForceScalar(false);
    Outcome o;
    o.ok = r.ok();
    if (!r.ok()) {
      o.payload = r.status().ToString();
      return o;
    }
    o.payload = Fingerprint(r.value());
    o.rows_scanned = r.value().stats.rows_scanned;
    o.rows_kept = r.value().stats.rows_kept;
    return o;
  }

  /// Asserts every (batch, workers, scalar) configuration of the vectorized
  /// path reproduces the row-at-a-time baseline exactly — results bitwise,
  /// stats, and failure outcomes alike.
  void ExpectAllConfigsMatchRowBaseline(const Query& q,
                                        std::map<std::string, Value>* vars) {
    const Outcome base = Run(q, vars, /*vectorized=*/false, /*batch=*/1,
                             /*workers=*/1, /*force_scalar=*/true);
    const int batches[] = {1, 3, 1024, static_cast<int>(kRows)};
    const int workers[] = {1, 2, 8};
    for (int b : batches) {
      for (int w : workers) {
        for (bool scalar : {false, true}) {
          const Outcome got = Run(q, vars, true, b, w, scalar);
          EXPECT_EQ(got.ok, base.ok)
              << "batch=" << b << " workers=" << w << " scalar=" << scalar;
          if (base.ok) {
            EXPECT_EQ(got.payload, base.payload)
                << "batch=" << b << " workers=" << w << " scalar=" << scalar;
            EXPECT_EQ(got.rows_scanned, base.rows_scanned);
            EXPECT_EQ(got.rows_kept, base.rows_kept);
          } else {
            // Error-row freedom: batched evaluation may surface a different
            // row's error, but the code and message here carry no row
            // detail, so the rendering matches exactly.
            EXPECT_EQ(got.payload, base.payload)
                << "batch=" << b << " workers=" << w;
          }
        }
      }
    }
  }

  static SelectItem Item(ExprPtr e, SelectItem::AggKind agg,
                         const std::string& label) {
    SelectItem it;
    it.expr = std::move(e);
    it.agg = agg;
    it.label = label;
    return it;
  }

  storage::Database db_;
  FunctionRegistry registry_;
  Executor executor_;
};

TEST_F(VecEngineTest, AggregatesAcrossDtypeMatrix) {
  storage::Table* t = MakeMixedTable("m1", kRows);
  Query q;
  q.table = t;
  q.items.push_back(Item(Col("a"), SelectItem::AggKind::kSum, "sa"));
  q.items.push_back(Item(Col("b"), SelectItem::AggKind::kSum, "sb"));
  q.items.push_back(Item(Col("x"), SelectItem::AggKind::kMin, "mx"));
  q.items.push_back(Item(Col("y"), SelectItem::AggKind::kMax, "my"));
  q.items.push_back(Item(Col("y"), SelectItem::AggKind::kAvg, "ay"));
  q.items.push_back(Item(Col("b"), SelectItem::AggKind::kCount, "cb"));
  q.items.push_back(Item(Star(), SelectItem::AggKind::kCount, "n"));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ExpectAllConfigsMatchRowBaseline(q, nullptr);
}

TEST_F(VecEngineTest, FusedPredicateAndCompoundExpressions) {
  storage::Table* t = MakeMixedTable("m2", kRows);
  Query q;
  q.table = t;
  // (y > 0.25 AND a % 3 = 1) OR b < 0 — mixed-lane fused predicate.
  q.where = Bin(
      BinaryOp::kOr,
      Bin(BinaryOp::kAnd,
          Bin(BinaryOp::kGt, Col("y"), Lit(Value::Double(0.25))),
          Bin(BinaryOp::kEq,
              Bin(BinaryOp::kMod, Col("a"), Lit(Value::Int(3))),
              Lit(Value::Int(1)))),
      Bin(BinaryOp::kLt, Col("b"), Lit(Value::Int(0))));
  q.items.push_back(Item(
      Bin(BinaryOp::kSub, Bin(BinaryOp::kMul, Col("y"), Col("x")), Col("a")),
      SelectItem::AggKind::kSum, "s"));
  q.items.push_back(Item(Un(UnaryOp::kNeg, Col("b")),
                         SelectItem::AggKind::kMin, "nb"));
  q.items.push_back(Item(Un(UnaryOp::kNot,
                            Bin(BinaryOp::kGt, Col("x"), Lit(Value::Double(0)))),
                         SelectItem::AggKind::kSum, "nn"));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ExpectAllConfigsMatchRowBaseline(q, nullptr);
}

TEST_F(VecEngineTest, ProjectionRowsAcrossDtypeMatrix) {
  storage::Table* t = MakeMixedTable("m3", kRows);
  Query q;
  q.table = t;
  q.where = Bin(BinaryOp::kNe,
                Bin(BinaryOp::kMod, Col("id"), Lit(Value::Int(7))),
                Lit(Value::Int(0)));
  q.items.push_back(Item(Col("id"), SelectItem::AggKind::kNone, "id"));
  q.items.push_back(Item(Bin(BinaryOp::kAdd, Col("a"), Col("b")),
                         SelectItem::AggKind::kNone, "ab"));
  q.items.push_back(
      Item(Bin(BinaryOp::kDiv, Col("y"), Lit(Value::Double(3.0))),
           SelectItem::AggKind::kNone, "y3"));
  q.items.push_back(
      Item(Bin(BinaryOp::kDiv, Col("b"),
               Bin(BinaryOp::kAdd,
                   Bin(BinaryOp::kMul, Col("id"), Lit(Value::Int(0))),
                   Lit(Value::Int(16)))),
           SelectItem::AggKind::kNone, "b16"));
  q.items.push_back(Item(Bin(BinaryOp::kLe, Col("x"), Col("y")),
                         SelectItem::AggKind::kNone, "cmp"));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ExpectAllConfigsMatchRowBaseline(q, nullptr);
}

TEST_F(VecEngineTest, NullLiteralsAndVariables) {
  storage::Table* t = MakeMixedTable("m4", kRows);
  std::map<std::string, Value> vars{{"n", Value::Null()},
                                    {"k", Value::Int(5)},
                                    {"f", Value::Double(0.5)}};
  // NULL-propagating projection and aggregate arguments: y + @n is NULL for
  // every row; SUM of it is NULL; COUNT of it is 0.
  Query q;
  q.table = t;
  q.items.push_back(Item(Bin(BinaryOp::kAdd, Col("y"), Var("n")),
                         SelectItem::AggKind::kSum, "sn"));
  q.items.push_back(Item(Bin(BinaryOp::kAdd, Col("y"), Var("n")),
                         SelectItem::AggKind::kCount, "cn"));
  q.items.push_back(Item(Bin(BinaryOp::kMul, Col("b"), Var("k")),
                         SelectItem::AggKind::kSum, "sk"));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ExpectAllConfigsMatchRowBaseline(q, &vars);

  // NULL WHERE: NULL is false — empty result, every row still scanned.
  Query q2;
  q2.table = t;
  q2.where = Bin(BinaryOp::kGt, Col("y"), Var("n"));
  q2.items.push_back(Item(Col("id"), SelectItem::AggKind::kNone, "id"));
  ASSERT_TRUE(executor_.Bind(&q2).ok());
  ExpectAllConfigsMatchRowBaseline(q2, &vars);

  // NULL literal arithmetic inside a projection.
  Query q3;
  q3.table = t;
  q3.items.push_back(Item(Bin(BinaryOp::kMul, Lit(Value::Null()), Col("y")),
                          SelectItem::AggKind::kNone, "ny"));
  q3.items.push_back(Item(Un(UnaryOp::kNeg, Lit(Value::Null())),
                          SelectItem::AggKind::kNone, "nneg"));
  q3.items.push_back(Item(Col("id"), SelectItem::AggKind::kNone, "id"));
  ASSERT_TRUE(executor_.Bind(&q3).ok());
  ExpectAllConfigsMatchRowBaseline(q3, &vars);
}

TEST_F(VecEngineTest, DivisionAndModuloByZeroOutcomes) {
  storage::Table* t = MakeMixedTable("m5", kRows);
  // id - id = 0 at every row: both paths must fail the query.
  Query q;
  q.table = t;
  q.items.push_back(
      Item(Bin(BinaryOp::kDiv, Col("b"),
               Bin(BinaryOp::kSub, Col("id"), Col("id"))),
           SelectItem::AggKind::kSum, "dz"));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ExpectAllConfigsMatchRowBaseline(q, nullptr);

  Query q2;
  q2.table = t;
  q2.items.push_back(
      Item(Bin(BinaryOp::kMod, Col("b"),
               Bin(BinaryOp::kSub, Col("id"), Col("id"))),
           SelectItem::AggKind::kSum, "mz"));
  ASSERT_TRUE(executor_.Bind(&q2).ok());
  ExpectAllConfigsMatchRowBaseline(q2, nullptr);

  // Float division by 0.0 (and by -0.0 via the y column's -0.0 rows).
  Query q3;
  q3.table = t;
  q3.items.push_back(Item(Bin(BinaryOp::kDiv, Col("y"), Lit(Value::Double(0))),
                          SelectItem::AggKind::kSum, "fz"));
  ASSERT_TRUE(executor_.Bind(&q3).ok());
  ExpectAllConfigsMatchRowBaseline(q3, nullptr);

  // NULL divisor never raises: NULL lanes mask the zero check.
  std::map<std::string, Value> vars{{"n", Value::Null()}};
  Query q4;
  q4.table = t;
  q4.items.push_back(Item(Bin(BinaryOp::kDiv, Col("b"), Var("n")),
                          SelectItem::AggKind::kSum, "dn"));
  ASSERT_TRUE(executor_.Bind(&q4).ok());
  ExpectAllConfigsMatchRowBaseline(q4, &vars);
}

TEST_F(VecEngineTest, SelectionVectorBoundaries) {
  storage::Table* t = MakeMixedTable("m6", kRows);
  // Constant-false predicate: empty selection in every batch.
  Query none;
  none.table = t;
  none.where = Bin(BinaryOp::kEq, Lit(Value::Int(1)), Lit(Value::Int(0)));
  none.items.push_back(Item(Col("y"), SelectItem::AggKind::kSum, "s"));
  ASSERT_TRUE(executor_.Bind(&none).ok());
  ExpectAllConfigsMatchRowBaseline(none, nullptr);

  // Constant-true predicate: all rows selected.
  Query all;
  all.table = t;
  all.where = Lit(Value::Int(1));
  all.items.push_back(Item(Col("y"), SelectItem::AggKind::kSum, "s"));
  all.items.push_back(Item(Col("id"), SelectItem::AggKind::kNone, "id"));
  ASSERT_TRUE(executor_.Bind(&all).ok());
  ExpectAllConfigsMatchRowBaseline(all, nullptr);

  // Ragged tail: only the final row survives.
  Query tail;
  tail.table = t;
  tail.where = Bin(BinaryOp::kGe, Col("id"), Lit(Value::Int(kRows - 1)));
  tail.items.push_back(Item(Col("b"), SelectItem::AggKind::kSum, "s"));
  ASSERT_TRUE(executor_.Bind(&tail).ok());
  ExpectAllConfigsMatchRowBaseline(tail, nullptr);

  // Single-row table: batch size far beyond the data.
  storage::Table* one = MakeMixedTable("m6_one", 1);
  Query single;
  single.table = one;
  single.items.push_back(Item(Col("y"), SelectItem::AggKind::kSum, "s"));
  ASSERT_TRUE(executor_.Bind(&single).ok());
  const Outcome base = Run(single, nullptr, false, 1, 1, true);
  const Outcome vec = Run(single, nullptr, true, 1024, 8, false);
  EXPECT_EQ(vec.payload, base.payload);
}

TEST_F(VecEngineTest, ZeroCopyEligibleSingleColumnTable) {
  // One int64 column, row_size == 8: dense loads alias the batch bytes.
  storage::Schema schema =
      storage::Schema::Create({{"k", storage::ColumnType::kInt64, 0}}).value();
  storage::Table* t = db_.CreateTable("zc", std::move(schema)).value();
  for (int64_t i = 0; i < 777; ++i) {
    ASSERT_TRUE(t->Insert({(int64_t{1} << 53) + i * 31}).ok());
  }
  Query q;
  q.table = t;
  q.where = Bin(BinaryOp::kNe,
                Bin(BinaryOp::kMod, Col("k"), Lit(Value::Int(5))),
                Lit(Value::Int(0)));
  q.items.push_back(Item(Col("k"), SelectItem::AggKind::kSum, "s"));
  q.items.push_back(Item(Col("k"), SelectItem::AggKind::kMax, "m"));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ExpectAllConfigsMatchRowBaseline(q, nullptr);
}

TEST_F(VecEngineTest, VecCountersAndProfileMode) {
  storage::Table* t = MakeMixedTable("m7", kRows);
  Query q;
  q.table = t;
  q.where = Bin(BinaryOp::kGt, Col("y"), Lit(Value::Double(0)));
  q.items.push_back(Item(Col("y"), SelectItem::AggKind::kSum, "s"));
  ASSERT_TRUE(executor_.Bind(&q).ok());

  executor_.set_vectorized(true);
  executor_.set_batch_rows(256);
  executor_.set_scan_workers(2);
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  QueryContext qctx;
  qctx.collect_profile = true;
  ASSERT_TRUE(executor_.Execute(q, nullptr, &qctx).ok());
  obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();

  // Fully vectorizable query: every scanned row went through the columnar
  // pipeline, none fell back.
  EXPECT_EQ(after.Delta(before, "vec.rows"), kRows);
  EXPECT_GT(after.Delta(before, "vec.batches"), 0);
  EXPECT_EQ(after.Delta(before, "vec.fallback_rows"), 0);

  // Profile: aggregate + filter read "vectorized"; the root carries a vec
  // summary child (its last child) with the batch/fallback counts.
  const obs::ProfileNode& root = qctx.profile.root();
  ASSERT_FALSE(root.children.empty());
  const obs::ProfileNode& agg = root.children[0];
  EXPECT_EQ(agg.op, "aggregate");
  EXPECT_EQ(agg.detail, "vectorized");
  ASSERT_FALSE(agg.children.empty());
  EXPECT_EQ(agg.children[0].op, "filter");
  EXPECT_EQ(agg.children[0].detail, "vectorized");
  const obs::ProfileNode& last = root.children.back();
  EXPECT_EQ(last.op, "vec");
  EXPECT_EQ(last.counters.rows_in, kRows);
  EXPECT_NE(last.detail.find("batches="), std::string::npos);
  EXPECT_NE(last.detail.find("fallback_rows=0"), std::string::npos);

  // Vectorization off: operators read "row" and no vec node appears.
  executor_.set_vectorized(false);
  QueryContext qctx2;
  qctx2.collect_profile = true;
  ASSERT_TRUE(executor_.Execute(q, nullptr, &qctx2).ok());
  const obs::ProfileNode& root2 = qctx2.profile.root();
  EXPECT_EQ(root2.children[0].detail, "row");
  for (const obs::ProfileNode& c : root2.children) {
    EXPECT_NE(c.op, "vec");
  }
  executor_.set_vectorized(true);
}

TEST_F(VecEngineTest, GovernanceCancelAndBudgetInColumnarPath) {
  storage::Table* t = MakeMixedTable("m8", kRows);
  Query q;
  q.table = t;
  q.items.push_back(Item(Col("y"), SelectItem::AggKind::kSum, "s"));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  executor_.set_vectorized(true);
  executor_.set_batch_rows(128);
  executor_.set_scan_workers(2);

  // Pre-fired cancellation surfaces through the vectorized scan loop.
  {
    QueryContext qctx;
    qctx.limits.cancel = std::make_shared<gov::CancelSource>();
    qctx.limits.cancel->Cancel(gov::KillReason::kUser, "test kill");
    Result<ResultSet> r = executor_.Execute(q, nullptr, &qctx);
    ASSERT_FALSE(r.ok());
  }
  // A tiny memory budget trips on the columnar register-file charge.
  {
    QueryContext qctx;
    gov::MemoryBudget budget;
    budget.Reset(1024);  // smaller than one 128-row batch
    qctx.limits.budget = &budget;
    Result<ResultSet> r = executor_.Execute(q, nullptr, &qctx);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST_F(VecEngineTest, ConcurrentMorselVectorizedStress) {
  // TSan target (ctest tsan_vec_suite): 8 morsel workers share one compiled
  // plan and the global vec counters while each owning private register
  // scratch; repeated runs must agree with the serial row baseline.
  storage::Table* t = MakeMixedTable("m9", kRows);
  Query q;
  q.table = t;
  q.where = Bin(BinaryOp::kGt, Col("y"), Lit(Value::Double(-1.0)));
  q.items.push_back(Item(Bin(BinaryOp::kMul, Col("y"), Col("x")),
                         SelectItem::AggKind::kSum, "s"));
  q.items.push_back(Item(Col("b"), SelectItem::AggKind::kMin, "m"));
  q.items.push_back(Item(Star(), SelectItem::AggKind::kCount, "n"));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  const Outcome base = Run(q, nullptr, false, 1, 1, true);
  for (int rep = 0; rep < 4; ++rep) {
    const Outcome got = Run(q, nullptr, true, 256, 8, false);
    EXPECT_EQ(got.ok, base.ok);
    EXPECT_EQ(got.payload, base.payload) << "rep=" << rep;
  }
}

}  // namespace
}  // namespace sqlarray::engine
