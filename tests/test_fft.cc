// Tests for the FFTW-substitute: transforms vs the naive DFT, inverse
// round-trips, multi-dimensional plans, Parseval, aligned execution.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "fft/fft.h"

namespace sqlarray::fft {
namespace {

std::vector<Complex> RandomSignal(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (Complex& c : x) c = {rng.Normal(), rng.Normal()};
  return x;
}

double MaxDiff(std::span<const Complex> a, std::span<const Complex> b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

// Lengths cover radix-2, odd, prime, and mixed sizes (Bluestein paths).
class FftAgainstNaive : public ::testing::TestWithParam<int64_t> {};

TEST_P(FftAgainstNaive, ForwardMatchesNaiveDft) {
  const int64_t n = GetParam();
  std::vector<Complex> x = RandomSignal(n, 100 + n);
  std::vector<Complex> fast = x;
  ASSERT_TRUE(Transform(fast, Direction::kForward).ok());
  std::vector<Complex> slow = NaiveDft(x, Direction::kForward);
  EXPECT_LT(MaxDiff(fast, slow), 1e-8 * static_cast<double>(n));
}

TEST_P(FftAgainstNaive, InverseRoundTrip) {
  const int64_t n = GetParam();
  std::vector<Complex> x = RandomSignal(n, 200 + n);
  std::vector<Complex> y = x;
  ASSERT_TRUE(Transform(y, Direction::kForward).ok());
  ASSERT_TRUE(Transform(y, Direction::kInverse).ok());
  EXPECT_LT(MaxDiff(x, y), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftAgainstNaive,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17,
                                           31, 32, 45, 64, 97, 128));

TEST(Fft, KnownImpulse) {
  // FFT of a unit impulse is all ones.
  std::vector<Complex> x(8, {0, 0});
  x[0] = {1, 0};
  ASSERT_TRUE(Transform(x, Direction::kForward).ok());
  for (const Complex& c : x) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, KnownSingleTone) {
  // x[j] = exp(2 pi i k j / n) transforms to n * delta_k.
  const int64_t n = 16, k = 3;
  std::vector<Complex> x(n);
  for (int64_t j = 0; j < n; ++j) {
    double ang = 2 * std::numbers::pi * k * j / n;
    x[j] = {std::cos(ang), std::sin(ang)};
  }
  ASSERT_TRUE(Transform(x, Direction::kForward).ok());
  for (int64_t j = 0; j < n; ++j) {
    double expect = j == k ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(x[j]), expect, 1e-9) << "bin " << j;
  }
}

TEST(Fft, ParsevalHolds) {
  const int64_t n = 45;  // Bluestein path
  std::vector<Complex> x = RandomSignal(n, 7);
  double time_energy = 0;
  for (const Complex& c : x) time_energy += std::norm(c);
  std::vector<Complex> f = x;
  ASSERT_TRUE(Transform(f, Direction::kForward).ok());
  double freq_energy = 0;
  for (const Complex& c : f) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-6 * time_energy * n);
}

TEST(Fft, LinearityProperty) {
  const int64_t n = 32;
  std::vector<Complex> a = RandomSignal(n, 1), b = RandomSignal(n, 2);
  std::vector<Complex> sum(n);
  for (int64_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  ASSERT_TRUE(Transform(a, Direction::kForward).ok());
  ASSERT_TRUE(Transform(b, Direction::kForward).ok());
  ASSERT_TRUE(Transform(sum, Direction::kForward).ok());
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])), 1e-9);
  }
}

TEST(Plan, TwoDimensionalMatchesRowColumnTransforms) {
  const int64_t rows = 8, cols = 6;
  std::vector<Complex> x = RandomSignal(rows * cols, 9);
  std::unique_ptr<Plan> plan = Plan::Create({rows, cols}).value();
  std::vector<Complex> got(x.size());
  ASSERT_TRUE(plan->Execute(x, got, Direction::kForward).ok());

  // Manual separable reference: transform columns (axis 0), then rows.
  std::vector<Complex> ref = x;
  for (int64_t c = 0; c < cols; ++c) {
    std::vector<Complex> line(rows);
    for (int64_t r = 0; r < rows; ++r) line[r] = ref[r + c * rows];
    line = NaiveDft(line, Direction::kForward);
    for (int64_t r = 0; r < rows; ++r) ref[r + c * rows] = line[r];
  }
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<Complex> line(cols);
    for (int64_t c = 0; c < cols; ++c) line[c] = ref[r + c * rows];
    line = NaiveDft(line, Direction::kForward);
    for (int64_t c = 0; c < cols; ++c) ref[r + c * rows] = line[c];
  }
  EXPECT_LT(MaxDiff(got, ref), 1e-8);
}

TEST(Plan, ThreeDimensionalRoundTrip) {
  std::vector<Complex> x = RandomSignal(4 * 6 * 5, 10);
  std::unique_ptr<Plan> plan = Plan::Create({4, 6, 5}).value();
  std::vector<Complex> f(x.size()), back(x.size());
  ASSERT_TRUE(plan->Execute(x, f, Direction::kForward).ok());
  ASSERT_TRUE(plan->Execute(f, back, Direction::kInverse).ok());
  EXPECT_LT(MaxDiff(x, back), 1e-10);
}

TEST(Plan, AlignedAndUnalignedAgree) {
  std::vector<Complex> x = RandomSignal(64, 11);
  std::unique_ptr<Plan> plan = Plan::Create({64}).value();
  std::vector<Complex> a(64), b(64);
  ASSERT_TRUE(plan->Execute(x, a, Direction::kForward).ok());
  ASSERT_TRUE(plan->ExecuteUnaligned(x, b, Direction::kForward).ok());
  EXPECT_LT(MaxDiff(a, b), 1e-12);
}

TEST(Plan, InPlaceExecution) {
  std::vector<Complex> x = RandomSignal(32, 12);
  std::vector<Complex> expect = x;
  ASSERT_TRUE(Transform(expect, Direction::kForward).ok());
  std::unique_ptr<Plan> plan = Plan::Create({32}).value();
  ASSERT_TRUE(plan->Execute(x, x, Direction::kForward).ok());
  EXPECT_LT(MaxDiff(x, expect), 1e-12);
}

TEST(Plan, Validation) {
  EXPECT_FALSE(Plan::Create({}).ok());
  EXPECT_FALSE(Plan::Create({0}).ok());
  std::unique_ptr<Plan> plan = Plan::Create({8}).value();
  std::vector<Complex> wrong(4);
  EXPECT_FALSE(plan->Execute(wrong, wrong, Direction::kForward).ok());
}

TEST(Fft, EmptyInputRejected) {
  std::vector<Complex> empty;
  EXPECT_FALSE(Transform(empty, Direction::kForward).ok());
}

}  // namespace
}  // namespace sqlarray::fft
