// Tests for ArrayRef / OwnedArray and element codecs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/array.h"
#include "core/build.h"

namespace sqlarray {
namespace {

TEST(DTypeTraits, SizesAndNames) {
  EXPECT_EQ(DTypeSize(DType::kInt8), 1);
  EXPECT_EQ(DTypeSize(DType::kComplex128), 16);
  EXPECT_EQ(DTypeName(DType::kFloat32), "float32");
  EXPECT_EQ(DTypeFromName("complex64").value(), DType::kComplex64);
  EXPECT_FALSE(DTypeFromName("bogus").ok());
  EXPECT_EQ(DTypeSchemaPrefix(DType::kInt64), "BigInt");
  EXPECT_EQ(DTypeSchemaPrefix(DType::kFloat64), "Float");
}

TEST(DTypeTraits, Classification) {
  EXPECT_TRUE(IsIntegerDType(DType::kDateTime));
  EXPECT_TRUE(IsRealDType(DType::kFloat32));
  EXPECT_TRUE(IsComplexDType(DType::kComplex64));
  EXPECT_FALSE(IsIntegerDType(DType::kFloat64));
}

TEST(OwnedArray, ZerosHasZeroPayload) {
  OwnedArray a = OwnedArray::Zeros(DType::kInt32, {4, 3}).value();
  EXPECT_EQ(a.num_elements(), 12);
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(a.ref().GetDouble(i).value(), 0.0);
  }
}

TEST(OwnedArray, FromValuesRoundTrip) {
  std::vector<double> v{1.5, -2.5, 3.25};
  OwnedArray a = OwnedArray::FromVector<double>(v).value();
  auto data = a.ref().Data<double>().value();
  EXPECT_EQ(data[0], 1.5);
  EXPECT_EQ(data[2], 3.25);
}

TEST(OwnedArray, FromValuesCountMismatchFails) {
  std::vector<int32_t> v{1, 2, 3};
  EXPECT_FALSE(OwnedArray::FromValues<int32_t>({2, 2}, v).ok());
}

TEST(OwnedArray, TypedAccessRejectsWrongType) {
  OwnedArray a = OwnedArray::Zeros(DType::kFloat64, {3}).value();
  EXPECT_FALSE(a.ref().Data<float>().ok());
  EXPECT_TRUE(a.ref().Data<double>().ok());
}

TEST(OwnedArray, DateTimeReadsAsInt64) {
  OwnedArray a = OwnedArray::Zeros(DType::kDateTime, {2}).value();
  EXPECT_TRUE(a.MutableData<int64_t>().ok());
  EXPECT_TRUE(a.ref().Data<int64_t>().ok());
}

TEST(OwnedArray, SetGetAtMultiIndex) {
  OwnedArray a = OwnedArray::Zeros(DType::kFloat64, {3, 4}).value();
  ASSERT_TRUE(a.SetDoubleAt(Dims{2, 3}, 9.5).ok());
  EXPECT_EQ(a.ref().GetDoubleAt(Dims{2, 3}).value(), 9.5);
  // Column-major: (2,3) -> 2 + 3*3 = 11.
  EXPECT_EQ(a.ref().GetDouble(11).value(), 9.5);
}

TEST(OwnedArray, OutOfRangeAccessFails) {
  OwnedArray a = OwnedArray::Zeros(DType::kFloat64, {3}).value();
  EXPECT_FALSE(a.ref().GetDouble(3).ok());
  EXPECT_FALSE(a.ref().GetDouble(-1).ok());
  EXPECT_FALSE(a.SetDouble(3, 1.0).ok());
}

TEST(OwnedArray, ComplexStoreAndLoad) {
  OwnedArray a = OwnedArray::Zeros(DType::kComplex128, {2}).value();
  ASSERT_TRUE(a.SetComplex(0, {1.0, -2.0}).ok());
  std::complex<double> v = a.ref().GetComplex(0).value();
  EXPECT_EQ(v.real(), 1.0);
  EXPECT_EQ(v.imag(), -2.0);
  // Real read of a complex array fails.
  EXPECT_FALSE(a.ref().GetDouble(0).ok());
}

TEST(OwnedArray, ComplexIntoRealRequiresZeroImag) {
  OwnedArray a = OwnedArray::Zeros(DType::kFloat64, {1}).value();
  EXPECT_FALSE(a.SetComplex(0, {1.0, 0.5}).ok());
  EXPECT_TRUE(a.SetComplex(0, {1.0, 0.0}).ok());
}

TEST(OwnedArray, IntegerRoundingAndOverflow) {
  OwnedArray a = OwnedArray::Zeros(DType::kInt8, {2}).value();
  ASSERT_TRUE(a.SetDouble(0, 3.6).ok());
  EXPECT_EQ(a.ref().GetDouble(0).value(), 4.0);  // round to nearest
  EXPECT_FALSE(a.SetDouble(1, 1000.0).ok());     // int8 overflow
  EXPECT_FALSE(a.SetDouble(1, std::nan("")).ok());
}

TEST(OwnedArray, FromBlobValidates) {
  OwnedArray a = OwnedArray::Zeros(DType::kInt16, {4}).value();
  std::vector<uint8_t> blob(a.blob().begin(), a.blob().end());
  EXPECT_TRUE(OwnedArray::FromBlob(blob).ok());
  blob[0] = 0;  // corrupt the magic
  EXPECT_FALSE(OwnedArray::FromBlob(blob).ok());
}

TEST(OwnedArray, FromBlobTrimsPadding) {
  OwnedArray a = OwnedArray::Zeros(DType::kInt16, {4}).value();
  std::vector<uint8_t> blob(a.blob().begin(), a.blob().end());
  blob.resize(blob.size() + 64, 0xAB);  // fixed-column padding
  OwnedArray b = OwnedArray::FromBlob(blob).value();
  EXPECT_EQ(b.blob().size(), a.blob().size());
}

TEST(ArrayRef, ParseAliasesBlob) {
  OwnedArray a = OwnedArray::Zeros(DType::kFloat32, {5}).value();
  ArrayRef r = ArrayRef::Parse(a.blob()).value();
  EXPECT_EQ(r.num_elements(), 5);
  EXPECT_EQ(r.payload().size(), 20u);
  EXPECT_EQ(r.blob().data(), a.blob().data());
}

TEST(OwnedArray, CopyOfProducesIndependentBlob) {
  OwnedArray a = OwnedArray::Zeros(DType::kFloat64, {2}).value();
  ASSERT_TRUE(a.SetDouble(0, 5.0).ok());
  OwnedArray b = OwnedArray::CopyOf(a.ref()).value();
  ASSERT_TRUE(b.SetDouble(0, 7.0).ok());
  EXPECT_EQ(a.ref().GetDouble(0).value(), 5.0);
  EXPECT_EQ(b.ref().GetDouble(0).value(), 7.0);
}

TEST(Builders, MakeVectorAndSquareMatrix) {
  OwnedArray v = MakeVector<double>({1, 2, 3, 4, 5}).value();
  EXPECT_EQ(v.dims(), (Dims{5}));
  OwnedArray m = MakeSquareMatrix<double>({1, 2, 3, 4}).value();
  EXPECT_EQ(m.dims(), (Dims{2, 2}));
  // Column-major: element (1, 0) is the second listed value.
  EXPECT_EQ(m.ref().GetDoubleAt(Dims{1, 0}).value(), 2.0);
  EXPECT_FALSE(MakeSquareMatrix<double>({1, 2, 3}).ok());
}

TEST(Builders, MakeFullAndRamp) {
  OwnedArray f = MakeFull(DType::kInt32, {2, 2}, 7).value();
  EXPECT_EQ(f.ref().GetDouble(3).value(), 7.0);
  OwnedArray r = MakeRamp(DType::kFloat64, 4, 1.0, 0.5).value();
  EXPECT_EQ(r.ref().GetDouble(3).value(), 2.5);
}

TEST(Builders, AutoStorageClassSelection) {
  OwnedArray small = OwnedArray::Zeros(DType::kFloat64, {10}).value();
  EXPECT_EQ(small.storage(), StorageClass::kShort);
  OwnedArray big = OwnedArray::Zeros(DType::kFloat64, {10000}).value();
  EXPECT_EQ(big.storage(), StorageClass::kMax);
}

TEST(ScalarCodec, WriteReadEveryRealDType) {
  for (DType t : {DType::kInt8, DType::kInt16, DType::kInt32, DType::kInt64,
                  DType::kFloat32, DType::kFloat64}) {
    uint8_t buf[16] = {0};
    ASSERT_TRUE(WriteScalarFromDouble(t, buf, 42.0).ok());
    EXPECT_EQ(ReadScalarAsDouble(t, buf).value(), 42.0) << DTypeName(t);
    std::complex<double> c = ReadScalarAsComplex(t, buf).value();
    EXPECT_EQ(c, std::complex<double>(42.0, 0.0));
  }
}

}  // namespace
}  // namespace sqlarray
