// Tests for the turbulence use case: synthetic field, blob partitioning,
// the interpolation service (Sec. 2.1).
#include <gtest/gtest.h>

#include <cmath>

#include "sci/turbulence/field.h"
#include "sci/turbulence/partition.h"
#include "sci/turbulence/service.h"

namespace sqlarray::turbulence {
namespace {

TEST(SyntheticField, PeriodicInAllAxes) {
  SyntheticField field(32, 20, 1);
  FlowSample a = field.Evaluate(3.7, 8.1, 15.9);
  FlowSample b = field.Evaluate(3.7 + 32, 8.1 - 32, 15.9 + 64);
  EXPECT_NEAR(a.u, b.u, 1e-9);
  EXPECT_NEAR(a.v, b.v, 1e-9);
  EXPECT_NEAR(a.w, b.w, 1e-9);
  EXPECT_NEAR(a.p, b.p, 1e-9);
}

TEST(SyntheticField, DivergenceFree) {
  // Numerical divergence via central differences must vanish (the field is
  // a sum of solenoidal modes).
  SyntheticField field(32, 20, 2);
  const double h = 1e-4;
  for (double x : {3.0, 10.5}) {
    for (double y : {7.2, 20.0}) {
      double div =
          (field.Evaluate(x + h, y, 5).u - field.Evaluate(x - h, y, 5).u +
           field.Evaluate(x, y + h, 5).v - field.Evaluate(x, y - h, 5).v +
           field.Evaluate(x, y, 5 + h).w - field.Evaluate(x, y, 5 - h).w) /
          (2 * h);
      EXPECT_NEAR(div, 0.0, 1e-6);
    }
  }
}

TEST(SyntheticField, DeterministicAndNonTrivial) {
  SyntheticField a(16, 10, 7), b(16, 10, 7), c(16, 10, 8);
  EXPECT_EQ(a.Evaluate(1, 2, 3).u, b.Evaluate(1, 2, 3).u);
  EXPECT_NE(a.Evaluate(1, 2, 3).u, c.Evaluate(1, 2, 3).u);
  double energy = 0;
  for (int i = 0; i < 16; ++i) {
    FlowSample s = a.GridSample(i, i, i);
    energy += s.u * s.u + s.v * s.v + s.w * s.w;
  }
  EXPECT_GT(energy, 0.0);
}

TEST(PartitionConfig, BlobSizing) {
  // The paper's (64+8)^3 x 4 float32 blob is ~6 MB.
  PartitionConfig paper;
  paper.core = 64;
  paper.overlap = 4;
  EXPECT_EQ(paper.edge(), 72);
  EXPECT_NEAR(paper.BlobBytes() / 1e6, 6.0, 0.5);
  // A small config fits on-page.
  PartitionConfig small;
  small.core = 4;
  small.overlap = 2;
  small.with_pressure = false;
  EXPECT_LE(small.BlobBytes(), 8000);
}

class PartitionedField : public ::testing::Test {
 protected:
  void Load(PartitionConfig config) {
    config_ = config;
    field_ = std::make_unique<SyntheticField>(n_, 15, 3);
    table_ = LoadIntoTable(*field_, config_, &db_, "blobs").value();
    service_ = std::make_unique<InterpolationService>(&db_, table_, config_,
                                                      n_);
  }

  const int64_t n_ = 32;
  storage::Database db_;
  PartitionConfig config_;
  std::unique_ptr<SyntheticField> field_;
  storage::Table* table_ = nullptr;
  std::unique_ptr<InterpolationService> service_;
};

TEST_F(PartitionedField, RowCountMatchesCubeCount) {
  PartitionConfig config;
  config.core = 8;
  config.overlap = 4;
  Load(config);
  EXPECT_EQ(table_->row_count(), 4 * 4 * 4);
}

TEST_F(PartitionedField, BlobVoxelsMatchField) {
  PartitionConfig config;
  config.core = 8;
  config.overlap = 2;
  Load(config);
  // Pick the cube at cell (1, 2, 3) and check an interior voxel.
  uint64_t id = CubeIdOf(config, n_, 8.5, 16.5, 24.5);
  storage::Row row = table_->Lookup(static_cast<int64_t>(id)).value().value();
  std::vector<uint8_t> blob_bytes;
  if (auto* blob_id = std::get_if<storage::BlobId>(&row[1])) {
    blob_bytes = table_->ReadBlob(*blob_id).value();
  } else {
    blob_bytes = std::get<std::vector<uint8_t>>(row[1]);
  }
  OwnedArray arr = OwnedArray::FromBlob(std::move(blob_bytes)).value();
  EXPECT_EQ(arr.dims(),
            (Dims{4, config.edge(), config.edge(), config.edge()}));
  // Local voxel (3, 3, 3) maps to global (8-2+3, 16-2+3, 24-2+3).
  FlowSample expect = field_->GridSample(9, 17, 25);
  EXPECT_NEAR(arr.ref().GetDoubleAt(Dims{0, 3, 3, 3}).value(), expect.u,
              1e-5);
  EXPECT_NEAR(arr.ref().GetDoubleAt(Dims{3, 3, 3, 3}).value(), expect.p,
              1e-5);
}

TEST_F(PartitionedField, NearestMatchesGridSample) {
  PartitionConfig config;
  config.core = 8;
  config.overlap = 2;
  Load(config);
  VelocitySample s =
      service_->Sample(5.2, 9.8, 17.4, math::InterpScheme::kNearest).value();
  FlowSample expect = field_->GridSample(5, 10, 17);
  EXPECT_NEAR(s.u, expect.u, 1e-5);
  EXPECT_NEAR(s.v, expect.v, 1e-5);
  EXPECT_NEAR(s.w, expect.w, 1e-5);
}

TEST_F(PartitionedField, LagrangianInterpolationApproachesTruth) {
  PartitionConfig config;
  config.core = 8;
  config.overlap = 4;  // enough buffer for the 8-point stencil
  Load(config);
  double err4 = 0, err8 = 0;
  for (int k = 0; k < 20; ++k) {
    double x = 2.0 + k * 1.37, y = 5.0 + k * 0.71, z = 9.0 + k * 1.11;
    FlowSample truth = field_->Evaluate(x, y, z);
    VelocitySample s4 =
        service_->Sample(x, y, z, math::InterpScheme::kLagrange4).value();
    VelocitySample s8 =
        service_->Sample(x, y, z, math::InterpScheme::kLagrange8).value();
    err4 = std::max(err4, std::fabs(s4.u - truth.u));
    err8 = std::max(err8, std::fabs(s8.u - truth.u));
  }
  EXPECT_LT(err8, err4 + 1e-4);  // higher order no worse
  EXPECT_LT(err8, 0.02);         // and close to the analytic field
  EXPECT_EQ(service_->stats().fallback_full_reads, 0);
}

TEST_F(PartitionedField, InsufficientOverlapFallsBack) {
  PartitionConfig config;
  config.core = 8;
  config.overlap = 1;  // too small for the 8-point stencil
  Load(config);
  VelocitySample s =
      service_->Sample(8.1, 8.1, 8.1, math::InterpScheme::kLagrange8)
          .value();
  EXPECT_GT(service_->stats().fallback_full_reads, 0);
  // The fallback is still numerically correct.
  FlowSample truth = field_->Evaluate(8.1, 8.1, 8.1);
  EXPECT_NEAR(s.u, truth.u, 0.05);
}

TEST_F(PartitionedField, BatchTracksIoStats) {
  PartitionConfig config;
  config.core = 8;
  config.overlap = 4;
  Load(config);
  db_.ClearCache();
  std::vector<std::array<double, 3>> positions;
  for (int k = 0; k < 50; ++k) {
    positions.push_back({1.0 + k * 0.6, 2.0 + k * 0.4, 3.0 + k * 0.5});
  }
  auto out =
      service_->SampleBatch(positions, math::InterpScheme::kLagrange4)
          .value();
  EXPECT_EQ(out.size(), positions.size());
  EXPECT_EQ(service_->stats().particles, 50);
  EXPECT_GT(service_->stats().io_bytes_read, 0);
  EXPECT_GT(service_->stats().blob_bytes_read, 0);
}

TEST_F(PartitionedField, SmallBlobsReadFewerBytesThanBigBlobs) {
  // The Sec. 2.1 argument: for point interpolation, small blobs beat the
  // 6 MB blob because only the stencil is needed.
  PartitionConfig small;
  small.core = 8;
  small.overlap = 4;
  Load(small);
  db_.ClearCache();
  db_.disk()->ResetStats();
  ASSERT_TRUE(
      service_->Sample(10.3, 11.4, 12.5, math::InterpScheme::kLagrange8)
          .ok());
  int64_t small_io = db_.disk()->stats().bytes_read;

  storage::Database db2;
  PartitionConfig big;
  big.core = 32;  // one big cube
  big.overlap = 4;
  SyntheticField field2(32, 15, 3);
  storage::Table* table2 = LoadIntoTable(field2, big, &db2, "big").value();
  InterpolationService service2(&db2, table2, big, 32);
  db2.ClearCache();
  db2.disk()->ResetStats();
  ASSERT_TRUE(
      service2.Sample(10.3, 11.4, 12.5, math::InterpScheme::kLagrange8).ok());
  int64_t big_io = db2.disk()->stats().bytes_read;

  // Both read only the stencil through the blob stream, but the bigger blob
  // spreads the stencil over more pages.
  EXPECT_LE(small_io, big_io);
}

TEST(Partition, RejectsIndivisibleResolution) {
  SyntheticField field(30, 5, 1);
  storage::Database db;
  PartitionConfig config;
  config.core = 8;
  EXPECT_FALSE(LoadIntoTable(field, config, &db, "bad").ok());
}

}  // namespace
}  // namespace sqlarray::turbulence
