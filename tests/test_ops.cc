// Tests for array operations: Item, UpdateItem, Subarray, Reshape, Cast/Raw,
// conversions, strings, aggregates, element-wise arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/build.h"
#include "core/ops.h"

namespace sqlarray {
namespace {

OwnedArray Ramp3D(DType dtype, Dims dims) {
  OwnedArray a = OwnedArray::Zeros(dtype, dims).value();
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    EXPECT_TRUE(a.SetDouble(i, static_cast<double>(i)).ok());
  }
  return a;
}

TEST(Item, ReadsByMultiIndex) {
  OwnedArray a = Ramp3D(DType::kFloat64, {3, 4, 5});
  EXPECT_EQ(Item(a.ref(), Dims{0, 0, 0}).value(), 0.0);
  EXPECT_EQ(Item(a.ref(), Dims{2, 3, 4}).value(), 59.0);
  // Column-major: (1, 2, 3) -> 1 + 2*3 + 3*12 = 43.
  EXPECT_EQ(Item(a.ref(), Dims{1, 2, 3}).value(), 43.0);
}

TEST(Item, RejectsBadIndex) {
  OwnedArray a = Ramp3D(DType::kFloat64, {3, 4, 5});
  EXPECT_FALSE(Item(a.ref(), Dims{3, 0, 0}).ok());
  EXPECT_FALSE(Item(a.ref(), Dims{0, 0}).ok());
}

TEST(UpdateItem, ValueSemantics) {
  OwnedArray a = Ramp3D(DType::kInt32, {4});
  OwnedArray b = UpdateItem(a.ref(), Dims{2}, 99).value();
  EXPECT_EQ(Item(a.ref(), Dims{2}).value(), 2.0);   // original untouched
  EXPECT_EQ(Item(b.ref(), Dims{2}).value(), 99.0);  // copy updated
}

TEST(UpdateItem, ComplexValue) {
  OwnedArray a = OwnedArray::Zeros(DType::kComplex64, {2}).value();
  OwnedArray b = UpdateItemComplex(a.ref(), Dims{1}, {3.0, 4.0}).value();
  EXPECT_EQ(ItemComplex(b.ref(), Dims{1}).value(),
            std::complex<double>(3.0, 4.0));
}

// Subarray extraction must agree with direct element indexing for every
// element of the result, across shapes and offsets.
struct SubCase {
  Dims dims;
  Dims offset;
  Dims sizes;
};

class SubarrayAgainstNaive : public ::testing::TestWithParam<SubCase> {};

TEST_P(SubarrayAgainstNaive, MatchesElementwiseCopy) {
  const SubCase& c = GetParam();
  OwnedArray a = Ramp3D(DType::kFloat64, c.dims);
  OwnedArray sub = Subarray(a.ref(), c.offset, c.sizes, false).value();
  ASSERT_EQ(sub.dims(), c.sizes);
  const int64_t n = sub.num_elements();
  for (int64_t lin = 0; lin < n; ++lin) {
    Dims local = Unlinearize(c.sizes, lin);
    Dims global(local.size());
    for (size_t k = 0; k < local.size(); ++k) {
      global[k] = local[k] + c.offset[k];
    }
    EXPECT_EQ(sub.ref().GetDouble(lin).value(),
              a.ref().GetDoubleAt(global).value())
        << "element " << lin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SubarrayAgainstNaive,
    ::testing::Values(
        SubCase{{10}, {3}, {4}},
        SubCase{{10}, {0}, {10}},
        SubCase{{6, 7}, {1, 2}, {3, 4}},
        SubCase{{6, 7}, {0, 0}, {6, 1}},
        SubCase{{5, 5, 5}, {1, 2, 3}, {3, 2, 2}},
        SubCase{{5, 5, 5}, {0, 0, 0}, {5, 5, 5}},
        SubCase{{4, 4, 4, 4}, {1, 1, 1, 1}, {2, 2, 2, 2}},
        SubCase{{3, 4, 5}, {2, 3, 4}, {1, 1, 1}}));

TEST(Subarray, CollapseDropsUnitDims) {
  OwnedArray a = Ramp3D(DType::kFloat64, {4, 5});
  // One matrix column, collapsed to a vector (the paper's example use).
  OwnedArray col = Subarray(a.ref(), Dims{0, 2}, Dims{4, 1}, true).value();
  EXPECT_EQ(col.dims(), (Dims{4}));
  EXPECT_EQ(col.ref().GetDouble(0).value(), 8.0);  // (0,2) -> 8
  // Fully scalar subset keeps one dimension.
  OwnedArray one = Subarray(a.ref(), Dims{1, 1}, Dims{1, 1}, true).value();
  EXPECT_EQ(one.dims(), (Dims{1}));
  EXPECT_EQ(one.ref().GetDouble(0).value(), 5.0);
}

TEST(Subarray, RejectsOutOfBounds) {
  OwnedArray a = Ramp3D(DType::kFloat64, {4, 5});
  EXPECT_FALSE(Subarray(a.ref(), Dims{3, 0}, Dims{2, 5}, false).ok());
  EXPECT_FALSE(Subarray(a.ref(), Dims{-1, 0}, Dims{1, 1}, false).ok());
  EXPECT_FALSE(Subarray(a.ref(), Dims{0, 0}, Dims{0, 1}, false).ok());
  EXPECT_FALSE(Subarray(a.ref(), Dims{0}, Dims{1}, false).ok());
}

TEST(Subarray, SmallSubsetOfMaxArrayBecomesShort) {
  OwnedArray big =
      OwnedArray::Zeros(DType::kFloat64, {100, 100}, StorageClass::kMax)
          .value();
  OwnedArray sub = Subarray(big.ref(), Dims{0, 0}, Dims{4, 4}, false).value();
  EXPECT_EQ(sub.storage(), StorageClass::kShort);
}

TEST(Reshape, KeepsElementsInOrder) {
  OwnedArray a = Ramp3D(DType::kInt32, {6});
  OwnedArray m = Reshape(a.ref(), {2, 3}).value();
  EXPECT_EQ(m.dims(), (Dims{2, 3}));
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(m.ref().GetDouble(i).value(), static_cast<double>(i));
  }
}

TEST(Reshape, RejectsCountChange) {
  OwnedArray a = Ramp3D(DType::kInt32, {6});
  EXPECT_FALSE(Reshape(a.ref(), {2, 2}).ok());
}

TEST(Transpose, MatrixTransposeSwapsIndices) {
  OwnedArray a = Ramp3D(DType::kFloat64, {2, 3});
  OwnedArray t = Transpose(a.ref()).value();
  EXPECT_EQ(t.dims(), (Dims{3, 2}));
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(t.ref().GetDoubleAt(Dims{j, i}).value(),
                a.ref().GetDoubleAt(Dims{i, j}).value());
    }
  }
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  OwnedArray a = Ramp3D(DType::kInt32, {3, 4, 5});
  OwnedArray tt = Transpose(Transpose(a.ref()).value().ref()).value();
  ASSERT_EQ(tt.dims(), a.dims());
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    EXPECT_EQ(tt.ref().GetDouble(i).value(), a.ref().GetDouble(i).value());
  }
}

TEST(PermuteAxes, ArbitraryPermutation) {
  OwnedArray a = Ramp3D(DType::kFloat64, {2, 3, 4});
  std::vector<int> perm{2, 0, 1};  // out[i,j,k] = a[j,k,i]
  OwnedArray p = PermuteAxes(a.ref(), perm).value();
  EXPECT_EQ(p.dims(), (Dims{4, 2, 3}));
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 2; ++j) {
      for (int64_t k = 0; k < 3; ++k) {
        EXPECT_EQ(p.ref().GetDoubleAt(Dims{i, j, k}).value(),
                  a.ref().GetDoubleAt(Dims{j, k, i}).value());
      }
    }
  }
}

TEST(PermuteAxes, Validation) {
  OwnedArray a = Ramp3D(DType::kFloat64, {2, 3});
  EXPECT_FALSE(PermuteAxes(a.ref(), std::vector<int>{0}).ok());
  EXPECT_FALSE(PermuteAxes(a.ref(), std::vector<int>{0, 0}).ok());
  EXPECT_FALSE(PermuteAxes(a.ref(), std::vector<int>{0, 2}).ok());
}

TEST(ConcatAxis, VectorsAndMatrixColumns) {
  OwnedArray a = MakeVector<double>({1, 2}).value();
  OwnedArray b = MakeVector<double>({3, 4, 5}).value();
  OwnedArray ab = ConcatAxis(a.ref(), b.ref(), 0).value();
  EXPECT_EQ(ab.dims(), (Dims{5}));
  EXPECT_EQ(ab.ref().GetDouble(4).value(), 5.0);

  // Stacking matrix columns (axis 1).
  OwnedArray m1 = Ramp3D(DType::kFloat64, {2, 2});
  OwnedArray m2 = Ramp3D(DType::kFloat64, {2, 3});
  OwnedArray m = ConcatAxis(m1.ref(), m2.ref(), 1).value();
  EXPECT_EQ(m.dims(), (Dims{2, 5}));
  EXPECT_EQ(m.ref().GetDoubleAt(Dims{1, 4}).value(),
            m2.ref().GetDoubleAt(Dims{1, 2}).value());
}

TEST(ConcatAxis, DTypePromotionAndValidation) {
  OwnedArray ints = MakeVector<int32_t>({1, 2}).value();
  OwnedArray doubles = MakeVector<double>({0.5}).value();
  OwnedArray mixed = ConcatAxis(ints.ref(), doubles.ref(), 0).value();
  EXPECT_EQ(mixed.dtype(), DType::kFloat64);
  EXPECT_EQ(mixed.ref().GetDouble(2).value(), 0.5);

  OwnedArray m = Ramp3D(DType::kFloat64, {2, 2});
  OwnedArray v = MakeVector<double>({1}).value();
  EXPECT_FALSE(ConcatAxis(m.ref(), v.ref(), 0).ok());   // rank mismatch
  OwnedArray m2 = Ramp3D(DType::kFloat64, {3, 2});
  EXPECT_FALSE(ConcatAxis(m.ref(), m2.ref(), 1).ok());  // other dims differ
  EXPECT_FALSE(ConcatAxis(m.ref(), m.ref(), 2).ok());   // bad axis
}

TEST(CastRaw, RoundTrip) {
  OwnedArray a = Ramp3D(DType::kFloat32, {3, 2});
  std::vector<uint8_t> raw = Raw(a.ref()).value();
  EXPECT_EQ(raw.size(), 24u);  // 6 floats
  OwnedArray back = CastFromRaw(DType::kFloat32, {3, 2}, raw).value();
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(back.ref().GetDouble(i).value(),
              a.ref().GetDouble(i).value());
  }
}

TEST(CastRaw, RejectsSizeMismatch) {
  std::vector<uint8_t> raw(10);
  EXPECT_FALSE(CastFromRaw(DType::kFloat64, {2}, raw).ok());
}

TEST(ConvertDType, WidenAndNarrow) {
  OwnedArray a = Ramp3D(DType::kInt32, {4});
  OwnedArray d = ConvertDType(a.ref(), DType::kFloat64).value();
  EXPECT_EQ(d.dtype(), DType::kFloat64);
  EXPECT_EQ(d.ref().GetDouble(3).value(), 3.0);
  // Narrowing back is fine for small values...
  OwnedArray i8 = ConvertDType(d.ref(), DType::kInt8).value();
  EXPECT_EQ(i8.ref().GetDouble(3).value(), 3.0);
  // ...but fails when a value cannot fit.
  OwnedArray big = MakeVector<double>({300.0}).value();
  EXPECT_FALSE(ConvertDType(big.ref(), DType::kInt8).ok());
}

TEST(ConvertDType, RealToComplexAndBack) {
  OwnedArray r = MakeVector<double>({1.0, 2.0}).value();
  OwnedArray c = ConvertDType(r.ref(), DType::kComplex128).value();
  EXPECT_EQ(c.ref().GetComplex(1).value(), std::complex<double>(2.0, 0.0));
  OwnedArray back = ConvertDType(c.ref(), DType::kFloat64).value();
  EXPECT_EQ(back.ref().GetDouble(1).value(), 2.0);
  // Complex with non-zero imaginary cannot become real.
  OwnedArray cc = OwnedArray::Zeros(DType::kComplex128, {1}).value();
  ASSERT_TRUE(cc.SetComplex(0, {1, 1}).ok());
  EXPECT_FALSE(ConvertDType(cc.ref(), DType::kFloat64).ok());
}

TEST(ConvertStorage, ShortToMaxAndBack) {
  OwnedArray s = MakeVector<double>({1, 2, 3}).value();
  OwnedArray m = ConvertStorage(s.ref(), StorageClass::kMax).value();
  EXPECT_EQ(m.storage(), StorageClass::kMax);
  OwnedArray back = ConvertStorage(m.ref(), StorageClass::kShort).value();
  EXPECT_EQ(back.storage(), StorageClass::kShort);
  EXPECT_EQ(back.ref().GetDouble(2).value(), 3.0);
}

TEST(ConvertStorage, RejectsOversizedShort) {
  OwnedArray big =
      OwnedArray::Zeros(DType::kFloat64, {5000}, StorageClass::kMax).value();
  EXPECT_FALSE(ConvertStorage(big.ref(), StorageClass::kShort).ok());
}

class StringRoundTrip : public ::testing::TestWithParam<DType> {};

TEST_P(StringRoundTrip, ToStringFromString) {
  DType t = GetParam();
  OwnedArray a = OwnedArray::Zeros(t, {2, 3}).value();
  Rng rng(7);
  for (int64_t i = 0; i < 6; ++i) {
    if (IsComplexDType(t)) {
      ASSERT_TRUE(
          a.SetComplex(i, {rng.Uniform(-5, 5), rng.Uniform(-5, 5)}).ok());
    } else if (IsIntegerDType(t)) {
      ASSERT_TRUE(a.SetDouble(i, rng.UniformInt(-100, 100)).ok());
    } else {
      ASSERT_TRUE(a.SetDouble(i, rng.Uniform(-5, 5)).ok());
    }
  }
  std::string text = ToArrayString(a.ref());
  OwnedArray back = FromArrayString(text).value();
  EXPECT_EQ(back.dtype(), t);
  EXPECT_EQ(back.dims(), a.dims());
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(back.ref().GetComplex(i).value(),
              a.ref().GetComplex(i).value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDTypes, StringRoundTrip,
    ::testing::Values(DType::kInt8, DType::kInt16, DType::kInt32,
                      DType::kInt64, DType::kFloat32, DType::kFloat64,
                      DType::kComplex64, DType::kComplex128));

TEST(ArrayString, RejectsMalformed) {
  EXPECT_FALSE(FromArrayString("nope").ok());
  EXPECT_FALSE(FromArrayString("float64[2]{1}").ok());       // too few
  EXPECT_FALSE(FromArrayString("float64[2]{1 2 3}").ok());   // too many
  EXPECT_FALSE(FromArrayString("bogus[2]{1 2}").ok());       // bad dtype
}

TEST(Aggregate, AllKinds) {
  OwnedArray a = MakeVector<double>({1.0, 2.0, 3.0, 4.0}).value();
  EXPECT_EQ(AggregateAll(a.ref(), AggKind::kSum).value(), 10.0);
  EXPECT_EQ(AggregateAll(a.ref(), AggKind::kMin).value(), 1.0);
  EXPECT_EQ(AggregateAll(a.ref(), AggKind::kMax).value(), 4.0);
  EXPECT_EQ(AggregateAll(a.ref(), AggKind::kMean).value(), 2.5);
  EXPECT_EQ(AggregateAll(a.ref(), AggKind::kCount).value(), 4.0);
  EXPECT_NEAR(AggregateAll(a.ref(), AggKind::kStd).value(),
              std::sqrt(1.25), 1e-12);
}

TEST(Aggregate, ComplexRules) {
  OwnedArray c = OwnedArray::Zeros(DType::kComplex128, {2}).value();
  ASSERT_TRUE(c.SetComplex(0, {1, 2}).ok());
  ASSERT_TRUE(c.SetComplex(1, {3, -1}).ok());
  EXPECT_FALSE(AggregateAll(c.ref(), AggKind::kSum).ok());
  EXPECT_EQ(AggregateAllComplex(c.ref(), AggKind::kSum).value(),
            std::complex<double>(4, 1));
  EXPECT_FALSE(AggregateAllComplex(c.ref(), AggKind::kMin).ok());
}

TEST(Aggregate, AxisReduction) {
  // [2, 3] matrix, values 0..5 column-major: col j = (2j, 2j+1).
  OwnedArray a = Ramp3D(DType::kFloat64, {2, 3});
  OwnedArray col_sums = AggregateAxis(a.ref(), 0, AggKind::kSum).value();
  EXPECT_EQ(col_sums.dims(), (Dims{3}));
  EXPECT_EQ(col_sums.ref().GetDouble(0).value(), 1.0);   // 0+1
  EXPECT_EQ(col_sums.ref().GetDouble(2).value(), 9.0);   // 4+5
  OwnedArray row_sums = AggregateAxis(a.ref(), 1, AggKind::kSum).value();
  EXPECT_EQ(row_sums.dims(), (Dims{2}));
  EXPECT_EQ(row_sums.ref().GetDouble(0).value(), 6.0);   // 0+2+4
  EXPECT_EQ(row_sums.ref().GetDouble(1).value(), 9.0);   // 1+3+5
}

TEST(Aggregate, AxisReductionRank3MatchesManual) {
  OwnedArray a = Ramp3D(DType::kFloat64, {3, 4, 5});
  for (int axis = 0; axis < 3; ++axis) {
    OwnedArray red = AggregateAxis(a.ref(), axis, AggKind::kMean).value();
    Dims expect_dims;
    for (int k = 0; k < 3; ++k) {
      if (k != axis) expect_dims.push_back(a.dims()[k]);
    }
    ASSERT_EQ(red.dims(), expect_dims);
    // Check one arbitrary output cell against a manual loop.
    Dims out_idx(2, 1);
    Dims idx(3);
    double sum = 0;
    int64_t count = a.dims()[axis];
    for (int64_t j = 0; j < count; ++j) {
      int p = 0;
      for (int k = 0; k < 3; ++k) {
        idx[k] = (k == axis) ? j : out_idx[p++];
      }
      sum += a.ref().GetDoubleAt(idx).value();
    }
    EXPECT_NEAR(red.ref().GetDoubleAt(out_idx).value(), sum / count, 1e-12)
        << "axis " << axis;
  }
}

TEST(Aggregate, AxisOutOfRange) {
  OwnedArray a = Ramp3D(DType::kFloat64, {2, 2});
  EXPECT_FALSE(AggregateAxis(a.ref(), 2, AggKind::kSum).ok());
  EXPECT_FALSE(AggregateAxis(a.ref(), -1, AggKind::kSum).ok());
}

TEST(Elementwise, PromotionRules) {
  EXPECT_EQ(PromoteDType(DType::kInt8, DType::kInt32), DType::kInt32);
  EXPECT_EQ(PromoteDType(DType::kInt64, DType::kFloat32), DType::kFloat32);
  EXPECT_EQ(PromoteDType(DType::kFloat32, DType::kFloat64), DType::kFloat64);
  EXPECT_EQ(PromoteDType(DType::kComplex64, DType::kFloat64),
            DType::kComplex128);
  EXPECT_EQ(PromoteDType(DType::kComplex64, DType::kFloat32),
            DType::kComplex64);
  EXPECT_EQ(PromoteDType(DType::kDateTime, DType::kInt32), DType::kInt64);
}

TEST(Elementwise, BinaryOps) {
  OwnedArray a = MakeVector<double>({1, 2, 3}).value();
  OwnedArray b = MakeVector<double>({10, 20, 30}).value();
  OwnedArray sum = ElementwiseBinary(a.ref(), b.ref(), BinOp::kAdd).value();
  EXPECT_EQ(sum.ref().GetDouble(2).value(), 33.0);
  OwnedArray prod = ElementwiseBinary(a.ref(), b.ref(), BinOp::kMul).value();
  EXPECT_EQ(prod.ref().GetDouble(1).value(), 40.0);
}

TEST(Elementwise, IntDivisionPromotesToFloat) {
  OwnedArray a = MakeVector<int32_t>({1, 3}).value();
  OwnedArray b = MakeVector<int32_t>({2, 2}).value();
  OwnedArray q = ElementwiseBinary(a.ref(), b.ref(), BinOp::kDiv).value();
  EXPECT_EQ(q.dtype(), DType::kFloat64);
  EXPECT_EQ(q.ref().GetDouble(0).value(), 0.5);
}

TEST(Elementwise, ShapeMismatchAndDivZero) {
  OwnedArray a = MakeVector<double>({1, 2}).value();
  OwnedArray b = MakeVector<double>({1, 2, 3}).value();
  EXPECT_FALSE(ElementwiseBinary(a.ref(), b.ref(), BinOp::kAdd).ok());
  OwnedArray z = MakeVector<double>({0, 1}).value();
  EXPECT_FALSE(ElementwiseBinary(a.ref(), z.ref(), BinOp::kDiv).ok());
}

TEST(Elementwise, ScalarBroadcast) {
  OwnedArray a = MakeVector<double>({2, 4}).value();
  OwnedArray scaled = ElementwiseScalar(a.ref(), 0.5, BinOp::kMul).value();
  EXPECT_EQ(scaled.ref().GetDouble(1).value(), 2.0);
}

TEST(Elementwise, DotAndNorm) {
  OwnedArray a = MakeVector<double>({1, 2, 3}).value();
  OwnedArray b = MakeVector<double>({4, 5, 6}).value();
  EXPECT_EQ(Dot(a.ref(), b.ref()).value(), std::complex<double>(32, 0));
  EXPECT_NEAR(Norm2(a.ref()).value(), std::sqrt(14.0), 1e-12);
  OwnedArray m = OwnedArray::Zeros(DType::kFloat64, {2, 2}).value();
  EXPECT_FALSE(Dot(m.ref(), m.ref()).ok());  // rank-1 only
}

// ---------------------------------------------------------------------------
// Kernel vs boxed differential tests.
//
// The kernel fast paths (src/core/kernels.h) must agree with the boxed
// per-element oracles across the full real dtype promotion matrix, including
// NaN / ±0 / ±inf operands and mixed signed widths. Element-wise ops and
// casts are compared bitwise on the output blob; reductions use a relative
// tolerance because kernel sums run independent accumulator chains.
// ---------------------------------------------------------------------------

const DType kRealDTypes[] = {DType::kInt8,    DType::kInt16,
                             DType::kInt32,   DType::kInt64,
                             DType::kFloat32, DType::kFloat64};

/// Interesting operand values for a dtype. Integer magnitudes stay below
/// 2^30 so the double-arithmetic oracle is exact; `nonzero` drops values
/// that would turn every division case into an error.
std::vector<double> DiffValues(DType t, bool nonzero) {
  if (t == DType::kFloat32 || t == DType::kFloat64) {
    std::vector<double> v = {1.5,
                             -2.25,
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             1e-30,
                             123456.75,
                             -3.5,
                             0.5,
                             7.0};
    if (!nonzero) {
      v.push_back(0.0);
      v.push_back(-0.0);
    }
    return v;
  }
  double hi;
  switch (t) {
    case DType::kInt8: hi = 127; break;
    case DType::kInt16: hi = 32767; break;
    default: hi = 1073741824.0; break;  // 2^30
  }
  std::vector<double> v = {1, -1, 37, -29, hi, -hi, 100, -100, 7, 2};
  if (!nonzero) v.push_back(0);
  return v;
}

OwnedArray DiffArray(DType t, bool nonzero, int rotate) {
  std::vector<double> vals = DiffValues(t, nonzero);
  std::rotate(vals.begin(), vals.begin() + rotate % vals.size(), vals.end());
  OwnedArray a =
      OwnedArray::Zeros(t, {static_cast<int64_t>(vals.size())}).value();
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_TRUE(a.SetDouble(static_cast<int64_t>(i), vals[i]).ok());
  }
  return a;
}

/// Same outcome: both fail with the same status code, or both succeed with
/// bit-identical output blobs.
void ExpectSameArrayResult(const Result<OwnedArray>& fast,
                           const Result<OwnedArray>& slow,
                           const std::string& what) {
  ASSERT_EQ(fast.ok(), slow.ok())
      << what << ": kernel=" << fast.status().ToString()
      << " boxed=" << slow.status().ToString();
  if (!fast.ok()) {
    EXPECT_EQ(fast.status().code(), slow.status().code()) << what;
    return;
  }
  const OwnedArray& k = fast.value();
  const OwnedArray& b = slow.value();
  ASSERT_EQ(k.blob().size(), b.blob().size()) << what;
  EXPECT_TRUE(std::equal(k.blob().begin(), k.blob().end(), b.blob().begin()))
      << what << ": blobs differ";
}

TEST(KernelDifferential, ElementwiseFullDTypeMatrix) {
  for (DType lt : kRealDTypes) {
    for (DType rt : kRealDTypes) {
      for (BinOp op :
           {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kDiv}) {
        OwnedArray lhs = DiffArray(lt, /*nonzero=*/false, 0);
        OwnedArray rhs = DiffArray(rt, /*nonzero=*/true, 3);
        std::string what = std::string(DTypeName(lt)) + " op " +
                           std::string(DTypeName(rt)) + " #" +
                           std::to_string(static_cast<int>(op));
        ExpectSameArrayResult(ElementwiseBinary(lhs.ref(), rhs.ref(), op),
                              ElementwiseBinaryBoxed(lhs.ref(), rhs.ref(), op),
                              what);
      }
    }
  }
}

TEST(KernelDifferential, ElementwiseSmallValuesAlwaysSucceed) {
  // Values small enough that every (op, dtype-pair) combination fits even
  // int8, so this sweep proves the success path of the whole matrix
  // (the large-magnitude matrix above exercises overflow agreement).
  for (DType lt : kRealDTypes) {
    for (DType rt : kRealDTypes) {
      for (BinOp op :
           {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kDiv}) {
        const double small[] = {0, 1, -1, 2, -2, 3, -3, 4, 5, -5};
        OwnedArray lhs = OwnedArray::Zeros(lt, {10}).value();
        OwnedArray rhs = OwnedArray::Zeros(rt, {10}).value();
        for (int64_t i = 0; i < 10; ++i) {
          ASSERT_TRUE(lhs.SetDouble(i, small[i]).ok());
          // Offset rhs so no divisor is zero.
          ASSERT_TRUE(rhs.SetDouble(i, small[(i + 3) % 10] == 0
                                           ? 1
                                           : small[(i + 3) % 10])
                          .ok());
        }
        auto fast = ElementwiseBinary(lhs.ref(), rhs.ref(), op);
        auto slow = ElementwiseBinaryBoxed(lhs.ref(), rhs.ref(), op);
        ASSERT_TRUE(fast.ok()) << fast.status().ToString();
        ASSERT_TRUE(slow.ok()) << slow.status().ToString();
        ExpectSameArrayResult(fast, slow,
                              std::string(DTypeName(lt)) + "/" +
                                  std::string(DTypeName(rt)) + " small #" +
                                  std::to_string(static_cast<int>(op)));
      }
    }
  }
}

TEST(KernelDifferential, ElementwiseZeroDivisorStatusMatches) {
  for (DType lt : kRealDTypes) {
    for (DType rt : kRealDTypes) {
      OwnedArray lhs = DiffArray(lt, false, 0);
      OwnedArray rhs = DiffArray(rt, false, 0);  // contains zero(s)
      auto fast = ElementwiseBinary(lhs.ref(), rhs.ref(), BinOp::kDiv);
      auto slow = ElementwiseBinaryBoxed(lhs.ref(), rhs.ref(), BinOp::kDiv);
      ASSERT_FALSE(fast.ok());
      ASSERT_FALSE(slow.ok());
      EXPECT_EQ(fast.status().code(), slow.status().code());
    }
  }
}

TEST(KernelDifferential, ScalarBroadcastMatrix) {
  for (DType t : kRealDTypes) {
    for (BinOp op : {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kDiv}) {
      for (double scalar : {1.5, -2.0, 0.0}) {
        OwnedArray a = DiffArray(t, false, 1);
        std::string what = std::string("scalar ") + std::string(DTypeName(t)) +
                           " s=" + std::to_string(scalar) + " #" +
                           std::to_string(static_cast<int>(op));
        ExpectSameArrayResult(ElementwiseScalar(a.ref(), scalar, op),
                              ElementwiseScalarBoxed(a.ref(), scalar, op),
                              what);
      }
    }
  }
}

TEST(KernelDifferential, CastFullDTypeMatrix) {
  // Small in-range values: every (src, dst) pairing must succeed identically.
  for (DType st : kRealDTypes) {
    for (DType dt : kRealDTypes) {
      OwnedArray a =
          OwnedArray::Zeros(st, {6}).value();
      const double vals[] = {0, 1, -1, 100, -100, 37};
      for (int64_t i = 0; i < 6; ++i) {
        ASSERT_TRUE(a.SetDouble(i, vals[i]).ok());
      }
      std::string what = std::string("cast ") + std::string(DTypeName(st)) +
                         "->" + std::string(DTypeName(dt));
      ExpectSameArrayResult(ConvertDType(a.ref(), dt),
                            ConvertDTypeBoxed(a.ref(), dt), what);
    }
  }
  // Fractional float sources exercise round-to-nearest-even on int targets.
  for (DType st : {DType::kFloat32, DType::kFloat64}) {
    for (DType dt : kRealDTypes) {
      OwnedArray a = MakeVector<double>({0.5, 1.5, 2.5, -0.5, -1.5, 126.5})
                         .value();
      OwnedArray src = ConvertDType(a.ref(), st).value();
      std::string what = std::string("frac cast ") +
                         std::string(DTypeName(st)) + "->" +
                         std::string(DTypeName(dt));
      ExpectSameArrayResult(ConvertDType(src.ref(), dt),
                            ConvertDTypeBoxed(src.ref(), dt), what);
    }
  }
  // Out-of-range narrowing fails identically (value and NaN overflow).
  for (DType dt :
       {DType::kInt8, DType::kInt16, DType::kInt32, DType::kInt64}) {
    OwnedArray big = MakeVector<double>({1e300, 0}).value();
    ExpectSameArrayResult(ConvertDType(big.ref(), dt),
                          ConvertDTypeBoxed(big.ref(), dt), "big->int");
    OwnedArray nan =
        MakeVector<double>({std::numeric_limits<double>::quiet_NaN()})
            .value();
    ExpectSameArrayResult(ConvertDType(nan.ref(), dt),
                          ConvertDTypeBoxed(nan.ref(), dt), "nan->int");
  }
  OwnedArray wide = MakeVector<int64_t>({int64_t{1} << 40, 0}).value();
  for (DType dt : {DType::kInt8, DType::kInt16, DType::kInt32}) {
    ExpectSameArrayResult(ConvertDType(wide.ref(), dt),
                          ConvertDTypeBoxed(wide.ref(), dt), "wide->narrow");
  }
}

TEST(KernelDifferential, ReductionsWithinTolerance) {
  for (DType t : kRealDTypes) {
    // No NaN here: kSum of a NaN-poisoned array is covered separately.
    OwnedArray a = OwnedArray::Zeros(t, {257}).value();
    Rng rng(42);
    for (int64_t i = 0; i < 257; ++i) {
      ASSERT_TRUE(a.SetDouble(i, std::floor(rng.Uniform(-100, 100))).ok());
    }
    for (AggKind kind : {AggKind::kSum, AggKind::kMin, AggKind::kMax,
                         AggKind::kMean, AggKind::kStd, AggKind::kCount}) {
      double fast = AggregateAll(a.ref(), kind).value();
      double slow = AggregateAllBoxed(a.ref(), kind).value();
      EXPECT_NEAR(fast, slow, 1e-9 * (std::fabs(slow) + 1))
          << DTypeName(t) << " kind " << static_cast<int>(kind);
    }
    double nf = Norm2(a.ref()).value();
    double nb = Norm2Boxed(a.ref()).value();
    EXPECT_NEAR(nf, nb, 1e-9 * (nb + 1)) << DTypeName(t);
  }
  // Dot: all four float pairings have kernel fast paths.
  for (DType ta : {DType::kFloat32, DType::kFloat64}) {
    for (DType tb : {DType::kFloat32, DType::kFloat64}) {
      OwnedArray raw_a =
          MakeVector<double>({1.5, -2.25, 3.0, 0.5, -7.0, 11.25}).value();
      OwnedArray raw_b =
          MakeVector<double>({2.0, 4.5, -1.5, 8.0, 0.25, -3.0}).value();
      OwnedArray a = ConvertDType(raw_a.ref(), ta).value();
      OwnedArray b = ConvertDType(raw_b.ref(), tb).value();
      std::complex<double> fast = Dot(a.ref(), b.ref()).value();
      std::complex<double> slow = DotBoxed(a.ref(), b.ref()).value();
      EXPECT_NEAR(fast.real(), slow.real(), 1e-9)
          << DTypeName(ta) << "." << DTypeName(tb);
      EXPECT_EQ(fast.imag(), 0.0);
    }
  }
}

TEST(KernelDifferential, NaNPropagatesThroughSum) {
  OwnedArray a =
      MakeVector<double>({1.0, std::numeric_limits<double>::quiet_NaN(), 2.0})
          .value();
  EXPECT_TRUE(std::isnan(AggregateAll(a.ref(), AggKind::kSum).value()));
  EXPECT_TRUE(std::isnan(AggregateAllBoxed(a.ref(), AggKind::kSum).value()));
}

TEST(KernelDifferential, MaxStorageUnalignedPayload) {
  // Rank-3 max-class arrays have a 16 + 4*3 = 28-byte header, so float64
  // payloads start 4-byte-misaligned; kernels must handle that (they access
  // elements through memcpy).
  OwnedArray a =
      OwnedArray::Zeros(DType::kFloat64, {3, 5, 7}, StorageClass::kMax)
          .value();
  OwnedArray b =
      OwnedArray::Zeros(DType::kFloat64, {3, 5, 7}, StorageClass::kMax)
          .value();
  Rng rng(7);
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    ASSERT_TRUE(a.SetDouble(i, rng.Uniform(-10, 10)).ok());
    ASSERT_TRUE(b.SetDouble(i, rng.Uniform(1, 10)).ok());
  }
  for (BinOp op : {BinOp::kAdd, BinOp::kMul, BinOp::kDiv}) {
    ExpectSameArrayResult(ElementwiseBinary(a.ref(), b.ref(), op),
                          ElementwiseBinaryBoxed(a.ref(), b.ref(), op),
                          "max-class op");
  }
  EXPECT_NEAR(AggregateAll(a.ref(), AggKind::kSum).value(),
              AggregateAllBoxed(a.ref(), AggKind::kSum).value(), 1e-9);
}

TEST(KernelDifferential, Int64LargeMagnitudeExact) {
  // Regression: the old boxed-only path round-tripped integers through
  // complex<double>, corrupting int64 values above 2^53. The kernel integer
  // path must be exact all the way to the overflow boundary.
  const int64_t big = std::numeric_limits<int64_t>::max() - 1;
  OwnedArray a = MakeVector<int64_t>({big, big - 2, -big}).value();
  OwnedArray one = MakeVector<int64_t>({1, 2, -1}).value();

  OwnedArray sum = ElementwiseBinary(a.ref(), one.ref(), BinOp::kAdd).value();
  auto data = sum.ref().Data<int64_t>().value();
  EXPECT_EQ(data[0], std::numeric_limits<int64_t>::max());
  EXPECT_EQ(data[1], big);
  EXPECT_EQ(data[2], -big - 1);

  // One past the boundary overflows with OutOfRange instead of wrapping.
  OwnedArray two = MakeVector<int64_t>({2, 0, 0}).value();
  auto overflow = ElementwiseBinary(a.ref(), two.ref(), BinOp::kAdd);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOutOfRange);

  OwnedArray half = MakeVector<int64_t>({int64_t{1} << 40, 3, 5}).value();
  auto mul = ElementwiseBinary(half.ref(), half.ref(), BinOp::kMul);
  ASSERT_FALSE(mul.ok());
  EXPECT_EQ(mul.status().code(), StatusCode::kOutOfRange);

  // Narrow integer outputs keep exactness too: int32 + int32 -> int32 range
  // checks instead of saturating through double.
  OwnedArray m32 = MakeVector<int32_t>({2000000000, -2000000000}).value();
  auto sum32 = ElementwiseBinary(m32.ref(), m32.ref(), BinOp::kAdd);
  ASSERT_FALSE(sum32.ok());
  EXPECT_EQ(sum32.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace sqlarray
