// Tests for the networked front-end (ISSUE 9): wire-frame encode/decode,
// salted-hash authentication with lockout and per-user session caps, the
// NetServer/NetClient round trip (byte-identical result fingerprints vs the
// in-process ArrayServer path), typed ERROR frames for overload rejection,
// malformed/truncated/oversized-frame fuzzing, CANCEL mid-query, and
// mid-query client disconnects triggering KillQuery + WAL rollback. Built
// both plain and under -DSQLARRAY_SANITIZE=thread (tsan_net_suite).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "client/net_client.h"
#include "engine/exec.h"
#include "net/auth.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "server/server.h"
#include "sql/session.h"
#include "udfs/register.h"
#include "wal/wal.h"

namespace sqlarray {
namespace {

using engine::Value;

// ---------------------------------------------------------------------------
// Wire payloads
// ---------------------------------------------------------------------------

TEST(Wire, PayloadRoundTrip) {
  net::PayloadWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEFu);
  w.PutI32(-12);
  w.PutU64(0x0102030405060708ull);
  w.PutI64(-123456789012345ll);
  w.PutF64(3.5);
  w.PutString("hello");
  std::vector<uint8_t> blob = {1, 2, 3};
  w.PutBytes(blob);

  net::PayloadReader r(w.buffer());
  EXPECT_EQ(r.GetU8().value(), 7);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetI32().value(), -12);
  EXPECT_EQ(r.GetU64().value(), 0x0102030405060708ull);
  EXPECT_EQ(r.GetI64().value(), -123456789012345ll);
  EXPECT_EQ(r.GetF64().value(), 3.5);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_EQ(r.GetBytes().value(), blob);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, ReaderNeverOverReads) {
  net::PayloadWriter w;
  w.PutU32(100);  // claims a 100-byte string follows; nothing does
  net::PayloadReader r(w.buffer());
  EXPECT_EQ(r.GetString().status().code(), StatusCode::kInvalidArgument);
  net::PayloadReader r2(w.buffer());
  EXPECT_TRUE(r2.GetU32().ok());
  EXPECT_EQ(r2.GetU8().status().code(), StatusCode::kInvalidArgument);
}

TEST(Wire, ValueRoundTrip) {
  std::vector<Value> vals = {Value::Null(), Value::Int(42),
                             Value::Double(-2.25), Value::Str("text")};
  net::PayloadWriter w;
  for (const Value& v : vals) ASSERT_TRUE(net::AppendValue(&w, v).ok());
  net::PayloadReader r(w.buffer());
  EXPECT_TRUE(net::ReadValue(&r).value().is_null());
  EXPECT_EQ(net::ReadValue(&r).value().AsInt().value(), 42);
  EXPECT_EQ(net::ReadValue(&r).value().AsDouble().value(), -2.25);
  EXPECT_EQ(net::ReadValue(&r).value().AsString().value(), "text");
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, ErrorFrameCarriesTypedStatus) {
  Status st = Status::ResourceExhausted("queue full", 25);
  auto payload = net::EncodeError(st);
  Status back = net::DecodeError(payload);
  EXPECT_EQ(back.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(back.retry_after_ms(), 25);
  EXPECT_NE(back.message().find("queue full"), std::string::npos);
}

TEST(Wire, StatusCodeWireValuesAreFrozen) {
  // These numbers are serialized in ERROR frames; changing them breaks
  // deployed clients. Append-only.
  EXPECT_EQ(StatusCodeToWire(StatusCode::kOk), 0);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kInvalidArgument), 1);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kCorruption), 4);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kNotFound), 5);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kResourceExhausted), 7);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kCancelled), 10);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kDeadlineExceeded), 11);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kPermissionDenied), 12);
  EXPECT_EQ(StatusCodeFromWire(7), StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusCodeFromWire(999), StatusCode::kInternal);  // unknown
}

// ---------------------------------------------------------------------------
// AuthManager
// ---------------------------------------------------------------------------

TEST(Auth, AcceptsCorrectPasswordRejectsWrong) {
  net::AuthManager auth;
  ASSERT_TRUE(auth.AddUser("alice", "s3cret").ok());
  EXPECT_EQ(auth.AddUser("alice", "x").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(auth.Authenticate("alice", "s3cret").ok());
  EXPECT_EQ(auth.Authenticate("alice", "wrong").code(),
            StatusCode::kPermissionDenied);
  // Unknown users are indistinguishable from wrong passwords.
  EXPECT_EQ(auth.Authenticate("mallory", "s3cret").code(),
            StatusCode::kPermissionDenied);
}

TEST(Auth, LockoutAfterConsecutiveFailures) {
  net::AuthConfig cfg;
  cfg.max_failures = 2;
  cfg.lockout_ms = 80;
  net::AuthManager auth(cfg);
  ASSERT_TRUE(auth.AddUser("bob", "pw").ok());
  EXPECT_FALSE(auth.Authenticate("bob", "a").ok());
  EXPECT_FALSE(auth.Authenticate("bob", "b").ok());
  // Locked: even the correct password is refused, with a retry-after hint.
  Status locked = auth.Authenticate("bob", "pw");
  EXPECT_EQ(locked.code(), StatusCode::kPermissionDenied);
  EXPECT_GT(locked.retry_after_ms(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_TRUE(auth.Authenticate("bob", "pw").ok());
  // SetPassword clears a fresh lockout immediately.
  EXPECT_FALSE(auth.Authenticate("bob", "a").ok());
  EXPECT_FALSE(auth.Authenticate("bob", "b").ok());
  ASSERT_TRUE(auth.SetPassword("bob", "pw2").ok());
  EXPECT_TRUE(auth.Authenticate("bob", "pw2").ok());
}

TEST(Auth, PerUserSessionCap) {
  net::AuthConfig cfg;
  cfg.max_sessions_per_user = 2;
  net::AuthManager auth(cfg);
  ASSERT_TRUE(auth.AddUser("carol", "pw").ok());
  EXPECT_TRUE(auth.AcquireSession("carol").ok());
  EXPECT_TRUE(auth.AcquireSession("carol").ok());
  Status over = auth.AcquireSession("carol");
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(over.retry_after_ms(), 0);
  auth.ReleaseSession("carol");
  EXPECT_TRUE(auth.AcquireSession("carol").ok());
  EXPECT_EQ(auth.active_sessions("carol"), 2);
}

// ---------------------------------------------------------------------------
// NetServer + NetClient end to end
// ---------------------------------------------------------------------------

/// Registers Test.Slow(x): sleeps ~1ms per call and returns x. Keeps a
/// statement in flight long enough for CANCEL/disconnect to land mid-query.
void RegisterSlowUdf(engine::FunctionRegistry* registry) {
  engine::ScalarFunction slow;
  slow.schema = "Test";
  slow.name = "Slow";
  slow.arity = 1;
  slow.boundary = engine::Boundary::kClr;
  slow.fn = [](std::span<const Value> args,
               engine::UdfContext&) -> Result<Value> {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return args[0];
  };
  ASSERT_TRUE(registry->RegisterScalar(std::move(slow)).ok());
}

/// Byte-level digest of a result set (same shape as test_parallel's): used
/// to assert the wire path reproduces the in-process path exactly.
std::string Fingerprint(const engine::ResultSet& rs) {
  std::string out;
  for (const std::string& c : rs.columns) {
    out += c;
    out += ';';
  }
  for (const auto& row : rs.rows) {
    for (const Value& v : row) {
      out.push_back(static_cast<char>(v.kind()));
      if (v.is_null()) {
        out += "<null>";
      } else if (v.kind() == Value::Kind::kInt64) {
        int64_t x = v.AsInt().value();
        out.append(reinterpret_cast<const char*>(&x), sizeof(x));
      } else if (v.kind() == Value::Kind::kFloat64) {
        double d = v.AsDouble().value();
        out.append(reinterpret_cast<const char*>(&d), sizeof(d));
      } else if (v.kind() == Value::Kind::kString) {
        out += v.AsString().value();
      }
      out.push_back('|');
    }
    out.push_back('\n');
  }
  return out;
}

class NetTest : public ::testing::Test {
 protected:
  NetTest() : wal_(&db_), executor_(&db_, &registry_) {
    EXPECT_TRUE(udfs::RegisterAllUdfs(&registry_).ok());
    RegisterSlowUdf(&registry_);
  }

  /// Builds the full stack (ArrayServer → AuthManager → NetServer) and
  /// starts listening on an ephemeral loopback port.
  void StartStack(server::ServerConfig server_cfg = {},
                  net::AuthConfig auth_cfg = {},
                  net::NetServerConfig net_cfg = {}) {
    srv_ = std::make_unique<server::ArrayServer>(&executor_, server_cfg);
    auth_ = std::make_unique<net::AuthManager>(auth_cfg);
    ASSERT_TRUE(auth_->AddUser("alice", "s3cret").ok());
    net_ = std::make_unique<net::NetServer>(srv_.get(), auth_.get(), net_cfg);
    ASSERT_TRUE(net_->Start().ok());
  }

  void TearDown() override {
    if (net_) net_->Stop();
  }

  std::unique_ptr<client::NetClient> ConnectAuthed() {
    auto c = client::NetClient::Connect("127.0.0.1", net_->port());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    if (!c.ok()) return nullptr;
    Status st = (*c)->Authenticate("alice", "s3cret");
    EXPECT_TRUE(st.ok()) << st.ToString();
    return std::move(*c);
  }

  /// A raw connected socket for protocol-abuse tests.
  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(net_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  }

  storage::Database db_;
  wal::WalManager wal_;
  engine::FunctionRegistry registry_;
  engine::Executor executor_;
  std::unique_ptr<server::ArrayServer> srv_;
  std::unique_ptr<net::AuthManager> auth_;
  std::unique_ptr<net::NetServer> net_;
};

TEST_F(NetTest, AuthenticatedQueryMatchesInProcessFingerprint) {
  StartStack();
  auto client = ConnectAuthed();
  ASSERT_NE(client, nullptr);
  EXPECT_GE(client->session_id(), 0);

  ASSERT_TRUE(client->Execute("CREATE TABLE t (id BIGINT, v BIGINT)").ok());
  std::string values;
  for (int i = 0; i < 900; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i) + ", " + std::to_string(i * 3) + ")";
  }
  ASSERT_TRUE(client->Execute("INSERT INTO t VALUES " + values).ok());

  const std::string q =
      "SELECT id, v, v * 2 + 1 FROM t WHERE id % 7 = 0";
  // In-process reference through the same ArrayServer.
  int64_t ref_id = srv_->OpenSession();
  auto ref = srv_->Execute(ref_id, q);
  ASSERT_TRUE(ref.ok()) << ref.status.ToString();

  auto out = client->Execute(q);
  ASSERT_TRUE(out.ok()) << out.status.ToString();
  ASSERT_EQ(out.result_sets.size(), ref.result_sets.size());
  EXPECT_EQ(Fingerprint(out.result_sets.at(0)),
            Fingerprint(ref.result_sets.at(0)));
  // The profile handle crossed the wire too.
  EXPECT_GT(out.stats.rows_scanned, 0);
  EXPECT_EQ(out.stats.rows_scanned, ref.stats.rows_scanned);
  EXPECT_TRUE(srv_->CloseSession(ref_id).ok());

  EXPECT_TRUE(client->Ping().ok());
  client->Close();
  EXPECT_FALSE(client->connected());
}

TEST_F(NetTest, SmallChunksStreamLosslessly) {
  // Force many ROWS chunks (2 rows per frame) and check nothing is lost or
  // reordered across chunk boundaries.
  net::NetServerConfig net_cfg;
  net_cfg.rows_per_chunk = 2;
  StartStack({}, {}, net_cfg);
  auto client = ConnectAuthed();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Execute("CREATE TABLE c (id BIGINT)").ok());
  std::string values;
  for (int i = 0; i < 63; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i) + ")";
  }
  ASSERT_TRUE(client->Execute("INSERT INTO c VALUES " + values).ok());
  auto out = client->Execute("SELECT id FROM c; SELECT COUNT(id) FROM c");
  ASSERT_TRUE(out.ok()) << out.status.ToString();
  ASSERT_EQ(out.result_sets.size(), 2u);
  ASSERT_EQ(out.result_sets.at(0).rows.size(), 63u);
  for (int i = 0; i < 63; ++i) {
    EXPECT_EQ(out.result_sets.at(0).rows.at(i).at(0).AsInt().value(), i);
  }
  EXPECT_EQ(out.result_sets.at(1).rows.at(0).at(0).AsInt().value(), 63);
}

TEST_F(NetTest, AuthFailureAndLockoutOverTheWire) {
  net::AuthConfig auth_cfg;
  auth_cfg.max_failures = 2;
  auth_cfg.lockout_ms = 30'000;  // long enough to observe deterministically
  StartStack({}, auth_cfg);

  auto c = client::NetClient::Connect("127.0.0.1", net_->port());
  ASSERT_TRUE(c.ok());
  Status bad = (*c)->Authenticate("alice", "wrong");
  EXPECT_EQ(bad.code(), StatusCode::kPermissionDenied);
  EXPECT_LT((*c)->session_id(), 0);
  // The connection survives a failed attempt; a correct retry succeeds.
  EXPECT_TRUE((*c)->Authenticate("alice", "s3cret").ok());

  // Two more failures from a fresh connection trip the lockout; the typed
  // ERROR carries kPermissionDenied plus a retry-after hint.
  auto c2 = client::NetClient::Connect("127.0.0.1", net_->port());
  ASSERT_TRUE(c2.ok());
  EXPECT_FALSE((*c2)->Authenticate("alice", "nope").ok());
  Status locked = (*c2)->Authenticate("alice", "nope");
  EXPECT_EQ(locked.code(), StatusCode::kPermissionDenied);
  EXPECT_GT(locked.retry_after_ms(), 0);
  Status still = (*c2)->Authenticate("alice", "s3cret");
  EXPECT_EQ(still.code(), StatusCode::kPermissionDenied);
  EXPECT_GT(still.retry_after_ms(), 0);
}

TEST_F(NetTest, PerUserSessionLimitOverTheWire) {
  net::AuthConfig auth_cfg;
  auth_cfg.max_sessions_per_user = 1;
  StartStack({}, auth_cfg);
  auto first = ConnectAuthed();
  ASSERT_NE(first, nullptr);
  auto c2 = client::NetClient::Connect("127.0.0.1", net_->port());
  ASSERT_TRUE(c2.ok());
  Status over = (*c2)->Authenticate("alice", "s3cret");
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  // Releasing the first connection frees the slot.
  first->Close();
  for (int i = 0; i < 100; ++i) {
    if ((*c2)->Authenticate("alice", "s3cret").ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE((*c2)->session_id(), 0);
}

TEST_F(NetTest, ConcurrentConnectionsAreDeterministic) {
  StartStack();
  {
    auto setup = ConnectAuthed();
    ASSERT_NE(setup, nullptr);
    ASSERT_TRUE(setup->Execute("CREATE TABLE d (id BIGINT, v BIGINT)").ok());
    std::string values;
    for (int i = 0; i < 400; ++i) {
      if (i > 0) values += ", ";
      values += "(" + std::to_string(i) + ", " + std::to_string(i * i) + ")";
    }
    ASSERT_TRUE(setup->Execute("INSERT INTO d VALUES " + values).ok());
  }
  const std::string q = "SELECT id, v FROM d WHERE v % 5 = 1";
  int64_t ref_id = srv_->OpenSession();
  auto ref = srv_->Execute(ref_id, q);
  ASSERT_TRUE(ref.ok());
  const std::string want = Fingerprint(ref.result_sets.at(0));
  ASSERT_TRUE(srv_->CloseSession(ref_id).ok());

  constexpr int kClients = 6;
  constexpr int kReps = 4;
  std::atomic<int> mismatches{0}, failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto c = client::NetClient::Connect("127.0.0.1", net_->port());
      if (!c.ok() || !(*c)->Authenticate("alice", "s3cret").ok()) {
        ++failures;
        return;
      }
      for (int rep = 0; rep < kReps; ++rep) {
        auto out = (*c)->Execute(q);
        if (!out.ok()) {
          ++failures;
          return;
        }
        if (Fingerprint(out.result_sets.at(0)) != want) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(NetTest, OverloadRejectionIsTypedErrorWithRetryAfter) {
  server::ServerConfig cfg;
  cfg.admission.max_concurrent = 1;
  cfg.admission.max_queue = 1;
  StartStack(cfg);
  {
    auto setup = ConnectAuthed();
    ASSERT_NE(setup, nullptr);
    ASSERT_TRUE(setup->Execute("CREATE TABLE o (id BIGINT, v BIGINT)").ok());
    std::string values;
    for (int i = 0; i < 60; ++i) {
      if (i > 0) values += ", ";
      values += "(" + std::to_string(i) + ", 1)";
    }
    ASSERT_TRUE(setup->Execute("INSERT INTO o VALUES " + values).ok());
  }
  std::atomic<int> rejected{0}, succeeded{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto c = client::NetClient::Connect("127.0.0.1", net_->port());
      if (!c.ok() || !(*c)->Authenticate("alice", "s3cret").ok()) {
        ++other;
        return;
      }
      auto r = (*c)->Execute("SELECT SUM(Test.Slow(v)) FROM o");
      if (r.ok()) {
        ++succeeded;
      } else if (r.status.code() == StatusCode::kResourceExhausted) {
        // The rejection crossed the wire as a typed ERROR frame: frozen
        // numeric code plus the admission controller's retry-after hint.
        EXPECT_GT(r.retry_after_ms, 0);
        EXPECT_EQ(r.error_code,
                  StatusCodeToWire(StatusCode::kResourceExhausted));
        ++rejected;
      } else {
        ++other;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(succeeded.load(), 1);
  EXPECT_GE(rejected.load(), 1);
}

TEST_F(NetTest, CancelKillsInFlightStatement) {
  StartStack();
  auto client = ConnectAuthed();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Execute("CREATE TABLE k (id BIGINT, v BIGINT)").ok());
  std::string values;
  for (int i = 0; i < 2000; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i) + ", 1)";
  }
  ASSERT_TRUE(client->Execute("INSERT INTO k VALUES " + values).ok());

  std::atomic<int> code{-1};
  std::thread runner([&] {
    auto r = client->Execute("SELECT SUM(Test.Slow(v)) FROM k");
    code.store(r.ok() ? 0 : static_cast<int>(r.status.code()));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(client->Cancel().ok());
  runner.join();
  EXPECT_EQ(code.load(), static_cast<int>(StatusCode::kCancelled));

  // The connection and session survive the kill.
  auto rs = client->Execute("SELECT COUNT(id) FROM k");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.result_sets.at(0).rows.at(0).at(0).AsInt().value(), 2000);
}

TEST_F(NetTest, DisconnectMidQueryKillsAndRollsBack) {
  StartStack();
  {
    auto setup = ConnectAuthed();
    ASSERT_NE(setup, nullptr);
    ASSERT_TRUE(setup->Execute("CREATE TABLE w (id BIGINT, v BIGINT)").ok());
    std::string values;
    for (int i = 0; i < 2000; ++i) {
      if (i > 0) values += ", ";
      values += "(" + std::to_string(i) + ", 1)";
    }
    ASSERT_TRUE(setup->Execute("INSERT INTO w VALUES " + values).ok());
  }

  // Raw handshake so we can vanish without a GOODBYE: HELLO, AUTH, then a
  // slow destructive statement inside an explicit transaction.
  int fd = RawConnect();
  {
    net::PayloadWriter hello;
    hello.PutU32(net::kProtocolVersion);
    hello.PutString("rude-client");
    ASSERT_TRUE(net::WriteFrame(fd, net::FrameType::kHello, hello.buffer())
                    .ok());
    auto reply = net::ReadFrame(fd);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, net::FrameType::kHello);
    net::PayloadWriter creds;
    creds.PutString("alice");
    creds.PutString("s3cret");
    ASSERT_TRUE(
        net::WriteFrame(fd, net::FrameType::kAuth, creds.buffer()).ok());
    auto authed = net::ReadFrame(fd);
    ASSERT_TRUE(authed.ok());
    ASSERT_EQ(authed->type, net::FrameType::kAuth);
    net::PayloadWriter q;
    q.PutString("BEGIN; DELETE FROM w WHERE Test.Slow(id) >= 0");
    ASSERT_TRUE(net::WriteFrame(fd, net::FrameType::kQuery, q.buffer()).ok());
  }
  // Let the statement start deleting, then drop the connection cold.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_EQ(srv_->open_sessions(), 1);
  ::close(fd);

  // The disconnect fires KillQuery; the kill unwinds the open transaction
  // via WAL rollback and teardown closes the session.
  for (int i = 0; i < 400 && srv_->open_sessions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(srv_->open_sessions(), 0);
  EXPECT_EQ(auth_->active_sessions("alice"), 0);

  sql::Session check(&executor_);
  auto rs = check.Execute("SELECT COUNT(id) FROM w");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().at(0).rows.at(0).at(0).AsInt().value(), 2000)
      << "aborted DELETE must leave no partial effects";
}

// ---------------------------------------------------------------------------
// Protocol abuse: the server replies with a typed ERROR (or just drops the
// connection) and keeps serving well-formed clients afterwards.
// ---------------------------------------------------------------------------

class NetFuzzTest : public NetTest {
 protected:
  /// Asserts the server still answers a clean client end to end.
  void ExpectServerAlive() {
    auto c = ConnectAuthed();
    ASSERT_NE(c, nullptr);
    auto out = c->Execute("SELECT 1 + 2");
    ASSERT_TRUE(out.ok()) << out.status.ToString();
    EXPECT_EQ(out.result_sets.at(0).rows.at(0).at(0).AsInt().value(), 3);
  }

  /// Reads one frame and expects a typed ERROR with the given code.
  void ExpectErrorReply(int fd, StatusCode code) {
    auto frame = net::ReadFrame(fd);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, net::FrameType::kError);
    Status st = net::DecodeError(frame->payload);
    EXPECT_EQ(st.code(), code);
  }

  /// Hand-builds a 16-byte header (little-endian fields) + payload.
  static std::vector<uint8_t> RawFrame(uint32_t magic, uint8_t version,
                                       uint8_t type, uint16_t flags,
                                       uint32_t len, uint32_t crc,
                                       std::vector<uint8_t> payload = {}) {
    std::vector<uint8_t> out(16);
    auto put32 = [&](size_t at, uint32_t v) {
      out[at] = v & 0xFF;
      out[at + 1] = (v >> 8) & 0xFF;
      out[at + 2] = (v >> 16) & 0xFF;
      out[at + 3] = (v >> 24) & 0xFF;
    };
    put32(0, magic);
    out[4] = version;
    out[5] = type;
    out[6] = flags & 0xFF;
    out[7] = flags >> 8;
    put32(8, len);
    put32(12, crc);
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
  }
};

TEST_F(NetFuzzTest, GarbageBytesGetTypedErrorAndServerSurvives) {
  StartStack();
  int fd = RawConnect();
  const char garbage[] = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, 0), 0);
  ExpectErrorReply(fd, StatusCode::kInvalidArgument);
  ::close(fd);
  ExpectServerAlive();
}

TEST_F(NetFuzzTest, OversizedFrameIsRejectedBeforeAllocation) {
  StartStack();
  int fd = RawConnect();
  // Claims a 256 MiB payload — over the 16 MiB cap; rejected on the header
  // alone, no payload needed.
  auto raw = RawFrame(net::kFrameMagic, net::kProtocolVersion,
                      static_cast<uint8_t>(net::FrameType::kQuery), 0,
                      256u * 1024 * 1024, 0);
  ASSERT_GT(::send(fd, raw.data(), raw.size(), 0), 0);
  ExpectErrorReply(fd, StatusCode::kInvalidArgument);
  ::close(fd);
  ExpectServerAlive();
}

TEST_F(NetFuzzTest, WrongVersionUnknownTypeAndFlagsAreRejected) {
  StartStack();
  struct Case {
    uint8_t version;
    uint8_t type;
    uint16_t flags;
  } cases[] = {
      {99, static_cast<uint8_t>(net::FrameType::kHello), 0},  // bad version
      {net::kProtocolVersion, 200, 0},                        // unknown type
      {net::kProtocolVersion, static_cast<uint8_t>(net::FrameType::kHello),
       0xBEEF},  // reserved flags set
  };
  for (const Case& c : cases) {
    int fd = RawConnect();
    auto raw = RawFrame(net::kFrameMagic, c.version, c.type, c.flags, 0, 0);
    ASSERT_GT(::send(fd, raw.data(), raw.size(), 0), 0);
    ExpectErrorReply(fd, StatusCode::kInvalidArgument);
    ::close(fd);
  }
  ExpectServerAlive();
}

TEST_F(NetFuzzTest, CorruptPayloadCrcIsCorruption) {
  StartStack();
  int fd = RawConnect();
  std::vector<uint8_t> payload = {'h', 'i'};
  auto raw = RawFrame(net::kFrameMagic, net::kProtocolVersion,
                      static_cast<uint8_t>(net::FrameType::kHello), 0,
                      static_cast<uint32_t>(payload.size()),
                      0xBADC0DEu,  // wrong CRC for "hi"
                      payload);
  ASSERT_GT(::send(fd, raw.data(), raw.size(), 0), 0);
  ExpectErrorReply(fd, StatusCode::kCorruption);
  ::close(fd);
  ExpectServerAlive();
}

TEST_F(NetFuzzTest, TruncatedFrameDropsConnectionQuietly) {
  StartStack();
  int fd = RawConnect();
  // A valid header promising 100 payload bytes, then hang up after 3.
  std::vector<uint8_t> payload = {1, 2, 3};
  auto raw = RawFrame(net::kFrameMagic, net::kProtocolVersion,
                      static_cast<uint8_t>(net::FrameType::kHello), 0, 100, 0,
                      payload);
  ASSERT_GT(::send(fd, raw.data(), raw.size(), 0), 0);
  ::close(fd);
  // Nothing to assert on this socket — the point is the server must not
  // crash, leak the handler, or wedge the listener.
  ExpectServerAlive();
}

TEST_F(NetFuzzTest, QueryBeforeAuthIsRefused) {
  StartStack();
  int fd = RawConnect();
  net::PayloadWriter hello;
  hello.PutU32(net::kProtocolVersion);
  hello.PutString("eager");
  ASSERT_TRUE(
      net::WriteFrame(fd, net::FrameType::kHello, hello.buffer()).ok());
  auto reply = net::ReadFrame(fd);
  ASSERT_TRUE(reply.ok());
  // Skip AUTH and go straight to QUERY: refused with a typed ERROR.
  net::PayloadWriter q;
  q.PutString("SELECT 1");
  ASSERT_TRUE(net::WriteFrame(fd, net::FrameType::kQuery, q.buffer()).ok());
  ExpectErrorReply(fd, StatusCode::kPermissionDenied);
  ::close(fd);
  ExpectServerAlive();
}

// ---------------------------------------------------------------------------
// ArrayServer API redesign details that back the wire behavior
// ---------------------------------------------------------------------------

TEST_F(NetTest, CloseSessionIsIdempotent) {
  StartStack();
  int64_t id = srv_->OpenSession();
  EXPECT_TRUE(srv_->CloseSession(id).ok());
  EXPECT_TRUE(srv_->CloseSession(id).ok());    // second close: still OK
  EXPECT_TRUE(srv_->CloseSession(9999).ok());  // never existed: still OK
}

TEST_F(NetTest, StatementOutcomeCarriesWireCode) {
  StartStack();
  int64_t id = srv_->OpenSession();
  auto bad = srv_->Execute(id, "SELEC nonsense");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error_code, StatusCodeToWire(bad.status.code()));
  auto gone = srv_->Execute(9999, "SELECT 1");
  EXPECT_EQ(gone.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(gone.error_code, StatusCodeToWire(StatusCode::kNotFound));
  EXPECT_TRUE(srv_->CloseSession(id).ok());
}

}  // namespace
}  // namespace sqlarray
