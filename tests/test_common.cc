// Tests for Status/Result, dimension math, and byte codecs.
#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/dims.h"
#include "common/rng.h"
#include "common/status.h"

namespace sqlarray {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(Status, CopyIsCheapAndEqual) {
  Status a = Status::Corruption("x");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.code(), StatusCode::kCorruption);
}

TEST(Status, AllCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kInternal); ++i) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(i)), "UNKNOWN");
  }
}

TEST(Status, EveryCodeNameIsExact) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTypeMismatch), "TYPE_MISMATCH");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "CORRUPTION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "ALREADY_EXISTS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Result<int> Doubled(Result<int> in) {
  SQLARRAY_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_EQ(Doubled(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

TEST(Result, ErrorMessageSurvivesMoves) {
  Result<std::string> a(Status::Corruption("page 17 unreadable"));
  Result<std::string> b = std::move(a);
  Result<std::string> c = std::move(b);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(c.status().message(), "page 17 unreadable");
}

Result<std::vector<int>> Relay(Result<std::vector<int>> in) {
  SQLARRAY_ASSIGN_OR_RETURN(std::vector<int> v, std::move(in));
  return v;
}

TEST(Result, ErrorMessageSurvivesMacroRelayChain) {
  // The message attached at the origin must arrive intact after several
  // SQLARRAY_ASSIGN_OR_RETURN hops — the path every storage fault takes on
  // its way from the disk up to the session.
  auto r = Relay(Relay(Relay(Status::Corruption("checksum mismatch on page 3"))));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.status().message(), "checksum mismatch on page 3");
}

TEST(Result, MovedFromValueResultIsReusable) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
  r = Status::NotFound("gone");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  r = std::vector<int>{4, 5};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(Crc32c, KnownAnswerVectors) {
  // RFC 3720 appendix test vector for CRC32C (Castagnoli).
  const char* check = "123456789";
  EXPECT_EQ(Crc32c(reinterpret_cast<const uint8_t*>(check), 9), 0xE3069283u);
  // Empty input is the seed itself.
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  // 32 zero bytes (iSCSI test vector).
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // Incremental computation matches one-shot.
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  uint32_t oneshot = Crc32c(data.data(), data.size());
  uint32_t split = Crc32c(data.data() + 400, 600,
                          Crc32c(data.data(), 400));
  EXPECT_EQ(oneshot, split);
  // Sensitivity: any single-bit difference changes the sum.
  data[500] ^= 0x10;
  EXPECT_NE(Crc32c(data.data(), data.size()), oneshot);
}

TEST(Dims, ElementCountAndStrides) {
  Dims d{3, 4, 5};
  EXPECT_EQ(ElementCount(d), 60);
  Dims s = ColumnMajorStrides(d);
  EXPECT_EQ(s, (Dims{1, 3, 12}));
}

TEST(Dims, ElementCountOfEmptyDimIsZero) {
  Dims d{3, 0, 5};
  EXPECT_EQ(ElementCount(d), 0);
}

TEST(Dims, LinearIndexColumnMajor) {
  Dims d{3, 4};
  // (i, j) -> i + 3j: first index varies fastest.
  EXPECT_EQ(LinearIndex(d, Dims{0, 0}).value(), 0);
  EXPECT_EQ(LinearIndex(d, Dims{1, 0}).value(), 1);
  EXPECT_EQ(LinearIndex(d, Dims{0, 1}).value(), 3);
  EXPECT_EQ(LinearIndex(d, Dims{2, 3}).value(), 11);
}

TEST(Dims, LinearIndexValidation) {
  Dims d{3, 4};
  EXPECT_EQ(LinearIndex(d, Dims{3, 0}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(LinearIndex(d, Dims{-1, 0}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(LinearIndex(d, Dims{0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Dims, UnlinearizeRoundTrip) {
  Dims d{3, 4, 5};
  for (int64_t lin = 0; lin < 60; ++lin) {
    Dims idx = Unlinearize(d, lin);
    EXPECT_EQ(LinearIndex(d, idx).value(), lin);
  }
}

TEST(Dims, ValidateRejectsEmptyAndNegative) {
  EXPECT_FALSE(ValidateDims(Dims{}).ok());
  EXPECT_FALSE(ValidateDims(Dims{2, -1}).ok());
  EXPECT_TRUE(ValidateDims(Dims{2, 0, 3}).ok());
}

TEST(Bytes, RoundTripScalars) {
  uint8_t buf[8];
  EncodeLE<int32_t>(buf, -123456);
  EXPECT_EQ(DecodeLE<int32_t>(buf), -123456);
  EncodeLE<double>(buf, 3.14159);
  EXPECT_DOUBLE_EQ(DecodeLE<double>(buf), 3.14159);
  EncodeLE<int16_t>(buf, -32768);
  EXPECT_EQ(DecodeLE<int16_t>(buf), -32768);
}

TEST(Bytes, LittleEndianLayout) {
  uint8_t buf[4];
  EncodeLE<uint32_t>(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(Bytes, AppendGrowsVector) {
  std::vector<uint8_t> v;
  AppendLE<int64_t>(&v, 7);
  AppendLE<int16_t>(&v, 1);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(DecodeLE<int64_t>(v.data()), 7);
}

TEST(Rng, DeterministicWithSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    int64_t k = rng.UniformInt(-5, 5);
    EXPECT_GE(k, -5);
    EXPECT_LE(k, 5);
  }
}

}  // namespace
}  // namespace sqlarray
