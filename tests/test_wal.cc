// Tests for the write-ahead log (ISSUE 5): the record codec, the sealed-page
// log writer and scanner (torn tails, epoch resync), transactions with
// in-memory rollback, group commit, fuzzy checkpoints with crash steps, SQL
// BEGIN/COMMIT/ROLLBACK/CHECKPOINT, EXPLAIN ANALYZE for DML — and the
// headline crash-point torture matrix: kill the "process" at every crash
// site of a mixed insert/delete/checkpoint workload, recover, and verify
// that every committed transaction survives and no uncommitted one does.
// Built both plain and under -DSQLARRAY_SANITIZE=thread (tsan_wal_suite).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "engine/exec.h"
#include "mvcc/mvcc.h"
#include "obs/profile.h"
#include "sql/session.h"
#include "storage/fault.h"
#include "storage/table.h"
#include "storage/verify.h"
#include "udfs/register.h"
#include "wal/log.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace sqlarray {
namespace {

using engine::Value;
using storage::ColumnType;
using wal::LogDevice;
using wal::LogScan;
using wal::LogWriter;
using wal::RecordType;
using wal::WalConfig;
using wal::WalManager;
using wal::WalRecord;

storage::Schema KeyValueSchema() {
  return storage::Schema::Create(
             {{"id", ColumnType::kInt64, 0}, {"v", ColumnType::kInt64, 0}})
      .value();
}

/// FNV-1a over every allocated data page — the byte-identity fingerprint the
/// idempotence and determinism properties compare.
uint64_t DiskFingerprint(storage::SimulatedDisk* disk) {
  uint64_t h = 1469598103934665603ull;
  storage::Page page;
  int64_t n = disk->page_count();
  for (int64_t id = 1; id <= n; ++id) {
    Status st = disk->ReadPage(static_cast<storage::PageId>(id), &page);
    EXPECT_TRUE(st.ok()) << st.message();
    for (int64_t i = 0; i < storage::kPageSize; ++i) {
      h ^= page.data()[i];
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Asserts that `name` holds exactly the rows of `want` (key -> v column).
void ExpectTableMatches(storage::Database* db, const std::string& name,
                        const std::map<int64_t, int64_t>& want) {
  Result<storage::Table*> table = db->GetTable(name);
  ASSERT_TRUE(table.ok()) << table.status().message();
  EXPECT_EQ((*table)->row_count(), static_cast<int64_t>(want.size()));
  for (const auto& [k, v] : want) {
    Result<std::optional<storage::Row>> row = (*table)->Lookup(k);
    ASSERT_TRUE(row.ok()) << row.status().message();
    ASSERT_TRUE(row->has_value()) << name << " lost key " << k;
    EXPECT_EQ(std::get<int64_t>((**row)[1]), v) << name << " key " << k;
  }
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

TEST(WalRecordCodec, RoundTripsEveryType) {
  {
    WalRecord r;
    r.type = RecordType::kBegin;
    r.txn = 7;
    WalRecord back = wal::DecodeRecord(wal::EncodeRecord(r)).value();
    EXPECT_EQ(back.type, RecordType::kBegin);
    EXPECT_EQ(back.txn, 7u);
  }
  {
    WalRecord r;
    r.type = RecordType::kPageWrite;
    r.txn = 3;
    r.page_id = 42;
    for (int64_t i = 0; i < storage::kPageSize; ++i) {
      r.page_image.data()[i] = static_cast<uint8_t>(i * 31 + 5);
    }
    WalRecord back = wal::DecodeRecord(wal::EncodeRecord(r)).value();
    EXPECT_EQ(back.type, RecordType::kPageWrite);
    EXPECT_EQ(back.page_id, 42u);
    EXPECT_EQ(0, std::memcmp(back.page_image.data(), r.page_image.data(),
                             storage::kPageSize));
  }
  {
    WalRecord r;
    r.type = RecordType::kCommit;
    r.txn = 11;
    r.catalog.push_back({"t0", {}, 9});
    r.has_free_list = true;
    r.free_list = {4, 8, 15};
    WalRecord back = wal::DecodeRecord(wal::EncodeRecord(r)).value();
    ASSERT_EQ(back.catalog.size(), 1u);
    EXPECT_EQ(back.catalog[0].name, "t0");
    EXPECT_EQ(back.catalog[0].root, 9u);
    EXPECT_TRUE(back.has_free_list);
    EXPECT_EQ(back.free_list, (std::vector<storage::PageId>{4, 8, 15}));
  }
  {
    WalRecord r;
    r.type = RecordType::kCheckpoint;
    r.txn = wal::kSystemTxn;
    wal::CatalogEntry entry;
    entry.name = "measurements";
    entry.columns = {{"id", ColumnType::kInt64, 0},
                     {"payload", ColumnType::kVarBinaryMax, 0},
                     {"short", ColumnType::kBinary, 96}};
    entry.root = 77;
    r.catalog.push_back(entry);
    r.has_free_list = true;
    r.free_list = {100};
    WalRecord back = wal::DecodeRecord(wal::EncodeRecord(r)).value();
    ASSERT_EQ(back.catalog.size(), 1u);
    ASSERT_EQ(back.catalog[0].columns.size(), 3u);
    EXPECT_EQ(back.catalog[0].columns[1].name, "payload");
    EXPECT_EQ(back.catalog[0].columns[1].type, ColumnType::kVarBinaryMax);
    EXPECT_EQ(back.catalog[0].columns[2].capacity, 96);
    EXPECT_EQ(back.catalog[0].root, 77u);
  }
}

TEST(WalRecordCodec, RejectsMalformedPayloads) {
  EXPECT_FALSE(wal::DecodeRecord({}).ok());

  WalRecord r;
  r.type = RecordType::kPageWrite;
  r.page_id = 1;
  std::vector<uint8_t> bytes = wal::EncodeRecord(r);
  std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + 40);
  EXPECT_FALSE(wal::DecodeRecord(truncated).ok());

  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(wal::DecodeRecord(trailing).ok());

  std::vector<uint8_t> bad_type = bytes;
  bad_type[0] = 99;
  EXPECT_FALSE(wal::DecodeRecord(bad_type).ok());
}

// ---------------------------------------------------------------------------
// Log writer / scanner
// ---------------------------------------------------------------------------

std::vector<uint8_t> MarkerRecord(uint64_t txn) {
  WalRecord r;
  r.type = RecordType::kBegin;
  r.txn = txn;
  return wal::EncodeRecord(r);
}

std::vector<uint8_t> PageRecord(uint64_t txn, storage::PageId id,
                                uint8_t fill) {
  WalRecord r;
  r.type = RecordType::kPageWrite;
  r.txn = txn;
  r.page_id = id;
  for (int64_t i = 0; i < storage::kPageSize; ++i) r.page_image.data()[i] = fill;
  return wal::EncodeRecord(r);
}

TEST(WalLog, AppendFlushScanRoundTrip) {
  LogDevice device;
  LogWriter writer(&device);

  // A page-image record (> one log page, so it spans) between two markers.
  ASSERT_TRUE(writer.Append(MarkerRecord(1)).ok());
  ASSERT_TRUE(writer.Append(PageRecord(1, 5, 0xAB)).ok());
  wal::Lsn end = 0;
  ASSERT_TRUE(writer.Append(MarkerRecord(2), &end).ok());
  ASSERT_TRUE(writer.FlushTo(end).ok());
  EXPECT_GE(writer.durable_lsn(), end);

  // A fourth record appended but never flushed must stay invisible.
  ASSERT_TRUE(writer.Append(MarkerRecord(3)).ok());

  LogScan scan = wal::ScanLog(&device, 0).value();
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.records[0].txn, 1u);
  EXPECT_EQ(scan.records[1].type, RecordType::kPageWrite);
  EXPECT_EQ(scan.records[1].page_id, 5u);
  EXPECT_EQ(scan.records[1].page_image.data()[100], 0xAB);
  EXPECT_EQ(scan.records[2].txn, 2u);
  // LSNs are strictly increasing byte positions.
  EXPECT_LT(scan.records[0].lsn, scan.records[1].lsn);
  EXPECT_LT(scan.records[1].lsn, scan.records[2].lsn);
  EXPECT_EQ(scan.records[2].end_lsn, end);
}

TEST(WalLog, TornTailTruncatesAtFirstInvalidRecord) {
  LogDevice device;
  LogWriter writer(&device);
  ASSERT_TRUE(writer.Append(MarkerRecord(1)).ok());
  ASSERT_TRUE(writer.FlushAll().ok());
  ASSERT_TRUE(writer.Append(PageRecord(2, 9, 0x5A)).ok());
  ASSERT_TRUE(writer.FlushAll().ok());

  // Tear the tail: corrupt the last log disk page (the media never finished
  // writing it).
  int64_t last = device.disk()->page_count();
  ASSERT_TRUE(device.disk()->CorruptPageByte(
                        static_cast<storage::PageId>(last), 4000)
                  .ok());

  LogScan scan = wal::ScanLog(&device, 0).value();
  EXPECT_TRUE(scan.truncated);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].txn, 1u);
}

TEST(WalLog, EpochResyncSkipsDeadRegionAfterResume) {
  LogDevice device;
  {
    LogWriter writer(&device);
    ASSERT_TRUE(writer.Append(MarkerRecord(1)).ok());
    ASSERT_TRUE(writer.FlushAll().ok());
    // A multi-page record whose flush "tears": its tail page dies.
    ASSERT_TRUE(writer.Append(PageRecord(2, 9, 0x77)).ok());
    ASSERT_TRUE(writer.FlushAll().ok());
  }
  int64_t last = device.disk()->page_count();
  ASSERT_TRUE(device.disk()->CorruptPageByte(
                        static_cast<storage::PageId>(last), 512)
                  .ok());

  LogScan crash = wal::ScanLog(&device, 0).value();
  EXPECT_TRUE(crash.truncated);
  ASSERT_EQ(crash.records.size(), 1u);

  // Resume a fresh writer where the scan says (next epoch), as recovery
  // does, and append a new record over the dead region.
  LogWriter resumed(&device);
  resumed.Reset(crash.resume_page, crash.resume_lsn, crash.resume_epoch);
  ASSERT_TRUE(resumed.Append(MarkerRecord(3)).ok());
  ASSERT_TRUE(resumed.FlushAll().ok());

  // Re-scan: the stranded prefix of the torn record is a dead region the
  // epoch bump lets the reader skip; both live records come back.
  LogScan scan = wal::ScanLog(&device, 0).value();
  EXPECT_FALSE(scan.truncated);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].txn, 1u);
  EXPECT_EQ(scan.records[1].txn, 3u);
  EXPECT_GT(scan.dead_bytes_skipped, 0);
}

// ---------------------------------------------------------------------------
// WalManager: transactions, rollback, crash, recovery
// ---------------------------------------------------------------------------

/// Creates `name` under the WAL (so recovery can re-attach it).
storage::Table* CreateLoggedTable(storage::Database* db, WalManager* w,
                                  const std::string& name) {
  storage::Table* table = db->CreateTable(name, KeyValueSchema()).value();
  EXPECT_TRUE(w->NoteTableCreated(wal::kSystemTxn, table).ok());
  return table;
}

/// One committed transaction inserting [base, base+n) with value `val`.
void CommitInserts(storage::Database* db, WalManager* w,
                   const std::string& name, int64_t base, int64_t n,
                   int64_t val) {
  storage::Table* table = db->GetTable(name).value();
  uint64_t txn = w->Begin().value();
  ASSERT_TRUE(w->NoteTableTouched(txn, table).ok());
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(table->Insert({base + i, val}).ok());
  }
  ASSERT_TRUE(w->Commit(txn).ok());
}

TEST(WalManager, CommittedTransactionSurvivesCrash) {
  storage::Database db;
  WalManager w(&db);
  CreateLoggedTable(&db, &w, "t");
  CommitInserts(&db, &w, "t", 0, 50, 1);
  CommitInserts(&db, &w, "t", 100, 50, 2);

  w.SimulateCrash();
  wal::RecoveryStats stats = w.Recover().value();
  EXPECT_EQ(stats.txns_committed, 2);
  EXPECT_EQ(stats.txns_lost, 0);
  EXPECT_EQ(stats.tables_attached, 1);

  std::map<int64_t, int64_t> want;
  for (int64_t i = 0; i < 50; ++i) want[i] = 1;
  for (int64_t i = 100; i < 150; ++i) want[i] = 2;
  ExpectTableMatches(&db, "t", want);
  EXPECT_TRUE(storage::VerifyDatabase(&db).issues.empty());
}

TEST(WalManager, UncommittedTransactionVanishesOnCrash) {
  storage::Database db;
  WalManager w(&db);
  storage::Table* table = CreateLoggedTable(&db, &w, "t");
  CommitInserts(&db, &w, "t", 0, 10, 1);

  // In-flight at the crash: logged, flushed (the flush must not promote it),
  // never committed.
  uint64_t txn = w.Begin().value();
  ASSERT_TRUE(w.NoteTableTouched(txn, table).ok());
  for (int64_t i = 100; i < 140; ++i) {
    ASSERT_TRUE(table->Insert({i, int64_t{9}}).ok());
  }
  ASSERT_TRUE(w.log_writer()->FlushAll().ok());

  w.SimulateCrash();
  wal::RecoveryStats stats = w.Recover().value();
  EXPECT_EQ(stats.txns_committed, 1);
  EXPECT_EQ(stats.txns_lost, 1);

  std::map<int64_t, int64_t> want;
  for (int64_t i = 0; i < 10; ++i) want[i] = 1;
  ExpectTableMatches(&db, "t", want);
  EXPECT_TRUE(storage::VerifyDatabase(&db).issues.empty());
}

TEST(WalManager, RollbackRestoresPreTransactionState) {
  storage::Database db;
  WalManager w(&db);
  storage::Table* table = CreateLoggedTable(&db, &w, "t");
  CommitInserts(&db, &w, "t", 0, 30, 1);

  uint64_t txn = w.Begin().value();
  ASSERT_TRUE(w.NoteTableTouched(txn, table).ok());
  for (int64_t i = 500; i < 560; ++i) {
    ASSERT_TRUE(table->Insert({i, int64_t{9}}).ok());
  }
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table->Delete(i).value());
  }
  // A table created inside the transaction must vanish with it.
  storage::Table* created = db.CreateTable("scratch", KeyValueSchema()).value();
  ASSERT_TRUE(w.NoteTableCreated(txn, created).ok());
  ASSERT_TRUE(w.Rollback(txn).ok());

  std::map<int64_t, int64_t> want;
  for (int64_t i = 0; i < 30; ++i) want[i] = 1;
  ExpectTableMatches(&db, "t", want);
  EXPECT_FALSE(db.GetTable("scratch").ok());
  EXPECT_TRUE(storage::VerifyDatabase(&db).issues.empty());

  // And the rollback itself survives a crash: replay must not resurrect
  // the aborted writes.
  w.SimulateCrash();
  ASSERT_TRUE(w.Recover().ok());
  ExpectTableMatches(&db, "t", want);
}

TEST(WalManager, RecoveryIsIdempotent) {
  storage::Database db;
  WalManager w(&db);
  CreateLoggedTable(&db, &w, "t");
  CommitInserts(&db, &w, "t", 0, 80, 1);
  ASSERT_TRUE(w.Checkpoint().ok());
  CommitInserts(&db, &w, "t", 200, 80, 2);

  w.SimulateCrash();
  ASSERT_TRUE(w.Recover().ok());
  uint64_t fp1 = 0, fp2 = 0;
  ASSERT_NO_FATAL_FAILURE(fp1 = DiskFingerprint(db.disk()));
  // Replaying the same log again must be a byte-identical no-op.
  ASSERT_TRUE(w.Recover().ok());
  ASSERT_NO_FATAL_FAILURE(fp2 = DiskFingerprint(db.disk()));
  EXPECT_EQ(fp1, fp2);

  std::map<int64_t, int64_t> want;
  for (int64_t i = 0; i < 80; ++i) want[i] = 1;
  for (int64_t i = 200; i < 280; ++i) want[i] = 2;
  ExpectTableMatches(&db, "t", want);
}

TEST(WalManager, TornLogTailRecoversPrefixAndResumes) {
  storage::Database db;
  WalManager w(&db);
  CreateLoggedTable(&db, &w, "t");
  CommitInserts(&db, &w, "t", 0, 20, 1);    // txn A
  CommitInserts(&db, &w, "t", 100, 20, 2);  // txn B
  CommitInserts(&db, &w, "t", 200, 40, 3);  // txn C — becomes the torn tail

  // The media tears the last log page: C's commit never fully landed.
  LogDevice* device = w.log_device();
  int64_t last = device->disk()->page_count();
  ASSERT_TRUE(device->disk()
                  ->CorruptPageByte(static_cast<storage::PageId>(last), 1024)
                  .ok());

  w.SimulateCrash();
  wal::RecoveryStats stats = w.Recover().value();
  EXPECT_TRUE(stats.truncated_tail);

  // A and B are intact; C is gone (wholly or — never — partially: the row
  // count must match an exact prefix of committed transactions).
  std::map<int64_t, int64_t> want;
  for (int64_t i = 0; i < 20; ++i) want[i] = 1;
  for (int64_t i = 100; i < 120; ++i) want[i] = 2;
  ExpectTableMatches(&db, "t", want);

  // The log must keep working past the scar: a post-recovery transaction
  // commits, survives another crash, and the dead region stays skipped.
  CommitInserts(&db, &w, "t", 300, 20, 4);
  w.SimulateCrash();
  ASSERT_TRUE(w.Recover().ok());
  for (int64_t i = 300; i < 320; ++i) want[i] = 4;
  ExpectTableMatches(&db, "t", want);
  EXPECT_TRUE(storage::VerifyDatabase(&db).issues.empty());
}

TEST(WalManager, CheckpointCrashAtEveryStepRecovers) {
  for (int step = 1; step <= 4; ++step) {
    SCOPED_TRACE("checkpoint crash step " + std::to_string(step));
    storage::Database db;
    WalManager w(&db);
    CreateLoggedTable(&db, &w, "t");
    CommitInserts(&db, &w, "t", 0, 60, 1);
    ASSERT_TRUE(w.Checkpoint().ok());  // a valid earlier checkpoint exists
    CommitInserts(&db, &w, "t", 100, 60, 2);

    w.set_checkpoint_crash_step(step);
    Status st = w.Checkpoint();
    ASSERT_FALSE(st.ok());

    w.SimulateCrash();
    wal::RecoveryStats stats = w.Recover().value();
    EXPECT_TRUE(stats.used_checkpoint);

    std::map<int64_t, int64_t> want;
    for (int64_t i = 0; i < 60; ++i) want[i] = 1;
    for (int64_t i = 100; i < 160; ++i) want[i] = 2;
    ExpectTableMatches(&db, "t", want);
    EXPECT_TRUE(storage::VerifyDatabase(&db).issues.empty());

    // The half-finished checkpoint must not have wedged the log.
    CommitInserts(&db, &w, "t", 300, 10, 3);
    ASSERT_TRUE(w.Checkpoint().ok());
    w.SimulateCrash();
    ASSERT_TRUE(w.Recover().ok());
    for (int64_t i = 300; i < 310; ++i) want[i] = 3;
    ExpectTableMatches(&db, "t", want);
  }
}

TEST(WalManager, CheckpointShortensReplay) {
  storage::Database db;
  WalManager w(&db);
  CreateLoggedTable(&db, &w, "t");
  CommitInserts(&db, &w, "t", 0, 200, 1);
  w.SimulateCrash();
  wal::RecoveryStats full = w.Recover().value();
  EXPECT_FALSE(full.used_checkpoint);

  ASSERT_TRUE(w.Checkpoint().ok());
  CommitInserts(&db, &w, "t", 1000, 5, 2);
  w.SimulateCrash();
  wal::RecoveryStats after = w.Recover().value();
  EXPECT_TRUE(after.used_checkpoint);
  // Replay starts at the checkpoint: far fewer records than the full scan.
  EXPECT_LT(after.records_scanned, full.records_scanned);
  EXPECT_LT(after.pages_redone, full.pages_redone);

  std::map<int64_t, int64_t> want;
  for (int64_t i = 0; i < 200; ++i) want[i] = 1;
  for (int64_t i = 1000; i < 1005; ++i) want[i] = 2;
  ExpectTableMatches(&db, "t", want);
}

// ---------------------------------------------------------------------------
// The crash-point torture matrix (the headline test)
// ---------------------------------------------------------------------------

/// The scripted workload: kTxns transactions of mixed inserts and deletes
/// over two tables, with a checkpoint before transaction 6. `model0/model1`
/// mirror what the tables must hold after every COMMIT.
constexpr int kTortureTxns = 12;

void ApplyTortureTxn(int k, storage::Database* db, WalManager* w,
                     std::map<int64_t, int64_t>* model0,
                     std::map<int64_t, int64_t>* model1, bool commit) {
  storage::Table* t0 = db->GetTable("t0").value();
  storage::Table* t1 = db->GetTable("t1").value();
  uint64_t txn = w->Begin().value();
  ASSERT_TRUE(w->NoteTableTouched(txn, t0).ok());
  ASSERT_TRUE(w->NoteTableTouched(txn, t1).ok());

  std::map<int64_t, int64_t> next0 = *model0, next1 = *model1;
  for (int64_t i = 0; i < 20; ++i) {
    int64_t key = k * 100 + i;
    ASSERT_TRUE(t0->Insert({key, int64_t{k}}).ok());
    next0[key] = k;
  }
  if (k >= 2 && k % 3 == 2) {
    // Delete half of the rows transaction k-2 inserted into t0.
    for (int64_t i = 0; i < 10; ++i) {
      int64_t key = (k - 2) * 100 + i;
      ASSERT_TRUE(t0->Delete(key).value());
      next0.erase(key);
    }
  }
  if (k % 2 == 1) {
    for (int64_t i = 0; i < 5; ++i) {
      int64_t key = k * 10 + i;
      ASSERT_TRUE(t1->Insert({key, int64_t{-k}}).ok());
      next1[key] = -k;
    }
  }
  if (!commit) return;  // left in-flight: the crash site is mid-transaction
  ASSERT_TRUE(w->Commit(txn).ok());
  *model0 = std::move(next0);
  *model1 = std::move(next1);
}

TEST(WalTorture, CrashPointMatrix) {
  for (int crash_at = 0; crash_at <= kTortureTxns; ++crash_at) {
    for (bool mid_txn : {false, true}) {
      if (mid_txn && crash_at == kTortureTxns) continue;
      SCOPED_TRACE("crash after " + std::to_string(crash_at) +
                   " committed txns" + (mid_txn ? " + one in flight" : ""));
      // A 64-page pool forces dirty-page eviction mid-workload, exercising
      // the WAL-before-data fence on the eviction path.
      storage::Database db(storage::DiskConfig{}, /*buffer_pool_pages=*/64);
      WalManager w(&db);
      CreateLoggedTable(&db, &w, "t0");
      CreateLoggedTable(&db, &w, "t1");
      // Txn-0 writes (the creates) are durable only once the log is
      // flushed; make the setup survive a crash before the first commit.
      ASSERT_TRUE(w.log_writer()->FlushAll().ok());

      std::map<int64_t, int64_t> model0, model1;
      for (int k = 0; k < crash_at; ++k) {
        if (k == 6) {
          ASSERT_TRUE(w.Checkpoint().ok());
        }
        ASSERT_NO_FATAL_FAILURE(
            ApplyTortureTxn(k, &db, &w, &model0, &model1, /*commit=*/true));
      }
      if (mid_txn) {
        std::map<int64_t, int64_t> scratch0 = model0, scratch1 = model1;
        ASSERT_NO_FATAL_FAILURE(ApplyTortureTxn(crash_at, &db, &w, &scratch0,
                                                &scratch1, /*commit=*/false));
        // Force the in-flight transaction's records to disk: recovery must
        // see them in the log and still refuse to replay them.
        ASSERT_TRUE(w.log_writer()->FlushAll().ok());
      }

      w.SimulateCrash();
      wal::RecoveryStats stats = w.Recover().value();
      // Replay starts at the checkpoint (taken before txn 6), so earlier
      // transactions are not in the scanned suffix.
      EXPECT_EQ(stats.txns_committed, crash_at <= 6 ? crash_at : crash_at - 6);
      EXPECT_EQ(stats.used_checkpoint, crash_at > 6);
      EXPECT_EQ(stats.txns_lost, mid_txn ? 1 : 0);

      ASSERT_NO_FATAL_FAILURE(ExpectTableMatches(&db, "t0", model0));
      ASSERT_NO_FATAL_FAILURE(ExpectTableMatches(&db, "t1", model1));
      EXPECT_TRUE(storage::VerifyDatabase(&db).issues.empty());

      // The log must remain writable at every crash point: one more
      // committed transaction survives a second crash.
      ASSERT_NO_FATAL_FAILURE(ApplyTortureTxn(kTortureTxns + 1, &db, &w,
                                              &model0, &model1,
                                              /*commit=*/true));
      w.SimulateCrash();
      ASSERT_TRUE(w.Recover().ok());
      ASSERT_NO_FATAL_FAILURE(ExpectTableMatches(&db, "t0", model0));
      ASSERT_NO_FATAL_FAILURE(ExpectTableMatches(&db, "t1", model1));
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent-writer crash torture: two interleaved MVCC transactions
// ---------------------------------------------------------------------------

/// One round of two concurrently open transactions with disjoint keys,
/// alternating their writes before committing A then B. Under MVCC the
/// writes buffer in per-transaction overlays, so both stay open across each
/// other's DML — the interleaving the legacy single-writer WAL cannot form.
void ApplyInterleavedRound(int k, storage::Database* db, mvcc::MvccManager* m,
                           std::map<int64_t, int64_t>* model0,
                           std::map<int64_t, int64_t>* model1,
                           std::function<void()> arm_crash,
                           Status* b_commit_status) {
  storage::Table* t0 = db->GetTable("t0").value();
  storage::Table* t1 = db->GetTable("t1").value();
  uint64_t a = m->Begin().value();
  uint64_t b = m->Begin().value();

  std::map<int64_t, int64_t> a0 = *model0, a1 = *model1;
  std::map<int64_t, int64_t> b0, b1;  // B's writes, folded in only on commit
  for (int64_t i = 0; i < 6; ++i) {
    int64_t ka = k * 100 + i, kb = k * 100 + 50 + i;
    ASSERT_TRUE(m->ApplyInsert(a, t0, {ka, int64_t{k}}).ok());
    ASSERT_TRUE(m->ApplyInsert(b, t0, {kb, int64_t{-k}}).ok());
    ASSERT_TRUE(m->ApplyInsert(a, t1, {ka, int64_t{k + 1}}).ok());
    ASSERT_TRUE(m->ApplyInsert(b, t1, {kb, int64_t{-k - 1}}).ok());
    a0[ka] = k;
    a1[ka] = k + 1;
    b0[kb] = -k;
    b1[kb] = -k - 1;
  }
  if (k > 0 && a1.count((k - 1) * 100) != 0) {
    // A also deletes a key an earlier round committed, mixing deletes into
    // the replayed ops.
    ASSERT_TRUE(m->ApplyDelete(a, t1, (k - 1) * 100).value());
    a1.erase((k - 1) * 100);
  }

  ASSERT_TRUE(m->Commit(a).ok());
  *model0 = std::move(a0);
  *model1 = std::move(a1);

  if (arm_crash != nullptr) arm_crash();
  Status st = m->Commit(b);
  if (b_commit_status != nullptr) *b_commit_status = st;
  if (st.ok()) {
    model0->insert(b0.begin(), b0.end());
    model1->insert(b1.begin(), b1.end());
  }
}

TEST(WalTorture, ConcurrentWriterCrashMatrix) {
  // Crash sites spanning both layers of the commit path: the MVCC replay
  // steps (before / mid / after replay) and the WAL commit-record steps
  // (before the append / appended but unflushed).
  struct Site {
    bool wal;  // arm the WAL's crash step instead of the MVCC replay's
    int step;
    const char* name;
  };
  const Site kSites[] = {
      {false, 1, "mvcc: before replay"},
      {false, 2, "mvcc: mid replay"},
      {false, 3, "mvcc: replay done, no commit record"},
      {true, 1, "wal: before commit record"},
      {true, 2, "wal: commit record appended, unflushed"},
  };
  constexpr int kRounds = 3;
  for (const Site& site : kSites) {
    for (int crash_round = 0; crash_round < kRounds; ++crash_round) {
      SCOPED_TRACE(std::string(site.name) + ", crash in round " +
                   std::to_string(crash_round));
      storage::Database db(storage::DiskConfig{}, /*buffer_pool_pages=*/64);
      WalManager w(&db);
      mvcc::MvccManager m(&db, &w);
      CreateLoggedTable(&db, &w, "t0");
      CreateLoggedTable(&db, &w, "t1");
      ASSERT_TRUE(w.log_writer()->FlushAll().ok());

      std::map<int64_t, int64_t> model0, model1;
      for (int k = 0; k < crash_round; ++k) {
        ASSERT_NO_FATAL_FAILURE(ApplyInterleavedRound(
            k, &db, &m, &model0, &model1, nullptr, nullptr));
      }
      Status b_status;
      auto arm = [&] {
        if (site.wal) {
          w.set_commit_crash_step(site.step);
        } else {
          m.set_commit_crash_step(site.step);
        }
      };
      ASSERT_NO_FATAL_FAILURE(ApplyInterleavedRound(
          crash_round, &db, &m, &model0, &model1, arm, &b_status));
      EXPECT_FALSE(b_status.ok()) << "armed crash did not fire";
      // The models now hold every fully committed transaction; B's
      // crash-round writes were folded in only if its commit returned OK
      // (it did not), so they are expected gone — except at the
      // appended-but-unflushed site, where durability is legitimately
      // nondeterministic and resolved below.

      w.SimulateCrash();
      wal::RecoveryStats stats = w.Recover().value();
      EXPECT_EQ(stats.txns_lost > 0 || stats.txns_committed > 0, true);

      if (site.wal && site.step == 2) {
        // The commit record reached the log buffer but not necessarily the
        // disk. Either the whole transaction survived or none of it did.
        storage::Table* t0 = db.GetTable("t0").value();
        bool survived =
            t0->Lookup(crash_round * 100 + 50).value().has_value();
        if (survived) {
          for (int64_t i = 0; i < 6; ++i) {
            model0[crash_round * 100 + 50 + i] = -crash_round;
            model1[crash_round * 100 + 50 + i] = -crash_round - 1;
          }
        }
      }
      ASSERT_NO_FATAL_FAILURE(ExpectTableMatches(&db, "t0", model0));
      ASSERT_NO_FATAL_FAILURE(ExpectTableMatches(&db, "t1", model1));
      EXPECT_TRUE(storage::VerifyDatabase(&db).issues.empty());

      // Recovery is idempotent: crash again with no new work and the data
      // disk fingerprint must not move.
      uint64_t fp1 = 0;
      ASSERT_NO_FATAL_FAILURE(fp1 = DiskFingerprint(db.disk()));
      w.SimulateCrash();
      ASSERT_TRUE(w.Recover().ok());
      uint64_t fp2 = 0;
      ASSERT_NO_FATAL_FAILURE(fp2 = DiskFingerprint(db.disk()));
      EXPECT_EQ(fp1, fp2) << "recovery is not idempotent";
      ASSERT_NO_FATAL_FAILURE(ExpectTableMatches(&db, "t0", model0));
      ASSERT_NO_FATAL_FAILURE(ExpectTableMatches(&db, "t1", model1));

      // And the database stays writable: one more interleaved round
      // commits both transactions cleanly.
      ASSERT_NO_FATAL_FAILURE(ApplyInterleavedRound(
          kRounds + 1, &db, &m, &model0, &model1, nullptr, nullptr));
      ASSERT_NO_FATAL_FAILURE(ExpectTableMatches(&db, "t0", model0));
      ASSERT_NO_FATAL_FAILURE(ExpectTableMatches(&db, "t1", model1));
    }
  }
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

TEST(WalManager, GroupCommitBatchesConcurrentCommitters) {
  // With a generous window, committers arriving while the leader lingers
  // share one physical flush. Retried to absorb scheduler pathologies.
  bool batched = false;
  for (int attempt = 0; attempt < 3 && !batched; ++attempt) {
    storage::Database db;
    WalConfig config;
    config.group_commit_window_us = 20000;
    WalManager w(&db, config);
    CreateLoggedTable(&db, &w, "t");

    constexpr int kThreads = 4, kTxnsPerThread = 5;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        for (int i = 0; i < kTxnsPerThread; ++i) {
          CommitInserts(&db, &w, "t",
                        (t * kTxnsPerThread + i) * 1000, 3, t);
        }
      });
    }
    for (std::thread& t : threads) t.join();

    wal::GroupCommitStats stats = w.log_writer()->group_commit_stats();
    EXPECT_GE(stats.committers, kThreads * kTxnsPerThread);
    batched = stats.max_batch >= 2;

    // Whatever the batching, every commit must be durable.
    w.SimulateCrash();
    ASSERT_TRUE(w.Recover().ok());
    EXPECT_EQ(db.GetTable("t").value()->row_count(),
              int64_t{kThreads} * kTxnsPerThread * 3);
  }
  EXPECT_TRUE(batched) << "no two committers ever shared a flush";
}

// ---------------------------------------------------------------------------
// Negative control: write-back without a WAL demonstrably loses data
// ---------------------------------------------------------------------------

TEST(WalNegativeControl, WriteBackWithoutWalLosesCommittedData) {
  storage::Database db;
  db.buffer_pool()->SetWriteBack(true);  // dirty pages buffered, no log
  storage::Table* table = db.CreateTable("t", KeyValueSchema()).value();
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(table->Insert({i, int64_t{1}}).ok());
  }
  ASSERT_TRUE(table->Lookup(25).value().has_value());
  storage::PageId root = table->clustered_index().root_page();

  // The crash: the cache dies with the process; nothing ever hit the disk.
  db.buffer_pool()->DropCacheNoFlush();
  db.ClearCatalog();

  // Re-attaching at the old root finds no usable tree — the committed rows
  // are simply gone. (With a WalManager the same sequence recovers fully;
  // see CommittedTransactionSurvivesCrash.)
  Result<std::unique_ptr<storage::Table>> attached = storage::Table::Attach(
      "t", KeyValueSchema(), root, db.buffer_pool(), db.blob_store());
  bool lost = !attached.ok();
  if (!lost) {
    Result<std::optional<storage::Row>> row = (*attached)->Lookup(25);
    lost = !row.ok() || !row->has_value();
  }
  EXPECT_TRUE(lost);
}

// ---------------------------------------------------------------------------
// SQL surface: BEGIN/COMMIT/ROLLBACK/CHECKPOINT, EXPLAIN ANALYZE DML
// ---------------------------------------------------------------------------

class WalSqlTest : public ::testing::Test {
 protected:
  WalSqlTest() : wal_(&db_), executor_(&db_, &registry_), session_(&executor_) {
    EXPECT_TRUE(udfs::RegisterAllUdfs(&registry_).ok());
    EXPECT_TRUE(
        session_.Execute("CREATE TABLE t (id BIGINT, v BIGINT)").ok());
  }

  int64_t Count() {
    auto rs = session_.Execute("SELECT COUNT(id) FROM t").value();
    return rs[0].rows[0][0].AsInt().value();
  }

  storage::Database db_;
  WalManager wal_;
  engine::FunctionRegistry registry_;
  engine::Executor executor_;
  sql::Session session_;
};

TEST_F(WalSqlTest, ExplicitTransactionsCommitAndRollback) {
  ASSERT_TRUE(session_.Execute("INSERT INTO t VALUES (1, 10)").ok());
  ASSERT_TRUE(session_
                  .Execute("BEGIN TRANSACTION "
                           "INSERT INTO t VALUES (2, 20) "
                           "INSERT INTO t VALUES (3, 30) "
                           "COMMIT")
                  .ok());
  EXPECT_EQ(Count(), 3);
  ASSERT_TRUE(session_
                  .Execute("BEGIN TRAN "
                           "INSERT INTO t VALUES (4, 40) "
                           "ROLLBACK")
                  .ok());
  EXPECT_EQ(Count(), 3);
  EXPECT_FALSE(session_.in_transaction());

  // Everything committed so far survives a crash.
  wal_.SimulateCrash();
  ASSERT_TRUE(wal_.Recover().ok());
  EXPECT_EQ(Count(), 3);
}

TEST_F(WalSqlTest, TransactionStatementErrors) {
  EXPECT_FALSE(session_.Execute("COMMIT").ok());
  EXPECT_FALSE(session_.Execute("ROLLBACK").ok());
  ASSERT_TRUE(session_.Execute("BEGIN TRANSACTION").ok());
  EXPECT_FALSE(session_.Execute("BEGIN TRANSACTION").ok());  // no nesting
  EXPECT_FALSE(session_.Execute("CHECKPOINT").ok());  // not inside a txn
  ASSERT_TRUE(session_.Execute("ROLLBACK").ok());
  EXPECT_TRUE(session_.Execute("CHECKPOINT").ok());
}

// Regression: a crash kills the WAL-side transaction, but the session
// object survives and still thinks its BEGIN is open. If it doesn't
// notice, later DML runs outside any transaction (NoteTableTouched no-ops
// against the dead txn id, autocommit is skipped) and is silently lost at
// the next crash.
TEST_F(WalSqlTest, SessionNoticesCrashKilledItsTransaction) {
  ASSERT_TRUE(session_
                  .Execute("BEGIN TRANSACTION "
                           "INSERT INTO t VALUES (1, 10)")
                  .ok());
  EXPECT_TRUE(session_.in_transaction());
  wal_.SimulateCrash();
  ASSERT_TRUE(wal_.Recover().ok());
  EXPECT_EQ(Count(), 0);

  // COMMIT of the dead transaction must fail, not fake durability.
  EXPECT_FALSE(session_.Execute("COMMIT").ok());
  // DML now autocommits again — and therefore survives the next crash.
  ASSERT_TRUE(session_.Execute("INSERT INTO t VALUES (2, 20)").ok());
  EXPECT_FALSE(session_.in_transaction());
  wal_.SimulateCrash();
  ASSERT_TRUE(wal_.Recover().ok());
  EXPECT_EQ(Count(), 1);
  // And a fresh BEGIN works.
  ASSERT_TRUE(session_
                  .Execute("BEGIN TRAN "
                           "INSERT INTO t VALUES (3, 30) "
                           "COMMIT")
                  .ok());
  EXPECT_EQ(Count(), 2);
}

TEST_F(WalSqlTest, FailedAutocommitStatementRollsBackCleanly) {
  ASSERT_TRUE(session_.Execute("INSERT INTO t VALUES (1, 10)").ok());
  // The second VALUES row has the wrong arity: the statement fails after
  // the first row was already inserted, and autocommit must undo it.
  EXPECT_FALSE(session_.Execute("INSERT INTO t VALUES (2, 20), (3)").ok());
  EXPECT_EQ(Count(), 1);
  EXPECT_FALSE(session_.in_transaction());
}

TEST_F(WalSqlTest, CheckpointStatementPersistsAndShortensReplay) {
  ASSERT_TRUE(
      session_.Execute("INSERT INTO t VALUES (1, 10), (2, 20)").ok());
  ASSERT_TRUE(session_.Execute("CHECKPOINT").ok());
  ASSERT_TRUE(session_.Execute("DELETE FROM t WHERE id = 1").ok());
  wal_.SimulateCrash();
  wal::RecoveryStats stats = wal_.Recover().value();
  EXPECT_TRUE(stats.used_checkpoint);
  EXPECT_EQ(Count(), 1);
}

TEST_F(WalSqlTest, ExplainAnalyzeInsertAndDeleteCarryWalCounters) {
  ASSERT_TRUE(
      session_.Execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)").ok());

  auto find_row = [](const engine::ResultSet& rs, const std::string& op)
      -> const std::vector<Value>* {
    for (const auto& row : rs.rows) {
      std::string got = row[0].AsString().value();
      got.erase(0, got.find_first_not_of(' '));
      if (got == op) return &row;
    }
    return nullptr;
  };

  auto ins = session_.Execute("EXPLAIN ANALYZE INSERT INTO t VALUES (9, 90)")
                 .value();
  ASSERT_EQ(ins.size(), 1u);
  EXPECT_EQ(ins[0].columns, obs::ProfileColumns());
  EXPECT_EQ(ins[0].rows[0][0].AsString().value(), "insert");
  EXPECT_EQ(ins[0].rows[0][1].AsString().value(), "t");
  EXPECT_EQ(ins[0].rows[0][3].AsInt().value(), 1);  // rows_out = affected
  const std::vector<Value>* wal_row = find_row(ins[0], "wal");
  ASSERT_NE(wal_row, nullptr);
  std::string detail = (*wal_row)[1].AsString().value();
  EXPECT_NE(detail.find("records="), std::string::npos);
  EXPECT_NE(detail.find("bytes="), std::string::npos);
  EXPECT_NE(detail.find("flushes="), std::string::npos);
  // An autocommitted INSERT logs at least begin + one page + commit and
  // forces exactly its own group-commit flush.
  EXPECT_EQ(detail.find("records=0"), std::string::npos);
  EXPECT_EQ(detail.find("flushes=0"), std::string::npos);

  auto del =
      session_.Execute("EXPLAIN ANALYZE DELETE FROM t WHERE id <= 2").value();
  ASSERT_EQ(del.size(), 1u);
  EXPECT_EQ(del[0].rows[0][0].AsString().value(), "delete");
  EXPECT_EQ(del[0].rows[0][3].AsInt().value(), 2);
  ASSERT_NE(find_row(del[0], "wal"), nullptr);
  // The DELETE's key scan is profiled as a child of the delete node.
  EXPECT_NE(find_row(del[0], "scan"), nullptr);
  EXPECT_EQ(Count(), 2);
}

TEST(WalSql, BeginWithoutWalFails) {
  storage::Database db;  // no WalManager attached
  engine::FunctionRegistry registry;
  engine::Executor executor(&db, &registry);
  sql::Session session(&executor);
  EXPECT_FALSE(session.Execute("BEGIN TRANSACTION").ok());
  EXPECT_FALSE(session.Execute("CHECKPOINT").ok());
}

// ---------------------------------------------------------------------------
// Recovery determinism across scan worker counts (property)
// ---------------------------------------------------------------------------

uint64_t RunSqlWorkloadCrashRecoverFingerprint(int workers) {
  storage::Database db;
  WalManager w(&db);
  engine::FunctionRegistry registry;
  engine::Executor executor(&db, &registry);
  EXPECT_TRUE(udfs::RegisterAllUdfs(&registry).ok());
  executor.set_scan_workers(workers);
  executor.set_min_pages_per_worker(0);
  sql::Session session(&executor);

  EXPECT_TRUE(session.Execute("CREATE TABLE dt (id BIGINT, v BIGINT)").ok());
  std::string values;
  for (int i = 0; i < 300; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ")";
  }
  EXPECT_TRUE(session.Execute("INSERT INTO dt VALUES " + values).ok());
  // The DELETE's key scan runs with `workers` parallel workers.
  EXPECT_TRUE(session.Execute("DELETE FROM dt WHERE v = 3").ok());
  EXPECT_TRUE(session
                  .Execute("BEGIN TRANSACTION "
                           "INSERT INTO dt VALUES (9000, 1) "
                           "COMMIT")
                  .ok());
  EXPECT_TRUE(session
                  .Execute("BEGIN TRANSACTION "
                           "INSERT INTO dt VALUES (9001, 2) "
                           "ROLLBACK")
                  .ok());

  w.SimulateCrash();
  EXPECT_TRUE(w.Recover().ok());
  uint64_t fp = 0;
  [&]() { ASSERT_NO_FATAL_FAILURE(fp = DiskFingerprint(db.disk())); }();
  return fp;
}

TEST(WalProperty, RecoveredDatabaseIsIdenticalAcrossWorkerCounts) {
  uint64_t serial = RunSqlWorkloadCrashRecoverFingerprint(1);
  uint64_t parallel = RunSqlWorkloadCrashRecoverFingerprint(4);
  EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------------
// Fault-seeded recovery: transient log-read errors
// ---------------------------------------------------------------------------

TEST(WalManager, RecoverySurvivesTransientLogReadFaults) {
  storage::Database db;
  WalManager w(&db);
  CreateLoggedTable(&db, &w, "t");
  // Enough traffic to span several log pages, so the recovery scan issues
  // multiple reads through the faulted disk.
  CommitInserts(&db, &w, "t", 0, 200, 1);
  CommitInserts(&db, &w, "t", 1000, 200, 2);

  w.SimulateCrash();

  // Arm deterministic transient read errors against the header page and the
  // first log pages — each burst below the retry budget. Without the bounded
  // retry in LogDevice the chain scan would mistake the first fault for the
  // end of the log and silently drop committed transactions.
  storage::SimulatedDisk* disk = w.log_device()->disk();
  storage::FaultInjector* inj = disk->EnableFaults(storage::FaultConfig{});
  ASSERT_GE(w.log_device()->max_read_attempts(), 3);
  inj->ArmTransientReadErrors(1, 2);  // header disk page
  for (storage::PageId p = wal::kFirstLogDiskPage;
       p < wal::kFirstLogDiskPage + 4; ++p) {
    inj->ArmTransientReadErrors(p, 2);
  }
  storage::IoStats before = disk->stats();

  wal::RecoveryStats stats = w.Recover().value();
  EXPECT_EQ(stats.txns_committed, 2);
  EXPECT_EQ(stats.txns_lost, 0);

  storage::IoStats delta = disk->stats() - before;
  EXPECT_GT(delta.read_errors, 0);
  EXPECT_GT(delta.read_retries, 0);
  EXPECT_GT(delta.transient_faults_healed, 0);

  std::map<int64_t, int64_t> want;
  for (int64_t i = 0; i < 200; ++i) want[i] = 1;
  for (int64_t i = 1000; i < 1200; ++i) want[i] = 2;
  ExpectTableMatches(&db, "t", want);
  EXPECT_TRUE(storage::VerifyDatabase(&db).issues.empty());
}

TEST(WalManager, PersistentLogFaultExhaustsRetriesAndTruncates) {
  storage::Database db;
  WalManager w(&db);
  CreateLoggedTable(&db, &w, "t");
  CommitInserts(&db, &w, "t", 0, 5, 1);

  w.SimulateCrash();
  // A burst beyond the retry budget behaves like a genuinely dead page:
  // the scan ends there and recovery proceeds with the readable prefix.
  storage::FaultInjector* inj =
      w.log_device()->disk()->EnableFaults(storage::FaultConfig{});
  inj->ArmTransientReadErrors(wal::kFirstLogDiskPage,
                              w.log_device()->max_read_attempts() + 4);
  wal::RecoveryStats stats = w.Recover().value();
  EXPECT_EQ(stats.txns_committed, 0);
  EXPECT_TRUE(storage::VerifyDatabase(&db).issues.empty());
}

}  // namespace
}  // namespace sqlarray
