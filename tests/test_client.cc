// Tests for the client-side bridge (the Sec. 5.2 .NET interface).
#include <gtest/gtest.h>

#include "client/sql_array.h"
#include "engine/exec.h"
#include "sql/session.h"
#include "udfs/register.h"

namespace sqlarray::client {
namespace {

TEST(SqlArray, VectorRoundTrip) {
  // The paper's snippet: double[] v = {1, 2, 3}; new SqlFloatArray(v);
  // x = a.ToSqlBuffer();
  SqlFloatArray a = SqlFloatArray::FromVector({1.0, 2.0, 3.0});
  std::vector<uint8_t> buffer = a.ToSqlBuffer().value();

  // ... and back: dr.SqlFloatArray(dr.GetSqlBinary(1)).
  SqlFloatArray back = SqlFloatArray::FromSqlBuffer(buffer).value();
  EXPECT_EQ(back.dims(), (Dims{3}));
  EXPECT_EQ(back.values(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SqlArray, MultiDimensional) {
  SqlFloatArray m =
      SqlFloatArray::FromValues({2, 3}, {1, 2, 3, 4, 5, 6}).value();
  EXPECT_EQ(m.rank(), 2);
  EXPECT_EQ(m.At(Dims{1, 2}).value(), 6.0);  // column-major
  ASSERT_TRUE(m.Set(Dims{0, 1}, 99.0).ok());
  EXPECT_EQ(m.values()[2], 99.0);
  EXPECT_FALSE(m.At(Dims{2, 0}).ok());
}

TEST(SqlArray, TypedParsingRejectsWrongElementType) {
  SqlIntArray ints = SqlIntArray::FromVector({1, 2, 3});
  std::vector<uint8_t> buffer = ints.ToSqlBuffer().value();
  EXPECT_FALSE(SqlFloatArray::FromSqlBuffer(buffer).ok());
  EXPECT_TRUE(SqlIntArray::FromSqlBuffer(buffer).ok());
}

TEST(SqlArray, StorageClassSelection) {
  SqlFloatArray small = SqlFloatArray::FromVector(std::vector<double>(10));
  std::vector<uint8_t> short_blob = small.ToSqlBuffer().value();
  EXPECT_EQ(ArrayRef::Parse(short_blob).value().storage(),
            StorageClass::kShort);
  std::vector<uint8_t> forced_max =
      small.ToSqlBuffer(StorageClass::kMax).value();
  EXPECT_EQ(ArrayRef::Parse(forced_max).value().storage(),
            StorageClass::kMax);
  SqlFloatArray big = SqlFloatArray::FromVector(std::vector<double>(5000));
  EXPECT_EQ(ArrayRef::Parse(big.ToSqlBuffer().value()).value().storage(),
            StorageClass::kMax);
  EXPECT_FALSE(big.ToSqlBuffer(StorageClass::kShort).ok());
}

TEST(SqlArray, ValidationOnConstruction) {
  EXPECT_FALSE(SqlFloatArray::FromValues({2, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(SqlFloatArray::FromValues({}, {}).ok());
}

TEST(ReadDoubleVector, ConvertsAnyNumericVector) {
  SqlIntArray ints = SqlIntArray::FromVector({5, 6, 7});
  auto v = ReadDoubleVector(ints.ToSqlBuffer().value()).value();
  EXPECT_EQ(v, (std::vector<double>{5.0, 6.0, 7.0}));

  SqlFloatArray m = SqlFloatArray::FromValues({2, 2}, {1, 2, 3, 4}).value();
  EXPECT_FALSE(ReadDoubleVector(m.ToSqlBuffer().value()).ok());
}

TEST(SqlArray, EndToEndThroughServer) {
  // Client builds an array, sends it to the server as a variable, server
  // processes it in SQL, client parses the result.
  storage::Database db;
  engine::FunctionRegistry registry;
  ASSERT_TRUE(udfs::RegisterAllUdfs(&registry).ok());
  engine::Executor executor(&db, &registry);
  sql::Session session(&executor);

  SqlFloatArray outbound = SqlFloatArray::FromVector({3.0, 1.0, 4.0, 1.0});
  session.SetVariable("a",
                      engine::Value::Bytes(outbound.ToSqlBuffer().value()));
  ASSERT_TRUE(session.Execute("DECLARE @b VARBINARY(MAX)").ok());
  ASSERT_TRUE(
      session.Execute("SET @b = FloatArray.Scale(@a, 10.0)").ok());

  auto blob =
      session.GetVariable("b").value().MaterializeBytes().value();
  SqlFloatArray inbound = SqlFloatArray::FromSqlBuffer(blob).value();
  EXPECT_EQ(inbound.values(),
            (std::vector<double>{30.0, 10.0, 40.0, 10.0}));
}

}  // namespace
}  // namespace sqlarray::client
