// Tests for the registered UDF surface: per-schema functions across dtypes
// and storage classes, generic Array.* dispatch, math bindings, aggregates.
#include <gtest/gtest.h>

#include <cmath>

#include "math/svd.h"
#include "udfs/helpers.h"
#include "udfs/register.h"

namespace sqlarray::udfs {
namespace {

using engine::FunctionRegistry;
using engine::ScalarFunction;
using engine::UdfContext;
using engine::Value;

class UdfTest : public ::testing::Test {
 protected:
  UdfTest() {
    EXPECT_TRUE(RegisterAllUdfs(&registry_).ok());
  }

  /// Invokes a registered scalar UDF directly.
  Result<Value> Call(const std::string& schema, const std::string& name,
                     std::vector<Value> args) {
    auto fn_or = registry_.Resolve(schema, name, static_cast<int>(args.size()));
    if (!fn_or.ok()) return fn_or.status();
    UdfContext ctx;
    return FunctionRegistry::Invoke(**fn_or, args, ctx);
  }

  Value CallOk(const std::string& schema, const std::string& name,
               std::vector<Value> args) {
    auto v = Call(schema, name, std::move(args));
    EXPECT_TRUE(v.ok()) << schema << "." << name << ": "
                        << v.status().ToString();
    return v.ok() ? std::move(v).value() : Value::Null();
  }

  OwnedArray AsArray(const Value& v) {
    return OwnedArray::FromBlob(v.MaterializeBytes().value()).value();
  }

  FunctionRegistry registry_;
};

TEST_F(UdfTest, CatalogIsComplete) {
  // Every dtype has both storage-class schemas with the core families.
  for (int d = 0; d < kNumDTypes; ++d) {
    DType t = static_cast<DType>(d);
    for (const char* suffix : {"", "Max"}) {
      std::string schema =
          std::string(DTypeSchemaPrefix(t)) + "Array" + suffix;
      for (const char* fn : {"Vector_1", "Vector_8", "Item_1", "Item_6",
                             "UpdateItem_1", "Subarray", "Reshape", "Rank",
                             "Length", "DimSize", "Dims", "Cast", "Raw",
                             "From", "ToString", "FromString", "SumAll",
                             "Create"}) {
        EXPECT_TRUE(registry_.HasScalar(schema, fn))
            << schema << "." << fn;
      }
    }
  }
  // Hundreds of functions in total, as the paper laments ("the enormous
  // number of individual functions").
  EXPECT_GT(registry_.scalar_count(), 500);
}

TEST_F(UdfTest, VectorBuilderPerDType) {
  for (DType t : {DType::kInt8, DType::kInt16, DType::kInt32, DType::kInt64,
                  DType::kFloat32, DType::kFloat64}) {
    std::string schema = std::string(DTypeSchemaPrefix(t)) + "Array";
    Value v = CallOk(schema, "Vector_3",
                     {Value::Int(1), Value::Int(2), Value::Int(3)});
    OwnedArray a = AsArray(v);
    EXPECT_EQ(a.dtype(), t);
    EXPECT_EQ(a.storage(), StorageClass::kShort);
    EXPECT_EQ(a.ref().GetDouble(1).value(), 2.0);
  }
}

TEST_F(UdfTest, MaxSchemaBuildsMaxArrays) {
  Value v = CallOk("FloatArrayMax", "Vector_2",
                   {Value::Double(1), Value::Double(2)});
  EXPECT_EQ(AsArray(v).storage(), StorageClass::kMax);
}

TEST_F(UdfTest, ComplexVectorTakesPairs) {
  Value v = CallOk("DoubleComplexArray", "Vector_2",
                   {Value::Double(1), Value::Double(2), Value::Double(3),
                    Value::Double(4)});
  OwnedArray a = AsArray(v);
  EXPECT_EQ(a.dtype(), DType::kComplex128);
  EXPECT_EQ(a.ref().GetComplex(1).value(), std::complex<double>(3, 4));

  // Item returns the complex UDT; ItemRe/ItemIm return scalars.
  Value item = CallOk("DoubleComplexArray", "Item_1", {v, Value::Int(1)});
  EXPECT_EQ(DecodeComplexUdt(*item.AsBytes().value()).value(),
            std::complex<double>(3, 4));
  EXPECT_EQ(CallOk("DoubleComplexArray", "ItemRe_1", {v, Value::Int(0)})
                .AsDouble()
                .value(),
            1.0);
  EXPECT_EQ(CallOk("DoubleComplexArray", "ItemIm_1", {v, Value::Int(1)})
                .AsDouble()
                .value(),
            4.0);
}

TEST_F(UdfTest, ComplexScalarUdtHelpers) {
  Value c = CallOk("DoubleComplex", "Make", {Value::Double(3),
                                             Value::Double(-4)});
  EXPECT_EQ(CallOk("DoubleComplex", "Re", {c}).AsDouble().value(), 3.0);
  EXPECT_EQ(CallOk("DoubleComplex", "Im", {c}).AsDouble().value(), -4.0);
  EXPECT_EQ(CallOk("DoubleComplex", "Abs", {c}).AsDouble().value(), 5.0);
}

TEST_F(UdfTest, TypeMismatchRejected) {
  Value float_vec = CallOk("FloatArray", "Vector_2",
                           {Value::Double(1), Value::Double(2)});
  EXPECT_FALSE(Call("IntArray", "Item_1", {float_vec, Value::Int(0)}).ok());
  EXPECT_FALSE(
      Call("FloatArrayMax", "Item_1", {float_vec, Value::Int(0)}).ok());
  EXPECT_FALSE(Call("IntArray", "Rank", {float_vec}).ok());
}

TEST_F(UdfTest, ShapeIntrospection) {
  Value dims = CallOk("IntArray", "Vector_2", {Value::Int(3), Value::Int(4)});
  Value m = CallOk("FloatArray", "Create", {Value::Int(3), Value::Int(4)});
  EXPECT_EQ(CallOk("FloatArray", "Rank", {m}).AsInt().value(), 2);
  EXPECT_EQ(CallOk("FloatArray", "Length", {m}).AsInt().value(), 12);
  EXPECT_EQ(CallOk("FloatArray", "DimSize", {m, Value::Int(1)})
                .AsInt().value(),
            4);
  OwnedArray d = AsArray(CallOk("FloatArray", "Dims", {m}));
  EXPECT_EQ(d.ref().GetDouble(0).value(), 3.0);
  EXPECT_EQ(d.ref().GetDouble(1).value(), 4.0);
  EXPECT_FALSE(Call("FloatArray", "DimSize", {m, Value::Int(2)}).ok());
  (void)dims;
}

TEST_F(UdfTest, CastRawRoundTripViaUdfs) {
  Value v = CallOk("FloatArray", "Vector_3",
                   {Value::Double(1), Value::Double(2), Value::Double(3)});
  Value raw = CallOk("FloatArray", "Raw", {v});
  EXPECT_EQ(raw.AsBytes().value()->size(), 24u);
  Value dims = CallOk("IntArray", "Vector_1", {Value::Int(3)});
  Value back = CallOk("FloatArray", "Cast", {raw, dims});
  EXPECT_EQ(AsArray(back).ref().GetDouble(2).value(), 3.0);
}

TEST_F(UdfTest, FromConvertsDTypeAndClass) {
  Value iv = CallOk("IntArray", "Vector_2", {Value::Int(5), Value::Int(6)});
  Value fv = CallOk("FloatArrayMax", "From", {iv});
  OwnedArray a = AsArray(fv);
  EXPECT_EQ(a.dtype(), DType::kFloat64);
  EXPECT_EQ(a.storage(), StorageClass::kMax);
  EXPECT_EQ(a.ref().GetDouble(1).value(), 6.0);
}

TEST_F(UdfTest, StringRoundTripViaUdfs) {
  Value v = CallOk("FloatArray", "Vector_2",
                   {Value::Double(1.5), Value::Double(-2.5)});
  Value s = CallOk("FloatArray", "ToString", {v});
  Value back = CallOk("FloatArray", "FromString", {s});
  EXPECT_EQ(AsArray(back).ref().GetDouble(1).value(), -2.5);
}

TEST_F(UdfTest, AggregatesAndArithmetic) {
  Value v = CallOk("FloatArray", "Vector_4",
                   {Value::Double(1), Value::Double(2), Value::Double(3),
                    Value::Double(4)});
  EXPECT_EQ(CallOk("FloatArray", "SumAll", {v}).AsDouble().value(), 10.0);
  EXPECT_EQ(CallOk("FloatArray", "MeanAll", {v}).AsDouble().value(), 2.5);
  EXPECT_EQ(CallOk("FloatArray", "MaxAll", {v}).AsDouble().value(), 4.0);
  Value w = CallOk("FloatArray", "Scale", {v, Value::Double(2)});
  EXPECT_EQ(CallOk("FloatArray", "SumAll", {w}).AsDouble().value(), 20.0);
  Value sum = CallOk("FloatArray", "Add", {v, v});
  EXPECT_EQ(AsArray(sum).ref().GetDouble(3).value(), 8.0);
  EXPECT_EQ(CallOk("FloatArray", "Dot", {v, v}).AsDouble().value(), 30.0);
  EXPECT_NEAR(CallOk("FloatArray", "Norm", {v}).AsDouble().value(),
              std::sqrt(30.0), 1e-12);
}

TEST_F(UdfTest, AxisAggregateUdf) {
  // 2x3 matrix 1..6 column-major; SumAxis(0) gives column sums.
  Value m = CallOk("FloatArray", "Create", {Value::Int(2), Value::Int(3)});
  OwnedArray ma = AsArray(m);
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(ma.SetDouble(i, static_cast<double>(i + 1)).ok());
  }
  Value filled = Value::Bytes(std::vector<uint8_t>(ma.blob().begin(),
                                                   ma.blob().end()));
  OwnedArray sums = AsArray(CallOk("FloatArray", "SumAxis",
                                   {filled, Value::Int(0)}));
  EXPECT_EQ(sums.dims(), (Dims{3}));
  EXPECT_EQ(sums.ref().GetDouble(0).value(), 3.0);
  EXPECT_EQ(sums.ref().GetDouble(2).value(), 11.0);
}

TEST_F(UdfTest, TransposeAndConcatAxisUdfs) {
  Value m = CallOk("FloatArray", "Matrix_2",
                   {Value::Double(1), Value::Double(2), Value::Double(3),
                    Value::Double(4)});
  OwnedArray t = AsArray(CallOk("FloatArray", "Transpose", {m}));
  EXPECT_EQ(t.ref().GetDoubleAt(Dims{0, 1}).value(), 2.0);

  Value a = CallOk("FloatArray", "Vector_2", {Value::Double(1),
                                              Value::Double(2)});
  Value b = CallOk("FloatArray", "Vector_2", {Value::Double(3),
                                              Value::Double(4)});
  OwnedArray ab = AsArray(CallOk("FloatArray", "ConcatAxis",
                                 {a, b, Value::Int(0)}));
  EXPECT_EQ(ab.dims(), (Dims{4}));
  EXPECT_EQ(ab.ref().GetDouble(3).value(), 4.0);

  Value perm = CallOk("IntArray", "Vector_2", {Value::Int(1), Value::Int(0)});
  OwnedArray p = AsArray(CallOk("FloatArray", "Permute", {m, perm}));
  EXPECT_EQ(p.ref().GetDoubleAt(Dims{1, 0}).value(), 3.0);
}

TEST_F(UdfTest, GenericArraySchemaDispatches) {
  Value iv = CallOk("IntArray", "Vector_2", {Value::Int(7), Value::Int(8)});
  EXPECT_EQ(CallOk("Array", "Item", {iv, Value::Int(1)}).AsDouble().value(),
            8.0);
  Value fv = CallOk("FloatArray", "Vector_2",
                    {Value::Double(1.5), Value::Double(2.5)});
  EXPECT_EQ(CallOk("Array", "Item", {fv, Value::Int(0)}).AsDouble().value(),
            1.5);
  EXPECT_EQ(CallOk("Array", "TypeName", {iv}).AsString().value(), "int32");
  EXPECT_EQ(CallOk("Array", "SumAll", {iv}).AsDouble().value(), 15.0);
}

TEST_F(UdfTest, GenericSliceDropsDims) {
  Value m = CallOk("FloatArray", "Matrix_2",
                   {Value::Double(1), Value::Double(2), Value::Double(3),
                    Value::Double(4)});
  // Slice row 1 (drop), columns 0:2 (keep): a vector of (2, 4).
  OwnedArray row = AsArray(CallOk(
      "Array", "Slice",
      {m, Value::Int(1), Value::Int(2), Value::Int(1), Value::Int(0),
       Value::Int(2), Value::Int(0)}));
  EXPECT_EQ(row.dims(), (Dims{2}));
  EXPECT_EQ(row.ref().GetDouble(0).value(), 2.0);
  EXPECT_EQ(row.ref().GetDouble(1).value(), 4.0);
}

TEST_F(UdfTest, SvdUdfReconstructs) {
  // 3x3 matrix via Create + updates; U * diag(S) * VT == A.
  Value m = CallOk("FloatArrayMax", "Create", {Value::Int(3), Value::Int(3)});
  OwnedArray ma = AsArray(m);
  double vals[9] = {2, 0, 1, 0, 3, 0, 1, 0, 2};
  for (int64_t i = 0; i < 9; ++i) {
    ASSERT_TRUE(ma.SetDouble(i, vals[i]).ok());
  }
  Value filled = Value::Bytes(std::vector<uint8_t>(ma.blob().begin(),
                                                   ma.blob().end()));
  OwnedArray u = AsArray(CallOk("FloatArrayMax", "SVD_U", {filled}));
  OwnedArray s = AsArray(CallOk("FloatArrayMax", "SVD_S", {filled}));
  OwnedArray vt = AsArray(CallOk("FloatArrayMax", "SVD_VT", {filled}));
  EXPECT_EQ(u.dims(), (Dims{3, 3}));
  EXPECT_EQ(s.dims(), (Dims{3}));
  EXPECT_EQ(vt.dims(), (Dims{3, 3}));
  // Reconstruct and compare.
  math::SvdResult svd;
  svd.u = math::Matrix(3, 3);
  svd.vt = math::Matrix(3, 3);
  svd.s.resize(3);
  for (int64_t i = 0; i < 9; ++i) {
    svd.u.data()[i] = u.ref().GetDouble(i).value();
    svd.vt.data()[i] = vt.ref().GetDouble(i).value();
  }
  for (int64_t i = 0; i < 3; ++i) s.ref().GetDouble(i).value();
  for (int64_t i = 0; i < 3; ++i) svd.s[i] = s.ref().GetDouble(i).value();
  math::Matrix recon = math::SvdReconstruct(svd);
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(recon.data()[i], vals[i], 1e-9);
  }
}

TEST_F(UdfTest, SolveUdfFitsExactSystem) {
  // A = [[1, 1], [1, 2], [1, 3]], b = [2, 3, 4] -> x = [1, 1].
  Value a = CallOk("FloatArrayMax", "Create", {Value::Int(3), Value::Int(2)});
  OwnedArray aa = AsArray(a);
  double avals[6] = {1, 1, 1, 1, 2, 3};
  for (int64_t i = 0; i < 6; ++i) ASSERT_TRUE(aa.SetDouble(i, avals[i]).ok());
  Value af = Value::Bytes(std::vector<uint8_t>(aa.blob().begin(),
                                               aa.blob().end()));
  Value b = CallOk("FloatArrayMax", "Vector_3",
                   {Value::Double(2), Value::Double(3), Value::Double(4)});
  OwnedArray x = AsArray(CallOk("FloatArrayMax", "Solve", {af, b}));
  EXPECT_NEAR(x.ref().GetDouble(0).value(), 1.0, 1e-10);
  EXPECT_NEAR(x.ref().GetDouble(1).value(), 1.0, 1e-10);

  OwnedArray nn = AsArray(CallOk("FloatArrayMax", "Nnls", {af, b}));
  EXPECT_NEAR(nn.ref().GetDouble(0).value(), 1.0, 1e-8);
  EXPECT_NEAR(nn.ref().GetDouble(1).value(), 1.0, 1e-8);
}

TEST_F(UdfTest, FftUdfRoundTrip) {
  Value v = CallOk("FloatArrayMax", "Vector_4",
                   {Value::Double(1), Value::Double(2), Value::Double(3),
                    Value::Double(4)});
  Value f = CallOk("FloatArrayMax", "FFTForward", {v});
  OwnedArray fa = AsArray(f);
  EXPECT_EQ(fa.dtype(), DType::kComplex128);
  EXPECT_NEAR(fa.ref().GetComplex(0).value().real(), 10.0, 1e-9);
  Value back = CallOk("DoubleComplexArrayMax", "FFTInverse", {f});
  OwnedArray ba = AsArray(back);
  EXPECT_NEAR(ba.ref().GetComplex(2).value().real(), 3.0, 1e-9);
  EXPECT_NEAR(ba.ref().GetComplex(2).value().imag(), 0.0, 1e-9);
}

TEST_F(UdfTest, MatMulUdf) {
  Value a = CallOk("FloatArrayMax", "Create", {Value::Int(2), Value::Int(2)});
  OwnedArray aa = AsArray(a);
  // A = [[1, 3], [2, 4]] column-major {1, 2, 3, 4}.
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(aa.SetDouble(i, static_cast<double>(i + 1)).ok());
  }
  Value af = Value::Bytes(std::vector<uint8_t>(aa.blob().begin(),
                                               aa.blob().end()));
  OwnedArray c = AsArray(CallOk("FloatArrayMax", "MatMul", {af, af}));
  // A^2 = [[7, 15], [10, 22]] column-major {7, 10, 15, 22}.
  EXPECT_EQ(c.ref().GetDouble(0).value(), 7.0);
  EXPECT_EQ(c.ref().GetDouble(1).value(), 10.0);
  EXPECT_EQ(c.ref().GetDouble(2).value(), 15.0);
  EXPECT_EQ(c.ref().GetDouble(3).value(), 22.0);
}

TEST_F(UdfTest, DateTimeRoundTripAndFields) {
  Value t = CallOk("DateTime", "FromString",
                   {Value::Str("2011-10-08 12:34:56")});
  EXPECT_EQ(CallOk("DateTime", "Year", {t}).AsInt().value(), 2011);
  EXPECT_EQ(CallOk("DateTime", "Month", {t}).AsInt().value(), 10);
  EXPECT_EQ(CallOk("DateTime", "Day", {t}).AsInt().value(), 8);
  EXPECT_EQ(CallOk("DateTime", "Hour", {t}).AsInt().value(), 12);
  EXPECT_EQ(CallOk("DateTime", "Minute", {t}).AsInt().value(), 34);
  EXPECT_EQ(CallOk("DateTime", "Second", {t}).AsInt().value(), 56);
  EXPECT_EQ(CallOk("DateTime", "ToString", {t}).AsString().value(),
            "2011-10-08 12:34:56");

  Value epoch = CallOk("DateTime", "FromParts",
                       {Value::Int(1970), Value::Int(1), Value::Int(1),
                        Value::Int(0), Value::Int(0), Value::Int(0)});
  EXPECT_EQ(epoch.AsInt().value(), 0);
  Value day = CallOk("DateTime", "FromString", {Value::Str("1970-01-02")});
  EXPECT_EQ(day.AsInt().value(), 86400LL * 1000000);

  Value later = CallOk("DateTime", "AddSeconds", {t, Value::Double(4.0)});
  EXPECT_EQ(CallOk("DateTime", "ToString", {later}).AsString().value(),
            "2011-10-08 12:35:00");

  EXPECT_FALSE(Call("DateTime", "FromString", {Value::Str("nope")}).ok());
  EXPECT_FALSE(Call("DateTime", "FromParts",
                    {Value::Int(2011), Value::Int(13), Value::Int(1),
                     Value::Int(0), Value::Int(0), Value::Int(0)})
                   .ok());
}

TEST_F(UdfTest, DateTimeArrayHoldsTimestamps) {
  Value t1 = CallOk("DateTime", "FromString", {Value::Str("2011-10-08")});
  Value t2 = CallOk("DateTime", "FromString", {Value::Str("2018-09-20")});
  Value arr = CallOk("DateTimeArray", "Vector_2", {t1, t2});
  OwnedArray a = AsArray(arr);
  EXPECT_EQ(a.dtype(), DType::kDateTime);
  Value back = CallOk("DateTimeArray", "Item_1", {arr, Value::Int(1)});
  EXPECT_EQ(static_cast<int64_t>(back.AsDouble().value()),
            t2.AsInt().value());
}

TEST_F(UdfTest, EmptyFunctionHasNoManagedWork) {
  const ScalarFunction* fn =
      registry_.Resolve("dbo", "EmptyFunction", 2).value();
  EXPECT_EQ(fn->managed_work_ns, 0.0);
  UdfContext ctx;
  engine::QueryStats stats;
  engine::CostModel cost;
  ctx.stats = &stats;
  ctx.cost = &cost;
  std::vector<Value> args{Value::Bytes(std::vector<uint8_t>(64)),
                          Value::Int(0)};
  ASSERT_TRUE(FunctionRegistry::Invoke(*fn, args, ctx).ok());
  EXPECT_EQ(stats.udf_calls, 1);
  // Boundary cost: flat call + 64 arg bytes + 8 int bytes + 8 result bytes.
  double expect_ns = cost.clr_call_ns + cost.clr_byte_ns * (64 + 8 + 8);
  EXPECT_NEAR(stats.cpu_core_seconds, expect_ns * 1e-9, 1e-12);
}

}  // namespace
}  // namespace sqlarray::udfs
