// Tests for resource governance and the multi-session front-end (ISSUE 6):
// cancellation tokens and deadlines, per-statement memory budgets, the
// admission controller (FIFO, bounded queue, cancellable waits), SET
// session-option statements, end-to-end kills with WAL rollback, and the
// ArrayServer under concurrent submit/cancel/kill traffic. Built both plain
// and under -DSQLARRAY_SANITIZE=thread (tsan_gov_suite).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/exec.h"
#include "gov/admission.h"
#include "gov/gov.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "storage/verify.h"
#include "udfs/register.h"
#include "wal/wal.h"

namespace sqlarray {
namespace {

using engine::Value;

// ---------------------------------------------------------------------------
// CancelSource
// ---------------------------------------------------------------------------

TEST(CancelSource, FirstCancelWinsAndResetClears) {
  gov::CancelSource src;
  EXPECT_TRUE(src.Check().ok());
  EXPECT_TRUE(src.StatusNow().ok());

  src.Cancel(gov::KillReason::kUser, "killed by test");
  src.Cancel(gov::KillReason::kDeadline, "should lose the race");
  Status st = src.Check();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("killed by test"), std::string::npos);

  src.Reset();
  EXPECT_TRUE(src.Check().ok());
}

TEST(CancelSource, DeadlineFiresViaProbe) {
  gov::CancelSource src;
  src.ArmDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  // The watchdog-style probe forces the clock comparison immediately.
  EXPECT_TRUE(src.ProbeDeadline());
  EXPECT_EQ(src.StatusNow().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(src.ProbeDeadline());  // already fired
  src.Reset();
  EXPECT_TRUE(src.Check().ok());
}

TEST(CancelSource, DeadlineFiresViaStrideSelfCheck) {
  gov::CancelSource src;
  src.ArmDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  // Check() reads the clock on the first probe and then every
  // kDeadlineStride probes; within one stride it must have fired.
  Status st = Status::OK();
  for (uint64_t i = 0; i <= gov::CancelSource::kDeadlineStride + 1; ++i) {
    st = src.Check();
    if (!st.ok()) break;
  }
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelSource, DisarmPreventsDeadline) {
  gov::CancelSource src;
  src.ArmDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  src.DisarmDeadline();
  EXPECT_FALSE(src.ProbeDeadline());
  EXPECT_TRUE(src.Check().ok());
}

// ---------------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------------

TEST(MemoryBudget, ChargesAndPeaks) {
  gov::MemoryBudget b;
  b.Reset(1000);
  EXPECT_TRUE(b.Charge(400).ok());
  EXPECT_TRUE(b.Charge(400).ok());
  b.Release(300);
  EXPECT_EQ(b.used(), 500);
  EXPECT_EQ(b.peak(), 800);
  EXPECT_TRUE(b.Charge(400).ok());  // 900 < 1000
  Status st = b.Charge(200);        // 1100 > 1000
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // The overrun is sticky: every later charge fails until Reset, so all
  // workers of the statement unwind.
  EXPECT_EQ(b.Charge(1).code(), StatusCode::kResourceExhausted);
  b.Reset(1000);
  EXPECT_TRUE(b.Charge(1).ok());
  EXPECT_EQ(b.peak(), 1);
}

TEST(MemoryBudget, ZeroLimitMeansUnlimitedAccounting) {
  gov::MemoryBudget b;
  b.Reset(0);
  EXPECT_TRUE(b.Charge(int64_t{1} << 40).ok());
  EXPECT_EQ(b.peak(), int64_t{1} << 40);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(Admission, GrantsUpToCapAndRejectsBeyondQueue) {
  gov::AdmissionConfig cfg;
  cfg.max_concurrent = 2;
  cfg.max_queue = 0;  // no waiting allowed: third caller is rejected
  gov::AdmissionController ac(cfg);

  Result<gov::AdmissionSlot> a = ac.Admit(nullptr);
  Result<gov::AdmissionSlot> b = ac.Admit(nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<gov::AdmissionSlot> c = ac.Admit(nullptr);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(c.status().message().find("retry"), std::string::npos);

  gov::AdmissionController::Stats s = ac.stats();
  EXPECT_EQ(s.admitted, 2);
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.running, 2);

  a->Release();
  EXPECT_EQ(ac.stats().running, 1);
  EXPECT_TRUE(ac.Admit(nullptr).ok());
}

TEST(Admission, QueuedWaiterRunsWhenSlotFrees) {
  gov::AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queue = 4;
  gov::AdmissionController ac(cfg);

  Result<gov::AdmissionSlot> held = ac.Admit(nullptr);
  ASSERT_TRUE(held.ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    Result<gov::AdmissionSlot> slot = ac.Admit(nullptr);
    EXPECT_TRUE(slot.ok());
    EXPECT_GE(slot->wait_seconds(), 0.0);
    granted.store(true);
  });
  // Give the waiter time to enqueue, then free the slot.
  while (ac.stats().queue_depth == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(granted.load());
  held->Release();
  waiter.join();
  EXPECT_TRUE(granted.load());
  gov::AdmissionController::Stats s = ac.stats();
  EXPECT_EQ(s.admitted, 2);
  EXPECT_EQ(s.queued, 1);
  EXPECT_GE(s.peak_queue_depth, 1);
}

TEST(Admission, CancelledWaiterLeavesWithoutStallingTheQueue) {
  gov::AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queue = 4;
  gov::AdmissionController ac(cfg);

  Result<gov::AdmissionSlot> held = ac.Admit(nullptr);
  ASSERT_TRUE(held.ok());

  // First waiter will be cancelled mid-queue; the second must still get the
  // slot (a cancelled head ticket must not wedge FIFO order).
  gov::CancelSource cancel_a;
  std::atomic<int> a_code{-1};
  std::thread wa([&] {
    Result<gov::AdmissionSlot> s = ac.Admit(&cancel_a);
    a_code.store(s.ok() ? 0 : static_cast<int>(s.status().code()));
  });
  while (ac.stats().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::atomic<bool> b_granted{false};
  std::thread wb([&] {
    Result<gov::AdmissionSlot> s = ac.Admit(nullptr);
    EXPECT_TRUE(s.ok());
    b_granted.store(true);
  });
  while (ac.stats().queue_depth < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  cancel_a.Cancel(gov::KillReason::kUser, "impatient");
  wa.join();
  EXPECT_EQ(a_code.load(), static_cast<int>(StatusCode::kCancelled));
  EXPECT_FALSE(b_granted.load());

  held->Release();
  wb.join();
  EXPECT_TRUE(b_granted.load());
}

TEST(Admission, DisabledControllerAdmitsEverything) {
  gov::AdmissionConfig cfg;
  cfg.enabled = false;
  cfg.max_concurrent = 1;
  cfg.max_queue = 0;
  gov::AdmissionController ac(cfg);
  std::vector<gov::AdmissionSlot> slots;
  for (int i = 0; i < 8; ++i) {
    Result<gov::AdmissionSlot> s = ac.Admit(nullptr);
    ASSERT_TRUE(s.ok());
    slots.push_back(std::move(s).value());
  }
  EXPECT_EQ(ac.stats().admitted, 8);
  EXPECT_EQ(ac.stats().rejected, 0);
}

// ---------------------------------------------------------------------------
// SET session-option statements
// ---------------------------------------------------------------------------

TEST(Parser, SetSessionOptionsParse) {
  sql::Script s = sql::Parse("SET STATEMENT_TIMEOUT_MS = 250").value();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].kind, sql::Statement::Kind::kSetOption);
  EXPECT_EQ(s[0].set_option.option, "STATEMENT_TIMEOUT_MS");
  EXPECT_EQ(s[0].set_option.value, 250);

  s = sql::Parse("set memory_budget_kb = 4096").value();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].kind, sql::Statement::Kind::kSetOption);
  EXPECT_EQ(s[0].set_option.option, "MEMORY_BUDGET_KB");
  EXPECT_EQ(s[0].set_option.value, 4096);
}

TEST(Parser, SetSessionOptionErrors) {
  // Negative values are rejected with a specific message.
  auto neg = sql::Parse("SET STATEMENT_TIMEOUT_MS = -5");
  ASSERT_FALSE(neg.ok());
  EXPECT_NE(neg.status().message().find("non-negative"), std::string::npos);

  // Non-integer values are rejected.
  auto str = sql::Parse("SET MEMORY_BUDGET_KB = 'lots'");
  ASSERT_FALSE(str.ok());
  EXPECT_NE(str.status().message().find("integer"), std::string::npos);

  auto flt = sql::Parse("SET STATEMENT_TIMEOUT_MS = 1.5");
  EXPECT_FALSE(flt.ok());

  // Missing '=' is a parse error, and ordinary variable SET still works.
  EXPECT_FALSE(sql::Parse("SET STATEMENT_TIMEOUT_MS 10").ok());
  EXPECT_TRUE(sql::Parse("DECLARE @x BIGINT = 1 SET @x = 2").ok());
}

// ---------------------------------------------------------------------------
// End-to-end session governance
// ---------------------------------------------------------------------------

/// Registers Test.Slow(x): sleeps ~1ms per call and returns x. Drives
/// deterministic "this query takes >= N ms" workloads.
void RegisterSlowUdf(engine::FunctionRegistry* registry) {
  engine::ScalarFunction slow;
  slow.schema = "Test";
  slow.name = "Slow";
  slow.arity = 1;
  slow.boundary = engine::Boundary::kClr;
  slow.fn = [](std::span<const Value> args,
               engine::UdfContext&) -> Result<Value> {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return args[0];
  };
  ASSERT_TRUE(registry->RegisterScalar(std::move(slow)).ok());
}

class GovSessionTest : public ::testing::Test {
 protected:
  GovSessionTest() : wal_(&db_), executor_(&db_, &registry_) {
    EXPECT_TRUE(udfs::RegisterAllUdfs(&registry_).ok());
    RegisterSlowUdf(&registry_);
  }

  std::vector<engine::ResultSet> Run(sql::Session* s,
                                     const std::string& sqltext) {
    auto r = s->Execute(sqltext);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nSQL: " << sqltext;
    return r.ok() ? std::move(r).value() : std::vector<engine::ResultSet>{};
  }

  int64_t Count(sql::Session* s, const std::string& table) {
    auto rs = Run(s, "SELECT COUNT(id) FROM " + table);
    return rs.at(0).rows.at(0).at(0).AsInt().value();
  }

  storage::Database db_;
  wal::WalManager wal_;
  engine::FunctionRegistry registry_;
  engine::Executor executor_;
};

TEST_F(GovSessionTest, SetOptionStatementsApply) {
  sql::Session session(&executor_);
  EXPECT_TRUE(session.Execute("SET STATEMENT_TIMEOUT_MS = 123").ok());
  EXPECT_TRUE(session.Execute("SET MEMORY_BUDGET_KB = 77").ok());
  EXPECT_EQ(session.statement_timeout_ms(), 123);
  EXPECT_EQ(session.memory_budget_kb(), 77);
  EXPECT_TRUE(session.Execute("SET STATEMENT_TIMEOUT_MS = 0").ok());
  EXPECT_EQ(session.statement_timeout_ms(), 0);
}

TEST_F(GovSessionTest, StatementTimeoutKillsAndRollsBack) {
  sql::Session session(&executor_);
  Run(&session, "CREATE TABLE t (id BIGINT, v BIGINT)");
  std::string values;
  for (int i = 0; i < 300; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i) + ", 1)";
  }
  Run(&session, "INSERT INTO t VALUES " + values);

  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  Run(&session, "SET STATEMENT_TIMEOUT_MS = 25");
  // ~1ms per row makes the full DELETE take >= 300ms; the 25ms deadline
  // must kill it within the probe stride's bounded grace.
  auto start = std::chrono::steady_clock::now();
  auto killed =
      session.Execute("DELETE FROM t WHERE Test.Slow(id) >= 0");
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            290);  // killed well before the statement could finish

  obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.Delta(before, "gov.deadline_kills"), 1);

  // The autocommit wrapper rolled the WAL transaction back: no rows were
  // deleted and storage verifies clean. The session stays usable with the
  // timeout disabled.
  Run(&session, "SET STATEMENT_TIMEOUT_MS = 0");
  EXPECT_EQ(Count(&session, "t"), 300);
  EXPECT_TRUE(storage::VerifyDatabase(&db_).issues.empty());
  EXPECT_FALSE(session.in_transaction());
}

TEST_F(GovSessionTest, PreCancelledStatementHasZeroSideEffects) {
  sql::Session session(&executor_);
  Run(&session, "CREATE TABLE z (id BIGINT, v BIGINT)");
  Run(&session, "INSERT INTO z VALUES (1, 1)");

  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  session.cancel_source()->Cancel(gov::KillReason::kUser, "pre-kill");
  auto r = session.Execute("INSERT INTO z VALUES (2, 2)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  // Zero side effects: nothing was written, not even a WAL record.
  EXPECT_EQ(after.Delta(before, "wal.records"), 0);
  EXPECT_EQ(Count(&session, "z"), 1);
  // The kill was consumed: the next statement (the COUNT above) ran fine.
  EXPECT_TRUE(session.cancel_source()->Check().ok());
}

TEST_F(GovSessionTest, MemoryBudgetAbortsQueryNotProcess) {
  sql::Session session(&executor_);
  Run(&session, "CREATE TABLE m (id BIGINT, v BIGINT)");
  std::string values;
  for (int i = 0; i < 500; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
  }
  Run(&session, "INSERT INTO m VALUES " + values);

  // 500 distinct groups comfortably exceed a 4KB budget.
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  Run(&session, "SET MEMORY_BUDGET_KB = 4");
  auto r = session.Execute("SELECT v, COUNT(id) FROM m GROUP BY v");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.Delta(before, "gov.budget_kills"), 1);

  // Same query under no budget succeeds, and the peak is reported.
  Run(&session, "SET MEMORY_BUDGET_KB = 0");
  auto ok = Run(&session, "SELECT v, COUNT(id) FROM m GROUP BY v");
  EXPECT_EQ(ok.at(0).rows.size(), 500u);
  EXPECT_GT(session.last_peak_memory_bytes(), 4 * 1024);
}

TEST_F(GovSessionTest, InBudgetSessionUnaffectedByOverBudgetNeighbor) {
  sql::Session setup(&executor_);
  Run(&setup, "CREATE TABLE n (id BIGINT, v BIGINT)");
  std::string values;
  for (int i = 0; i < 400; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i) + ", " + std::to_string(i % 13) + ")";
  }
  Run(&setup, "INSERT INTO n VALUES " + values);

  // Reference run: unloaded.
  const std::string q = "SELECT v, SUM(id) FROM n GROUP BY v ORDER BY 1";
  auto reference = Run(&setup, q);

  // A neighbor session keeps blowing its tiny budget while the governed
  // reference query re-runs; results must be byte-identical.
  sql::Session victim(&executor_);
  sql::Session neighbor(&executor_);
  Run(&neighbor, "SET MEMORY_BUDGET_KB = 1");
  std::atomic<bool> stop{false};
  std::thread noisy([&] {
    while (!stop.load()) {
      auto r = neighbor.Execute("SELECT v, COUNT(id) FROM n GROUP BY v");
      EXPECT_FALSE(r.ok());
    }
  });
  for (int i = 0; i < 5; ++i) {
    auto rs = Run(&victim, q);
    ASSERT_EQ(rs.at(0).rows.size(), reference.at(0).rows.size());
    for (size_t j = 0; j < rs.at(0).rows.size(); ++j) {
      EXPECT_EQ(rs.at(0).rows[j].at(0).AsInt().value(),
                reference.at(0).rows[j].at(0).AsInt().value());
      EXPECT_EQ(rs.at(0).rows[j].at(1).AsInt().value(),
                reference.at(0).rows[j].at(1).AsInt().value());
    }
  }
  stop.store(true);
  noisy.join();
}

TEST_F(GovSessionTest, ExplainAnalyzeShowsAdmissionWait) {
  sql::Session session(&executor_);
  Run(&session, "CREATE TABLE e (id BIGINT, v BIGINT)");
  Run(&session, "INSERT INTO e VALUES (1, 1), (2, 2)");
  session.set_admission_wait(0.0042);
  // Profile rows are indented by tree depth; compare the trimmed op name.
  auto op_name = [](const engine::ResultSet& rs, size_t i) {
    std::string op = rs.rows[i].at(0).AsString().value();
    return op.substr(op.find_first_not_of(' '));
  };
  auto rs = Run(&session, "EXPLAIN ANALYZE SELECT SUM(v) FROM e");
  bool found = false;
  for (size_t i = 0; i < rs.at(0).rows.size(); ++i) {
    if (op_name(rs.at(0), i) == "admission") {
      found = true;
      EXPECT_NE(rs.at(0).rows[i].at(1).AsString().value().find("wait_ms=4.2"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(found);
  // The wait is consumed: the next EXPLAIN has no admission row.
  auto rs2 = Run(&session, "EXPLAIN ANALYZE SELECT SUM(v) FROM e");
  for (size_t i = 0; i < rs2.at(0).rows.size(); ++i) {
    EXPECT_NE(op_name(rs2.at(0), i), "admission");
  }
}

// ---------------------------------------------------------------------------
// ArrayServer
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : wal_(&db_), executor_(&db_, &registry_) {
    EXPECT_TRUE(udfs::RegisterAllUdfs(&registry_).ok());
    RegisterSlowUdf(&registry_);
  }

  storage::Database db_;
  wal::WalManager wal_;
  engine::FunctionRegistry registry_;
  engine::Executor executor_;
};

TEST_F(ServerTest, SessionsExecuteThroughAdmission) {
  server::ServerConfig cfg;
  cfg.admission.max_concurrent = 2;
  server::ArrayServer srv(&executor_, cfg);
  int64_t a = srv.OpenSession();
  int64_t b = srv.OpenSession();
  EXPECT_EQ(srv.open_sessions(), 2);

  ASSERT_TRUE(srv.Execute(a, "CREATE TABLE s (id BIGINT, v BIGINT)").ok());
  ASSERT_TRUE(srv.Execute(a, "INSERT INTO s VALUES (1, 10), (2, 20)").ok());
  auto rs = srv.Execute(b, "SELECT SUM(v) FROM s");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.result_sets.at(0).rows.at(0).at(0).AsInt().value(), 30);
  EXPECT_GE(srv.admission_stats().admitted, 3);

  EXPECT_TRUE(srv.CloseSession(a).ok());
  EXPECT_TRUE(srv.CloseSession(b).ok());
  EXPECT_EQ(srv.open_sessions(), 0);
  EXPECT_FALSE(srv.Execute(a, "SELECT 1").ok());  // unknown session
}

TEST_F(ServerTest, OverloadRejectsWithRetryAfter) {
  server::ServerConfig cfg;
  cfg.admission.max_concurrent = 1;
  cfg.admission.max_queue = 1;
  server::ArrayServer srv(&executor_, cfg);
  int64_t setup = srv.OpenSession();
  ASSERT_TRUE(srv.Execute(setup, "CREATE TABLE o (id BIGINT, v BIGINT)").ok());
  std::string values;
  for (int i = 0; i < 60; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i) + ", 1)";
  }
  ASSERT_TRUE(srv.Execute(setup, "INSERT INTO o VALUES " + values).ok());

  // Four concurrent slow statements against one slot + one queue seat:
  // at least one must be rejected with kResourceExhausted.
  std::vector<int64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(srv.OpenSession());
  std::atomic<int> rejected{0}, succeeded{0};
  std::vector<std::thread> threads;
  for (int64_t id : ids) {
    threads.emplace_back([&, id] {
      auto r = srv.Execute(
          id, "SELECT SUM(Test.Slow(v)) FROM o");
      if (r.ok()) {
        ++succeeded;
      } else if (r.status.code() == StatusCode::kResourceExhausted) {
        ++rejected;
        // The rejection carries a typed retry-after hint and the frozen
        // numeric code, not just message text.
        EXPECT_GT(r.retry_after_ms, 0);
        EXPECT_EQ(r.error_code,
                  StatusCodeToWire(StatusCode::kResourceExhausted));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(rejected.load(), 1);
  EXPECT_GE(succeeded.load(), 1);
  EXPECT_EQ(rejected.load() + succeeded.load(), 4);
  EXPECT_GE(srv.admission_stats().rejected, 1);
}

TEST_F(ServerTest, KillQueryCancelsInFlightStatement) {
  server::ArrayServer srv(&executor_, server::ServerConfig{});
  int64_t id = srv.OpenSession();
  ASSERT_TRUE(srv.Execute(id, "CREATE TABLE k (id BIGINT, v BIGINT)").ok());
  std::string values;
  for (int i = 0; i < 2000; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i) + ", 1)";
  }
  ASSERT_TRUE(srv.Execute(id, "INSERT INTO k VALUES " + values).ok());

  std::atomic<int> code{-1};
  std::thread runner([&] {
    auto r = srv.Execute(id, "SELECT SUM(Test.Slow(v)) FROM k");
    code.store(r.ok() ? 0 : static_cast<int>(r.status.code()));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(srv.KillQuery(id).ok());
  runner.join();
  EXPECT_EQ(code.load(), static_cast<int>(StatusCode::kCancelled));

  // The session is immediately reusable.
  auto rs = srv.Execute(id, "SELECT COUNT(id) FROM k");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.result_sets.at(0).rows.at(0).at(0).AsInt().value(), 2000);
  EXPECT_TRUE(srv.CloseSession(id).ok());
}

TEST_F(ServerTest, SlowQueryWatchdogKillsRunaways) {
  // Load the table outside the watchdog server so a slow setup INSERT on a
  // busy machine can't trip the slow-query cap; only the runaway query runs
  // under the watchdog.
  {
    sql::Session setup(&executor_);
    ASSERT_TRUE(setup.Execute("CREATE TABLE w (id BIGINT, v BIGINT)").ok());
    std::string values;
    for (int i = 0; i < 500; ++i) {
      if (i > 0) values += ", ";
      values += "(" + std::to_string(i) + ", 1)";
    }
    ASSERT_TRUE(setup.Execute("INSERT INTO w VALUES " + values).ok());
  }

  server::ServerConfig cfg;
  cfg.watchdog_interval_ms = 2;
  cfg.slow_query_ms = 30;
  server::ArrayServer srv(&executor_, cfg);
  int64_t id = srv.OpenSession();
  auto r = srv.Execute(id, "SELECT SUM(Test.Slow(v)) FROM w");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(srv.CloseSession(id).ok());
}

TEST_F(ServerTest, ConcurrentSubmitCancelKillRaces) {
  // The tsan-suite workhorse: many sessions submitting mixed statements
  // while kills fly, all over one shared executor/worker pool. Asserts no
  // crashes, no deadlocks, and that every failure is a governance status.
  server::ServerConfig cfg;
  cfg.admission.max_concurrent = 3;
  cfg.admission.max_queue = 8;
  cfg.watchdog_interval_ms = 2;
  server::ArrayServer srv(&executor_, cfg);
  executor_.set_scan_workers(2);
  executor_.set_min_pages_per_worker(0);

  int64_t setup = srv.OpenSession();
  ASSERT_TRUE(
      srv.Execute(setup, "CREATE TABLE race (id BIGINT, v BIGINT)").ok());
  std::string values;
  for (int i = 0; i < 400; ++i) {
    if (i > 0) values += ", ";
    values += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ")";
  }
  ASSERT_TRUE(srv.Execute(setup, "INSERT INTO race VALUES " + values).ok());

  constexpr int kSessions = 6;
  constexpr int kOpsPerSession = 8;
  std::vector<int64_t> ids;
  for (int i = 0; i < kSessions; ++i) ids.push_back(srv.OpenSession());

  std::atomic<bool> stop_killer{false};
  std::thread killer([&] {
    size_t i = 0;
    while (!stop_killer.load()) {
      (void)srv.KillQuery(ids[i % ids.size()]);
      ++i;
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  std::atomic<int> governance_failures{0}, other_failures{0};
  std::vector<std::thread> drivers;
  for (int s = 0; s < kSessions; ++s) {
    drivers.emplace_back([&, s] {
      int64_t id = ids[s];
      if (s % 2 == 1) {
        (void)srv.Execute(id, "SET STATEMENT_TIMEOUT_MS = 10");
      }
      for (int op = 0; op < kOpsPerSession; ++op) {
        std::string sql;
        switch (op % 3) {
          case 0:
            sql = "SELECT v, SUM(id) FROM race GROUP BY v";
            break;
          case 1:
            sql = "SELECT SUM(Test.Slow(v)) FROM race WHERE id < 40";
            break;
          default:
            sql = "SELECT COUNT(id) FROM race WHERE v = 3";
            break;
        }
        auto r = srv.Execute(id, sql);
        if (!r.ok()) {
          StatusCode c = r.status.code();
          if (c == StatusCode::kCancelled ||
              c == StatusCode::kDeadlineExceeded ||
              c == StatusCode::kResourceExhausted ||
              c == StatusCode::kInvalidArgument) {
            ++governance_failures;
          } else {
            ADD_FAILURE() << "unexpected failure: " << r.status.ToString();
            ++other_failures;
          }
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  stop_killer.store(true);
  killer.join();
  EXPECT_EQ(other_failures.load(), 0);

  // The store is intact and the table untouched by the read-only barrage.
  auto rs = srv.Execute(setup, "SELECT COUNT(id) FROM race");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.result_sets.at(0).rows.at(0).at(0).AsInt().value(), 400);
  EXPECT_TRUE(storage::VerifyDatabase(&db_).issues.empty());
}

}  // namespace
}  // namespace sqlarray
