// Tests for the morsel-driven parallel engine: determinism of every
// parallel-eligible query shape across worker counts and repeated runs,
// the small-table worker cap, worker-pool lifecycle, work stealing, and
// thread-safety of the shared sharded buffer pool (run this file under
// -DSQLARRAY_SANITIZE=thread; see SQLARRAY_TSAN_TESTS in CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/exec.h"
#include "engine/parallel.h"
#include "storage/table.h"

namespace sqlarray::engine {
namespace {

/// Serializes a result set's values bit-for-bit (kind tags + raw payload
/// bytes), so "byte-identical" comparisons catch even one-ulp float drift.
std::string Fingerprint(const ResultSet& rs) {
  std::string out;
  for (const std::string& c : rs.columns) {
    out += c;
    out += ';';
  }
  for (const auto& row : rs.rows) {
    for (const Value& v : row) {
      out.push_back(static_cast<char>(v.kind()));
      if (v.is_null()) {
        out += "<null>";
      } else if (v.kind() == Value::Kind::kInt64) {
        int64_t x = v.AsInt().value();
        out.append(reinterpret_cast<const char*>(&x), sizeof(x));
      } else if (v.kind() == Value::Kind::kFloat64) {
        double d = v.AsDouble().value();
        out.append(reinterpret_cast<const char*>(&d), sizeof(d));
      } else if (v.kind() == Value::Kind::kString) {
        out += v.AsString().value();
      }
      out.push_back('|');
    }
    out.push_back('\n');
  }
  return out;
}

class ParallelTest : public ::testing::Test {
 protected:
  ParallelTest() : executor_(&db_, &registry_) {
    // Force real multi-threading even on small test tables: disable the
    // pages-per-worker amortization floor (heuristic behavior is covered
    // separately by TinyTableRunsInline).
    executor_.set_min_pages_per_worker(0);
  }

  /// ~80 leaf pages / several morsels of (id, v1, v2) rows. v1 is chosen so
  /// float summation is association-sensitive: any merge-order change across
  /// worker counts would move the SUM by ulps and break the fingerprint.
  storage::Table* MakeTable(const std::string& name, int64_t rows) {
    storage::Schema schema =
        storage::Schema::Create({{"id", storage::ColumnType::kInt64, 0},
                                 {"v1", storage::ColumnType::kFloat64, 0},
                                 {"v2", storage::ColumnType::kFloat64, 0}})
            .value();
    storage::Table* t = db_.CreateTable(name, std::move(schema)).value();
    storage::Table::BulkInserter load = t->StartBulkLoad().value();
    for (int64_t i = 0; i < rows; ++i) {
      double v1 = static_cast<double>(i) * 0.1 + 1.0 / 3.0;
      double v2 = static_cast<double>(i % 97) * 0.01;
      EXPECT_TRUE(load.Add({i, v1, v2}).ok());
    }
    EXPECT_TRUE(load.Finish().ok());
    return t;
  }

  /// Runs q at each worker count in `workers`, `repeats` times each, and
  /// expects every run byte-identical to the first. When `check_stats` is
  /// set, rows_scanned and the cost accounting must also be bitwise stable
  /// (morsel partial stats merge in morsel order, so they are).
  void ExpectDeterministic(const std::function<Query()>& make_query,
                           bool check_stats) {
    Query ref_q = make_query();
    ASSERT_TRUE(executor_.Bind(&ref_q).ok());
    executor_.set_scan_workers(1);
    ResultSet ref = executor_.Execute(ref_q, nullptr).value();
    std::string want = Fingerprint(ref);
    for (int workers : {1, 2, 3, 8}) {
      executor_.set_scan_workers(workers);
      for (int repeat = 0; repeat < 3; ++repeat) {
        Query q = make_query();
        ASSERT_TRUE(executor_.Bind(&q).ok());
        ResultSet rs = executor_.Execute(q, nullptr).value();
        EXPECT_EQ(Fingerprint(rs), want)
            << "workers=" << workers << " repeat=" << repeat;
        if (check_stats) {
          EXPECT_EQ(rs.stats.rows_scanned, ref.stats.rows_scanned)
              << "workers=" << workers;
          EXPECT_TRUE(rs.stats.cpu_core_seconds == ref.stats.cpu_core_seconds)
              << "workers=" << workers << " cpu drifted by "
              << rs.stats.cpu_core_seconds - ref.stats.cpu_core_seconds;
        }
      }
    }
    executor_.set_scan_workers(1);
  }

  storage::Database db_;
  FunctionRegistry registry_;
  Executor executor_;
};

TEST_F(ParallelTest, UngroupedAggregateDeterministicAcrossWorkers) {
  storage::Table* t = MakeTable("agg", 25000);
  ExpectDeterministic(
      [&] {
        Query q;
        q.table = t;
        for (auto kind :
             {SelectItem::AggKind::kCount, SelectItem::AggKind::kSum,
              SelectItem::AggKind::kMin, SelectItem::AggKind::kMax,
              SelectItem::AggKind::kAvg}) {
          SelectItem item;
          item.agg = kind;
          item.expr = kind == SelectItem::AggKind::kCount ? Star() : Col("v1");
          item.label = "x";
          q.items.push_back(std::move(item));
        }
        q.where = Bin(BinaryOp::kGe, Col("id"), Lit(Value::Int(137)));
        return q;
      },
      /*check_stats=*/true);
}

TEST_F(ParallelTest, FloatSumLocksMergeOrder) {
  // The pure float-sum case: every addend has a nonzero rounding error, so
  // any reassociation (per-worker instead of per-morsel partials, or a
  // merge in completion order) changes the bits of the result.
  storage::Table* t = MakeTable("fsum", 30000);
  ExpectDeterministic(
      [&] {
        Query q;
        q.table = t;
        SelectItem item;
        item.agg = SelectItem::AggKind::kSum;
        item.expr = Bin(BinaryOp::kMul, Col("v1"), Col("v2"));
        item.label = "s";
        q.items.push_back(std::move(item));
        return q;
      },
      /*check_stats=*/true);
}

TEST_F(ParallelTest, GroupByDeterministicAcrossWorkers) {
  storage::Table* t = MakeTable("grp", 25000);
  ExpectDeterministic(
      [&] {
        Query q;
        q.table = t;
        SelectItem key;
        key.expr = Bin(BinaryOp::kMod, Col("id"), Lit(Value::Int(7)));
        key.label = "k";
        q.items.push_back(std::move(key));
        SelectItem cnt;
        cnt.agg = SelectItem::AggKind::kCount;
        cnt.expr = Star();
        cnt.label = "n";
        q.items.push_back(std::move(cnt));
        SelectItem sum;
        sum.agg = SelectItem::AggKind::kSum;
        sum.expr = Col("v1");
        sum.label = "s";
        q.items.push_back(std::move(sum));
        q.group_by.push_back(
            Bin(BinaryOp::kMod, Col("id"), Lit(Value::Int(7))));
        q.where = Bin(BinaryOp::kGe, Col("id"), Lit(Value::Int(59)));
        return q;
      },
      /*check_stats=*/true);
}

TEST_F(ParallelTest, RowModeFilterDeterministicAcrossWorkers) {
  storage::Table* t = MakeTable("rows", 20000);
  ExpectDeterministic(
      [&] {
        Query q;
        q.table = t;
        SelectItem id;
        id.expr = Col("id");
        id.label = "id";
        q.items.push_back(std::move(id));
        SelectItem e;
        e.expr = Bin(BinaryOp::kAdd,
                     Bin(BinaryOp::kMul, Col("v1"), Lit(Value::Double(2.5))),
                     Col("v2"));
        e.label = "e";
        q.items.push_back(std::move(e));
        q.where = Bin(BinaryOp::kEq,
                      Bin(BinaryOp::kMod, Col("id"), Lit(Value::Int(3))),
                      Lit(Value::Int(1)));
        return q;
      },
      /*check_stats=*/true);
}

TEST_F(ParallelTest, TopShortCircuitDeterministicAcrossWorkers) {
  storage::Table* t = MakeTable("top", 20000);
  // TOP result rows are deterministic; rows_scanned is not (concurrent
  // workers may overshoot the limit), so stats stay unchecked.
  ExpectDeterministic(
      [&] {
        Query q;
        q.table = t;
        SelectItem id;
        id.expr = Col("id");
        id.label = "id";
        q.items.push_back(std::move(id));
        q.where = Bin(BinaryOp::kGe, Col("id"), Lit(Value::Int(9000)));
        q.top = 37;
        return q;
      },
      /*check_stats=*/false);
}

TEST_F(ParallelTest, TopShortCircuitSkipsTailAtOneWorker) {
  storage::Table* t = MakeTable("topskip", 20000);
  Query q;
  q.table = t;
  SelectItem id;
  id.expr = Col("id");
  id.label = "id";
  q.items.push_back(std::move(id));
  q.top = 5;
  ASSERT_TRUE(executor_.Bind(&q).ok());
  executor_.set_scan_workers(1);
  ResultSet rs = executor_.Execute(q, nullptr).value();
  ASSERT_EQ(rs.rows.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rs.rows[static_cast<size_t>(i)][0].AsInt().value(), i);
  }
  // Early exit: only the rows needed to fill the limit were scanned.
  EXPECT_EQ(rs.stats.rows_scanned, 5);
}

TEST_F(ParallelTest, TinyTableRunsInline) {
  // With the cost-model worker cap active, a one-page table at 8 requested
  // workers runs inline: no pool threads are ever created, so tiny scans
  // don't pay thread dispatch or extra stream setup (the EXPERIMENTS.md
  // 1/1000-scale regression).
  executor_.set_min_pages_per_worker(-1);  // restore the heuristic
  storage::Table* t = MakeTable("tiny", 300);
  executor_.set_scan_workers(8);

  Query q;
  q.table = t;
  SelectItem sum;
  sum.agg = SelectItem::AggKind::kSum;
  sum.expr = Col("id");
  sum.label = "s";
  q.items.push_back(std::move(sum));
  ASSERT_TRUE(executor_.Bind(&q).ok());
  ResultSet rs = executor_.Execute(q, nullptr).value();
  EXPECT_EQ(rs.ScalarResult().value().AsInt().value(), 300 * 299 / 2);
  EXPECT_EQ(rs.stats.rows_scanned, 300);
  EXPECT_EQ(executor_.worker_pool(), nullptr);
}

TEST_F(ParallelTest, WorkerPoolPersistsAcrossQueries) {
  storage::Table* t = MakeTable("pool", 25000);
  Query q;
  q.table = t;
  SelectItem cnt;
  cnt.agg = SelectItem::AggKind::kCount;
  cnt.expr = Star();
  cnt.label = "n";
  q.items.push_back(std::move(cnt));
  ASSERT_TRUE(executor_.Bind(&q).ok());

  executor_.set_scan_workers(4);
  ASSERT_TRUE(executor_.Execute(q, nullptr).ok());
  WorkerPool* pool = executor_.worker_pool();
  ASSERT_NE(pool, nullptr);
  int threads_after_first = pool->thread_count();
  EXPECT_GE(threads_after_first, 1);

  // Reused, not recreated or regrown, on the next queries.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(executor_.Execute(q, nullptr).ok());
  }
  EXPECT_EQ(executor_.worker_pool(), pool);
  EXPECT_EQ(pool->thread_count(), threads_after_first);
}

TEST_F(ParallelTest, LegacyStaticChunkModeStillMatches) {
  storage::Table* t = MakeTable("legacy", 25000);
  auto make_query = [&] {
    Query q;
    q.table = t;
    SelectItem sum;
    sum.agg = SelectItem::AggKind::kSum;
    sum.expr = Col("id");
    sum.label = "s";
    q.items.push_back(std::move(sum));
    SelectItem cnt;
    cnt.agg = SelectItem::AggKind::kCount;
    cnt.expr = Star();
    cnt.label = "n";
    q.items.push_back(std::move(cnt));
    return q;
  };
  Query morsel_q = make_query();
  ASSERT_TRUE(executor_.Bind(&morsel_q).ok());
  executor_.set_scan_workers(4);
  ResultSet morsel = executor_.Execute(morsel_q, nullptr).value();

  executor_.set_parallel_mode(ParallelMode::kStaticChunkLegacy);
  Query legacy_q = make_query();
  ASSERT_TRUE(executor_.Bind(&legacy_q).ok());
  ResultSet legacy = executor_.Execute(legacy_q, nullptr).value();
  executor_.set_parallel_mode(ParallelMode::kMorsel);
  executor_.set_scan_workers(1);

  ASSERT_EQ(morsel.rows.size(), 1u);
  ASSERT_EQ(legacy.rows.size(), 1u);
  EXPECT_EQ(morsel.rows[0][0].AsInt().value(),
            legacy.rows[0][0].AsInt().value());
  EXPECT_EQ(morsel.rows[0][1].AsInt().value(),
            legacy.rows[0][1].AsInt().value());
}

// ---------------------------------------------------------------------------
// Scheduler primitives.

TEST(MorselQueueTest, HandsOutEveryMorselExactlyOnce) {
  constexpr size_t kPages = 1000;
  constexpr size_t kMorselPages = 7;
  constexpr int kWorkers = 8;
  MorselQueue queue(kPages, kMorselPages, kWorkers);
  ASSERT_EQ(queue.morsel_count(), (kPages + kMorselPages - 1) / kMorselPages);

  std::vector<std::vector<Morsel>> taken(kWorkers);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([w, &queue, &taken] {
      Morsel m;
      while (queue.Next(w, &m)) taken[static_cast<size_t>(w)].push_back(m);
    });
  }
  for (std::thread& t : threads) t.join();

  std::set<size_t> seen;
  std::vector<bool> page_covered(kPages, false);
  for (const auto& per_worker : taken) {
    for (const Morsel& m : per_worker) {
      EXPECT_TRUE(seen.insert(m.index).second) << "morsel handed out twice";
      EXPECT_EQ(m.page_begin, m.index * kMorselPages);
      EXPECT_LE(m.page_end, kPages);
      for (size_t p = m.page_begin; p < m.page_end; ++p) page_covered[p] = true;
    }
  }
  EXPECT_EQ(seen.size(), queue.morsel_count());
  for (size_t p = 0; p < kPages; ++p) {
    EXPECT_TRUE(page_covered[p]) << "page " << p << " never scheduled";
  }
}

TEST(MorselQueueTest, IdleWorkerStealsFromLoadedVictim) {
  // Two workers, but worker 1 never consumes its own partition: worker 0
  // must drain the whole grid through steals.
  MorselQueue queue(64, 4, 2);
  size_t drained = 0;
  Morsel m;
  while (queue.Next(0, &m)) drained++;
  EXPECT_EQ(drained, queue.morsel_count());
}

TEST(WorkerPoolTest, RunsEveryWorkerAndReusesThreads) {
  WorkerPool pool;
  std::atomic<int> hits{0};
  std::vector<std::atomic<int>> per_slot(8);
  pool.Run(8, [&](int w) {
    per_slot[static_cast<size_t>(w)].fetch_add(1);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 8);
  for (const auto& s : per_slot) EXPECT_EQ(s.load(), 1);
  EXPECT_EQ(pool.thread_count(), 8);

  // A narrower job reuses a subset of the same threads.
  pool.Run(3, [&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 11);
  EXPECT_EQ(pool.thread_count(), 8);
}

// ---------------------------------------------------------------------------
// Shared buffer pool + disk thread-safety (the TSan targets).

TEST(BufferPoolConcurrencyTest, ManyThreadsPinUnpinAndClear) {
  storage::SimulatedDisk disk;
  constexpr int kPages = 64;
  for (int i = 0; i < kPages; ++i) {
    storage::Page page;
    page.bytes.fill(0xab);
    ASSERT_TRUE(disk.WritePage(disk.AllocatePage(), page).ok());
  }
  storage::BufferPool pool(&disk, /*capacity_pages=*/512, /*shards=*/4);
  ASSERT_EQ(pool.shard_count(), 4);

  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &pool, &failed] {
      for (int i = 0; i < kIters && !failed.load(); ++i) {
        // Allocated ids are 1..kPages (page 0 is the reserved null page).
        auto id = static_cast<storage::PageId>(1 + (t * 31 + i * 7) % kPages);
        if (i % 11 == 0) {
          (void)pool.Prefetch(
              static_cast<storage::PageId>(1 + (t + i) % kPages));
        }
        auto pinned = pool.GetPage(id);
        if (!pinned.ok()) {
          failed.store(true);
          break;
        }
        if ((*pinned)->bytes[0] != 0xab) failed.store(true);
        if (i % 23 == 0) pool.ClearCache();  // only unpinned pages drop
        // PinnedPage unpins on scope exit.
      }
    });
  }
  // Concurrent stats readers race against the counters (atomics) and the
  // disk's locked IoStats snapshot.
  threads.emplace_back([&pool, &disk, &failed] {
    for (int i = 0; i < kIters; ++i) {
      storage::BufferPool::Stats ps = pool.Snapshot();
      if (ps.hits < 0 || ps.misses < 0) failed.store(true);
      storage::IoStats io = disk.stats();
      if (io.pages_read < 0) failed.store(true);
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  storage::BufferPool::Stats stats = pool.Snapshot();
  EXPECT_EQ(stats.pinned_pages, 0);
  EXPECT_GT(stats.hits + stats.misses, 0);
}

TEST(BufferPoolConcurrencyTest, ParallelQueriesShareOneCache) {
  // End-to-end: a parallel scan through the executor leaves its pages in
  // the database's shared pool (not in private per-worker pools), so
  // ClearCache affects parallel reruns exactly like serial ones.
  storage::Database db;
  FunctionRegistry registry;
  Executor executor(&db, &registry);
  executor.set_min_pages_per_worker(0);

  storage::Schema schema =
      storage::Schema::Create({{"id", storage::ColumnType::kInt64, 0},
                               {"v", storage::ColumnType::kFloat64, 0}})
          .value();
  storage::Table* t = db.CreateTable("shared", std::move(schema)).value();
  storage::Table::BulkInserter load = t->StartBulkLoad().value();
  for (int64_t i = 0; i < 30000; ++i) {
    ASSERT_TRUE(load.Add({i, static_cast<double>(i)}).ok());
  }
  ASSERT_TRUE(load.Finish().ok());

  Query q;
  q.table = t;
  SelectItem sum;
  sum.agg = SelectItem::AggKind::kSum;
  sum.expr = Col("v");
  sum.label = "s";
  q.items.push_back(std::move(sum));
  ASSERT_TRUE(executor.Bind(&q).ok());

  executor.set_scan_workers(8);
  db.ClearCache();
  ResultSet cold = executor.Execute(q, nullptr).value();
  ResultSet warm = executor.Execute(q, nullptr).value();
  // The rerun is served from the shared cache: no new physical reads.
  EXPECT_GT(cold.stats.io.pages_read, 0);
  EXPECT_EQ(warm.stats.io.pages_read, 0);
  EXPECT_EQ(cold.ScalarResult().value().AsDouble().value(),
            warm.ScalarResult().value().AsDouble().value());
}

}  // namespace
}  // namespace sqlarray::engine
