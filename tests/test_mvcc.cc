// Tests for MVCC snapshot isolation and time travel (src/mvcc/): snapshot
// repeatability under concurrent DML, read-your-own-writes inside a
// transaction, first-updater-wins conflicts with the typed retry hint,
// deterministic AS OF reads across worker counts and across crash/recovery,
// version GC keyed off the oldest active snapshot, commit crash steps, and a
// hot-row reader/writer stress that doubles as the tsan_mvcc_suite workload.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/exec.h"
#include "mvcc/mvcc.h"
#include "sql/session.h"
#include "storage/table.h"
#include "storage/verify.h"
#include "udfs/register.h"
#include "wal/wal.h"

namespace sqlarray {
namespace {

using engine::Value;
using mvcc::MvccConfig;
using mvcc::MvccManager;
using mvcc::MvccStats;
using wal::WalManager;

/// A database with WAL + MVCC attached and a shared executor; tests open
/// sql::Session instances over `executor` as independent "connections".
struct Rig {
  storage::Database db;
  WalManager wal;
  MvccManager mvcc;
  engine::FunctionRegistry registry;
  engine::Executor executor;

  explicit Rig(MvccConfig config = {})
      : wal(&db), mvcc(&db, &wal, config), executor(&db, &registry) {
    EXPECT_TRUE(udfs::RegisterAllUdfs(&registry).ok());
  }

  /// Creates `t (id BIGINT, v BIGINT)` holding ids [0, rows) with v=id%7.
  void LoadTable(int64_t rows) {
    sql::Session s(&executor);
    ASSERT_TRUE(s.Execute("CREATE TABLE t (id BIGINT, v BIGINT)").ok());
    std::string values;
    for (int64_t i = 0; i < rows; ++i) {
      if (!values.empty()) values += ", ";
      values += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ")";
      if (values.size() > 100000 || i + 1 == rows) {
        ASSERT_TRUE(s.Execute("INSERT INTO t VALUES " + values).ok());
        values.clear();
      }
    }
  }
};

/// Runs a batch expected to produce exactly one result set.
engine::ResultSet MustQuery(sql::Session* s, const std::string& sql) {
  Result<std::vector<engine::ResultSet>> r = s->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().message();
  if (!r.ok() || r->size() != 1) return {};
  return std::move((*r)[0]);
}

int64_t AsIntOr(const Value& v, int64_t fallback) {
  Result<int64_t> r = v.AsInt();
  return r.ok() ? *r : fallback;
}

std::string AsStrOr(const Value& v, const std::string& fallback) {
  Result<std::string> r = v.AsString();
  return r.ok() ? *r : fallback;
}

int64_t ScalarInt(sql::Session* s, const std::string& sql) {
  engine::ResultSet rs = MustQuery(s, sql);
  if (rs.rows.size() != 1 || rs.rows[0].empty()) return -1;
  return AsIntOr(rs.rows[0][0], -1);
}

/// FNV-1a over a result set's integer cells — the bitwise repeatability
/// fingerprint the determinism properties compare.
uint64_t ResultFingerprint(const engine::ResultSet& rs) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(rs.rows.size());
  for (const std::vector<Value>& row : rs.rows) {
    for (const Value& v : row) {
      mix(static_cast<uint64_t>(AsIntOr(v, 0)));
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// Snapshot visibility
// ---------------------------------------------------------------------------

TEST(MvccSnapshot, AsOfReadIsRepeatableDespiteLaterCommits) {
  Rig rig;
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(500));
  sql::Session reader(&rig.executor);
  sql::Session writer(&rig.executor);

  storage::Lsn lsn = rig.mvcc.visible_lsn();
  std::string as_of = "SELECT COUNT(id) FROM t AS OF " + std::to_string(lsn);
  EXPECT_EQ(ScalarInt(&reader, as_of), 500);

  ASSERT_TRUE(writer.Execute("INSERT INTO t VALUES (1000, 1)").ok());
  ASSERT_TRUE(writer.Execute("DELETE FROM t WHERE id < 100").ok());

  // The pinned LSN still sees the pre-DML world; a live read does not.
  EXPECT_EQ(ScalarInt(&reader, as_of), 500);
  EXPECT_EQ(ScalarInt(&reader, "SELECT COUNT(id) FROM t"), 401);
}

TEST(MvccSnapshot, TransactionSeesOwnWritesOthersDoNot) {
  Rig rig;
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(50));
  sql::Session a(&rig.executor);
  sql::Session b(&rig.executor);

  ASSERT_TRUE(a.Execute("BEGIN TRANSACTION").ok());
  ASSERT_TRUE(a.Execute("INSERT INTO t VALUES (999, 9)").ok());
  ASSERT_TRUE(a.Execute("DELETE FROM t WHERE id = 0").ok());

  // Read-your-own-writes inside the transaction...
  EXPECT_EQ(ScalarInt(&a, "SELECT COUNT(id) FROM t"), 50);
  EXPECT_EQ(ScalarInt(&a, "SELECT COUNT(id) FROM t WHERE id = 999"), 1);
  // ...while another session still sees the committed state (no dirty
  // reads), and is not blocked by the open writer.
  EXPECT_EQ(ScalarInt(&b, "SELECT COUNT(id) FROM t"), 50);
  EXPECT_EQ(ScalarInt(&b, "SELECT COUNT(id) FROM t WHERE id = 999"), 0);

  ASSERT_TRUE(a.Execute("COMMIT").ok());
  EXPECT_EQ(ScalarInt(&b, "SELECT COUNT(id) FROM t WHERE id = 999"), 1);
  EXPECT_EQ(ScalarInt(&b, "SELECT COUNT(id) FROM t WHERE id = 0"), 0);
}

TEST(MvccSnapshot, RolledBackTransactionLeavesNoTrace) {
  Rig rig;
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(20));
  sql::Session s(&rig.executor);
  ASSERT_TRUE(s.Execute("BEGIN TRANSACTION").ok());
  ASSERT_TRUE(s.Execute("INSERT INTO t VALUES (777, 7)").ok());
  ASSERT_TRUE(s.Execute("DELETE FROM t WHERE id < 5").ok());
  ASSERT_TRUE(s.Execute("ROLLBACK").ok());

  EXPECT_EQ(ScalarInt(&s, "SELECT COUNT(id) FROM t"), 20);
  EXPECT_EQ(ScalarInt(&s, "SELECT COUNT(id) FROM t WHERE id = 777"), 0);
  EXPECT_TRUE(storage::VerifyDatabase(&rig.db).issues.empty());
}

TEST(MvccSnapshot, ExplainAnalyzeReportsSnapshotLsn) {
  Rig rig;
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(10));
  sql::Session s(&rig.executor);
  engine::ResultSet rs =
      MustQuery(&s, "EXPLAIN ANALYZE SELECT COUNT(id) FROM t");
  bool found = false;
  for (const std::vector<Value>& row : rs.rows) {
    std::string op = AsStrOr(row[0], "");
    std::string detail = AsStrOr(row[1], "");
    // Flattened profile rows indent child operators two spaces per level.
    op.erase(0, op.find_first_not_of(' '));
    if (op == "snapshot") {
      found = true;
      EXPECT_EQ(detail.rfind("lsn=", 0), 0u) << detail;
    }
  }
  EXPECT_TRUE(found) << "no snapshot row in the profile";
}

// ---------------------------------------------------------------------------
// Write conflicts: first updater wins
// ---------------------------------------------------------------------------

TEST(MvccConflict, FirstUpdaterWinsWithTypedRetryHint) {
  Rig rig;
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(50));
  sql::Session a(&rig.executor);
  sql::Session b(&rig.executor);
  int64_t conflicts_before = rig.mvcc.Stats().write_conflicts;

  ASSERT_TRUE(a.Execute("BEGIN TRANSACTION").ok());
  ASSERT_TRUE(b.Execute("BEGIN TRANSACTION").ok());
  ASSERT_TRUE(a.Execute("DELETE FROM t WHERE id = 5").ok());

  // B touches the same clustered key while A's claim is live: B loses
  // immediately (no waiting) with the frozen status and a retry hint.
  Status st = b.Execute("DELETE FROM t WHERE id = 5").status();
  EXPECT_EQ(st.code(), StatusCode::kWriteConflict) << st.ToString();
  EXPECT_GT(st.retry_after_ms(), 0);
  EXPECT_EQ(rig.mvcc.Stats().write_conflicts, conflicts_before + 1);

  // The loser rolls back cleanly; the winner commits.
  ASSERT_TRUE(b.Execute("ROLLBACK").ok());
  ASSERT_TRUE(a.Execute("COMMIT").ok());
  EXPECT_EQ(ScalarInt(&a, "SELECT COUNT(id) FROM t WHERE id = 5"), 0);

  // B retries after the winner committed and proceeds without conflict.
  ASSERT_TRUE(b.Execute("BEGIN TRANSACTION").ok());
  ASSERT_TRUE(b.Execute("INSERT INTO t VALUES (5, 55)").ok());
  ASSERT_TRUE(b.Execute("COMMIT").ok());
  EXPECT_EQ(ScalarInt(&a, "SELECT COUNT(id) FROM t WHERE id = 5"), 1);
  EXPECT_TRUE(storage::VerifyDatabase(&rig.db).issues.empty());
}

TEST(MvccConflict, CommittedWriterBeatsTransactionThatBeganEarlier) {
  Rig rig;
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(50));
  sql::Session early(&rig.executor);
  sql::Session late(&rig.executor);

  ASSERT_TRUE(early.Execute("BEGIN TRANSACTION").ok());
  // An autocommitted writer claims and commits key 7 after `early` began.
  ASSERT_TRUE(late.Execute("DELETE FROM t WHERE id = 7").ok());

  // `early`'s snapshot predates that commit, so its update of the same key
  // must lose — first updater (the committed one) wins.
  Status st = early.Execute("INSERT INTO t VALUES (7, 70)").status();
  EXPECT_EQ(st.code(), StatusCode::kWriteConflict) << st.ToString();
  ASSERT_TRUE(early.Execute("ROLLBACK").ok());
}

TEST(MvccConflict, WriteConflictWireCodeIsFrozen) {
  // The wire protocol's numeric table is frozen: WRITE_CONFLICT is 13 and
  // carries its retry hint through StatementOutcome like admission does.
  Status st = Status::WriteConflict("loser", 7);
  EXPECT_EQ(static_cast<int32_t>(StatusCode::kWriteConflict), 13);
  EXPECT_EQ(StatusCodeToWire(st.code()), 13);
  EXPECT_EQ(st.retry_after_ms(), 7);
  EXPECT_EQ(StatusCodeName(st.code()), std::string("WRITE_CONFLICT"));
}

// ---------------------------------------------------------------------------
// Determinism: one snapshot LSN, any worker count, identical bytes
// ---------------------------------------------------------------------------

TEST(MvccDeterminism, AsOfFingerprintStableAcrossWorkersUnderDml) {
  Rig rig;
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(3000));
  storage::Lsn lsn = rig.mvcc.visible_lsn();
  std::string sql =
      "SELECT COUNT(id), SUM(id), SUM(v) FROM t AS OF " + std::to_string(lsn);

  // The reader gets its own executor over the same storage: the sweep below
  // flips set_scan_workers between reads, which is not safe against
  // statements in flight, and the writer threads keep the shared executor
  // busy the whole time.
  engine::Executor reader_exec(&rig.db, &rig.registry);
  sql::Session baseline(&reader_exec);
  uint64_t want = ResultFingerprint(MustQuery(&baseline, sql));

  // Churn the scanned range from two writer threads while the pinned-LSN
  // read runs at 1, 2, and 8 workers: every read must be bitwise identical.
  // The writers get a fixed op budget rather than free-running: each AS OF
  // read replays the log prefix, so unbounded concurrent appends would make
  // every read strictly slower than the last and the test would never
  // terminate. 150 churn ops per writer keeps DML overlapping the early
  // reads while bounding total log growth.
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      sql::Session s(&rig.executor);
      for (int64_t n = 0; n < 150; ++n) {
        int64_t key = (w * 1500 + n * 13) % 3000;
        (void)s.Execute("DELETE FROM t WHERE id = " + std::to_string(key));
        (void)s.Execute("INSERT INTO t VALUES (" + std::to_string(key) +
                        ", -1)");
      }
    });
  }
  for (int workers : {1, 2, 8}) {
    reader_exec.set_scan_workers(workers);
    for (int round = 0; round < 3; ++round) {
      engine::ResultSet rs = MustQuery(&baseline, sql);
      EXPECT_EQ(ResultFingerprint(rs), want)
          << "workers=" << workers << " round=" << round;
    }
  }
  for (std::thread& t : writers) t.join();
  EXPECT_TRUE(storage::VerifyDatabase(&rig.db).issues.empty());
}

// ---------------------------------------------------------------------------
// Time travel across restart/recovery
// ---------------------------------------------------------------------------

TEST(MvccTimeTravel, AsOfWorksAcrossCrashRecovery) {
  Rig rig;
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(200));
  sql::Session s(&rig.executor);
  storage::Lsn epoch1 = rig.mvcc.visible_lsn();

  ASSERT_TRUE(s.Execute("DELETE FROM t WHERE id < 50").ok());
  ASSERT_TRUE(s.Execute("CHECKPOINT").ok());
  storage::Lsn epoch2 = rig.mvcc.visible_lsn();
  ASSERT_TRUE(s.Execute("INSERT INTO t VALUES (500, 5), (501, 5)").ok());

  rig.wal.SimulateCrash();
  ASSERT_TRUE(rig.wal.Recover().ok());

  // The recovered database answers both live and historical reads.
  EXPECT_EQ(ScalarInt(&s, "SELECT COUNT(id) FROM t"), 152);
  EXPECT_EQ(ScalarInt(&s, "SELECT COUNT(id) FROM t AS OF " +
                              std::to_string(epoch1)),
            200);
  EXPECT_EQ(ScalarInt(&s, "SELECT COUNT(id) FROM t AS OF " +
                              std::to_string(epoch2)),
            150);
  // AS OF CHECKPOINT resolves the last durable checkpoint (taken after the
  // delete, before the insert).
  EXPECT_EQ(ScalarInt(&s, "SELECT COUNT(id) FROM t AS OF CHECKPOINT"), 150);
}

TEST(MvccTimeTravel, AsOfRequiresMvccAndValidLsn) {
  // Without an MVCC manager, AS OF is a typed error, not silent live data.
  storage::Database db;
  engine::FunctionRegistry registry;
  engine::Executor executor(&db, &registry);
  sql::Session s(&executor);
  ASSERT_TRUE(s.Execute("CREATE TABLE t (id BIGINT, v BIGINT)").ok());
  Status st = s.Execute("SELECT COUNT(id) FROM t AS OF 1").status();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  Rig rig;
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(5));
  sql::Session m(&rig.executor);
  // An LSN beyond everything durable is rejected, not misread.
  Status future = m.Execute("SELECT COUNT(id) FROM t AS OF 999999999")
                      .status();
  EXPECT_FALSE(future.ok());
}

// ---------------------------------------------------------------------------
// Version GC
// ---------------------------------------------------------------------------

TEST(MvccGc, OldestSnapshotPinsHistoryReleaseDrainsIt) {
  Rig rig;
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(300));
  sql::Session s(&rig.executor);

  auto snap = rig.mvcc.AcquireSnapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().message();
  EXPECT_EQ(rig.mvcc.Stats().snapshots_active, 1);

  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(s.Execute("DELETE FROM t WHERE id < 40").ok());
    std::string values;
    for (int64_t i = 0; i < 40; ++i) {
      if (!values.empty()) values += ", ";
      values += "(" + std::to_string(i) + ", " + std::to_string(round) + ")";
    }
    ASSERT_TRUE(s.Execute("INSERT INTO t VALUES " + values).ok());
  }
  MvccStats pinned = rig.mvcc.Stats();
  EXPECT_GT(pinned.versions_created, 0);
  EXPECT_GT(pinned.versions_created - pinned.versions_gc, 0);
  EXPECT_GT(pinned.history_bytes, 0);
  EXPECT_GT(pinned.oldest_snapshot_lsn, 0u);

  // Dropping the last snapshot moves the horizon to infinity: the chains
  // drain completely and the gauges return to zero.
  snap->reset();
  MvccStats drained = rig.mvcc.Stats();
  EXPECT_EQ(drained.snapshots_active, 0);
  EXPECT_EQ(drained.versions_created - drained.versions_gc, 0);
  EXPECT_EQ(drained.history_bytes, 0);
}

TEST(MvccGc, HistoryBudgetRejectsNewSnapshotsWithRetryHint) {
  MvccConfig config;
  config.history_budget_bytes = 4096;  // half a page: trips immediately
  Rig rig(config);
  ASSERT_NO_FATAL_FAILURE(rig.LoadTable(100));
  sql::Session s(&rig.executor);

  auto pin = rig.mvcc.AcquireSnapshot();
  ASSERT_TRUE(pin.ok());
  ASSERT_TRUE(s.Execute("DELETE FROM t WHERE id < 50").ok());
  ASSERT_GT(rig.mvcc.Stats().history_bytes, config.history_budget_bytes);

  Result<std::shared_ptr<storage::PageSource>> rejected =
      rig.mvcc.AcquireSnapshot();
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(rejected.status().retry_after_ms(), 0);

  pin->reset();  // history drains; snapshots admit again
  EXPECT_TRUE(rig.mvcc.AcquireSnapshot().ok());
}

// ---------------------------------------------------------------------------
// Commit crash steps: a transaction dies whole
// ---------------------------------------------------------------------------

TEST(MvccCrash, CommitCrashAtEveryStepRecoversAtomically) {
  for (int step = 1; step <= 3; ++step) {
    SCOPED_TRACE("crash step " + std::to_string(step));
    Rig rig;
    ASSERT_NO_FATAL_FAILURE(rig.LoadTable(60));
    sql::Session s(&rig.executor);

    uint64_t txn = rig.mvcc.Begin().value();
    storage::Table* table = rig.db.GetTable("t").value();
    ASSERT_TRUE(rig.mvcc.ApplyInsert(txn, table, {int64_t{900}, int64_t{9}})
                    .ok());
    ASSERT_TRUE(rig.mvcc.ApplyDelete(txn, table, 3).value());
    rig.mvcc.set_commit_crash_step(step);
    EXPECT_FALSE(rig.mvcc.Commit(txn).ok());

    rig.wal.SimulateCrash();
    ASSERT_TRUE(rig.wal.Recover().ok());

    // Nothing of the doomed transaction may survive, and the database
    // keeps serving reads and commits.
    EXPECT_EQ(ScalarInt(&s, "SELECT COUNT(id) FROM t"), 60);
    EXPECT_EQ(ScalarInt(&s, "SELECT COUNT(id) FROM t WHERE id = 900"), 0);
    EXPECT_EQ(ScalarInt(&s, "SELECT COUNT(id) FROM t WHERE id = 3"), 1);
    ASSERT_TRUE(s.Execute("INSERT INTO t VALUES (901, 1)").ok());
    EXPECT_EQ(ScalarInt(&s, "SELECT COUNT(id) FROM t"), 61);
    EXPECT_TRUE(storage::VerifyDatabase(&rig.db).issues.empty());
  }
}

// ---------------------------------------------------------------------------
// Reader/writer stress (the tsan_mvcc_suite workload)
// ---------------------------------------------------------------------------

TEST(MvccStress, HotRowReadersAlwaysSeeAtomicRewrites) {
  // Writers transactionally rewrite all four hot rows to one value per
  // round; snapshot readers must never observe a torn rewrite (mixed
  // values) — the invariant that falls out of statement-level snapshots.
  Rig rig;
  {
    sql::Session setup(&rig.executor);
    ASSERT_TRUE(setup.Execute("CREATE TABLE hot (id BIGINT, v BIGINT)").ok());
    ASSERT_TRUE(
        setup.Execute("INSERT INTO hot VALUES (0,0), (1,0), (2,0), (3,0)")
            .ok());
  }

  constexpr int kWriters = 3, kReaders = 2, kRounds = 25, kReads = 60;
  std::atomic<int64_t> conflicts{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      sql::Session s(&rig.executor);
      for (int round = 0; round < kRounds; ++round) {
        int64_t val = w * 1000 + round;
        std::string batch = "BEGIN TRANSACTION";
        for (int k = 0; k < 4; ++k) {
          batch += "; DELETE FROM hot WHERE id = " + std::to_string(k) +
                   "; INSERT INTO hot VALUES (" + std::to_string(k) + ", " +
                   std::to_string(val) + ")";
        }
        batch += "; COMMIT";
        for (int attempt = 0; attempt < 200; ++attempt) {
          Status st = s.Execute(batch).status();
          if (st.ok()) break;
          EXPECT_EQ(st.code(), StatusCode::kWriteConflict) << st.ToString();
          conflicts.fetch_add(1, std::memory_order_relaxed);
          (void)s.Execute("ROLLBACK");
          std::this_thread::sleep_for(
              std::chrono::milliseconds(st.retry_after_ms()));
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      sql::Session s(&rig.executor);
      for (int op = 0; op < kReads; ++op) {
        engine::ResultSet rs =
            MustQuery(&s, "SELECT MIN(v), MAX(v), COUNT(id) FROM hot");
        if (rs.rows.size() != 1) continue;
        int64_t lo = AsIntOr(rs.rows[0][0], -1);
        int64_t hi = AsIntOr(rs.rows[0][1], -2);
        int64_t n = AsIntOr(rs.rows[0][2], 0);
        if (lo != hi || n != 4) torn.store(true);
        EXPECT_EQ(n, 4);
        EXPECT_EQ(lo, hi) << "torn rewrite visible";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(torn.load());
  // Contention on four rows across three writers: conflicts are the norm.
  EXPECT_TRUE(storage::VerifyDatabase(&rig.db).issues.empty());
}

}  // namespace
}  // namespace sqlarray
