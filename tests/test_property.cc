// Randomized property tests: invariants that must hold for arbitrary
// shapes, dtypes, offsets, and expressions. Seeds are fixed, so failures
// reproduce deterministically.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/byte_source.h"
#include "core/concat.h"
#include "core/ops.h"
#include "core/stream_ops.h"
#include "engine/exec.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "udfs/register.h"

namespace sqlarray {
namespace {

constexpr DType kRealDTypes[] = {DType::kInt8,    DType::kInt16,
                                 DType::kInt32,   DType::kInt64,
                                 DType::kFloat32, DType::kFloat64};

Dims RandomShape(Rng* rng, int max_rank, int64_t max_dim) {
  int rank = static_cast<int>(rng->UniformInt(1, max_rank));
  Dims dims(rank);
  for (int k = 0; k < rank; ++k) dims[k] = rng->UniformInt(1, max_dim);
  return dims;
}

OwnedArray RandomArray(Rng* rng, DType dtype, const Dims& dims) {
  OwnedArray a = OwnedArray::Zeros(dtype, dims).value();
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    double v = IsIntegerDType(dtype)
                   ? static_cast<double>(rng->UniformInt(-100, 100))
                   : rng->Uniform(-100, 100);
    EXPECT_TRUE(a.SetDouble(i, v).ok());
  }
  return a;
}

class PropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(PropertySweep, BlobRoundTripAndStreamEquivalence) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    DType dtype = kRealDTypes[rng.UniformInt(0, 5)];
    Dims dims = RandomShape(&rng, 4, 6);
    OwnedArray a = RandomArray(&rng, dtype, dims);

    // Serialize / reparse identity.
    OwnedArray back = OwnedArray::FromBlob(
        std::vector<uint8_t>(a.blob().begin(), a.blob().end())).value();
    ASSERT_EQ(back.dims(), a.dims());
    ASSERT_EQ(back.dtype(), a.dtype());
    for (int64_t i = 0; i < a.num_elements(); ++i) {
      ASSERT_EQ(back.ref().GetDouble(i).value(),
                a.ref().GetDouble(i).value());
    }

    // Random subarray: local and streamed paths agree element-wise.
    Dims offset(dims.size()), sizes(dims.size());
    for (size_t k = 0; k < dims.size(); ++k) {
      offset[k] = rng.UniformInt(0, dims[k] - 1);
      sizes[k] = rng.UniformInt(1, dims[k] - offset[k]);
    }
    OwnedArray local = Subarray(a.ref(), offset, sizes, false).value();
    MemoryByteSource source(a.blob());
    OwnedArray streamed =
        StreamSubarray(&source, offset, sizes, false).value();
    ASSERT_EQ(local.dims(), streamed.dims());
    for (int64_t i = 0; i < local.num_elements(); ++i) {
      ASSERT_EQ(local.ref().GetDouble(i).value(),
                streamed.ref().GetDouble(i).value());
    }

    // Every subarray element equals direct indexing into the source.
    for (int probe = 0; probe < 5; ++probe) {
      Dims idx(dims.size());
      Dims global(dims.size());
      for (size_t k = 0; k < dims.size(); ++k) {
        idx[k] = rng.UniformInt(0, sizes[k] - 1);
        global[k] = offset[k] + idx[k];
      }
      ASSERT_EQ(local.ref().GetDoubleAt(idx).value(),
                a.ref().GetDoubleAt(global).value());
    }
  }
}

TEST_P(PropertySweep, ReshapeIsOrderPreservingAndInvertible) {
  Rng rng(2000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    DType dtype = kRealDTypes[rng.UniformInt(0, 5)];
    Dims dims = RandomShape(&rng, 3, 8);
    OwnedArray a = RandomArray(&rng, dtype, dims);
    int64_t n = a.num_elements();

    // Reshape to a flat vector and back: identity.
    OwnedArray flat = Reshape(a.ref(), {n}).value();
    OwnedArray back = Reshape(flat.ref(), dims).value();
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(back.ref().GetDouble(i).value(),
                a.ref().GetDouble(i).value());
    }
  }
}

TEST_P(PropertySweep, ConcatToTableRoundTrip) {
  Rng rng(3000 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    DType dtype = kRealDTypes[rng.UniformInt(0, 5)];
    Dims dims = RandomShape(&rng, 3, 6);
    OwnedArray a = RandomArray(&rng, dtype, dims);
    auto rows = ToTable(a.ref()).value();
    ConcatBuilder b = ConcatBuilder::Create(dtype, dims).value();
    for (const ArrayTableRow& r : rows) {
      ASSERT_TRUE(b.Add(r.index, r.value).ok());
    }
    OwnedArray back = std::move(b).Finish().value();
    for (int64_t i = 0; i < a.num_elements(); ++i) {
      ASSERT_EQ(back.ref().GetDouble(i).value(),
                a.ref().GetDouble(i).value());
    }
  }
}

TEST_P(PropertySweep, StringRoundTripExact) {
  Rng rng(4000 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    DType dtype = kRealDTypes[rng.UniformInt(0, 5)];
    Dims dims = RandomShape(&rng, 3, 5);
    OwnedArray a = RandomArray(&rng, dtype, dims);
    OwnedArray back = FromArrayString(ToArrayString(a.ref())).value();
    ASSERT_EQ(back.dtype(), a.dtype());
    ASSERT_EQ(back.dims(), a.dims());
    for (int64_t i = 0; i < a.num_elements(); ++i) {
      ASSERT_EQ(back.ref().GetDouble(i).value(),
                a.ref().GetDouble(i).value());
    }
  }
}

TEST_P(PropertySweep, AxisAggregatesMatchManualReduction) {
  Rng rng(5000 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Dims dims = RandomShape(&rng, 3, 5);
    OwnedArray a = RandomArray(&rng, DType::kFloat64, dims);
    int axis = static_cast<int>(rng.UniformInt(0, a.rank() - 1));
    OwnedArray sums = AggregateAxis(a.ref(), axis, AggKind::kSum).value();

    // Total of axis sums equals the whole-array sum.
    double total = AggregateAll(sums.ref(), AggKind::kSum).value();
    double expect = AggregateAll(a.ref(), AggKind::kSum).value();
    ASSERT_NEAR(total, expect, 1e-9 * (1 + std::fabs(expect)));
  }
}

// ---------------------------------------------------------------------------
// SQL expression fuzz: random integer arithmetic trees evaluated through the
// full lexer/parser/session stack must equal direct evaluation.
// ---------------------------------------------------------------------------

struct IntExpr {
  std::string sql;
  int64_t value;
};

IntExpr RandomIntExpr(Rng* rng, int depth) {
  if (depth == 0 || rng->Bernoulli(0.3)) {
    int64_t v = rng->UniformInt(-20, 20);
    if (v < 0) {
      // Parenthesize negatives so unary minus composes cleanly.
      return {"(" + std::to_string(v) + ")", v};
    }
    return {std::to_string(v), v};
  }
  IntExpr lhs = RandomIntExpr(rng, depth - 1);
  IntExpr rhs = RandomIntExpr(rng, depth - 1);
  switch (rng->UniformInt(0, 2)) {
    case 0:
      return {"(" + lhs.sql + " + " + rhs.sql + ")", lhs.value + rhs.value};
    case 1:
      return {"(" + lhs.sql + " - " + rhs.sql + ")", lhs.value - rhs.value};
    default:
      return {"(" + lhs.sql + " * " + rhs.sql + ")", lhs.value * rhs.value};
  }
}

TEST_P(PropertySweep, SqlExpressionFuzzMatchesDirectEvaluation) {
  storage::Database db;
  engine::FunctionRegistry registry;
  ASSERT_TRUE(udfs::RegisterAllUdfs(&registry).ok());
  engine::Executor executor(&db, &registry);
  sql::Session session(&executor);

  Rng rng(6000 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    IntExpr e = RandomIntExpr(&rng, 4);
    auto results = session.Execute("SELECT " + e.sql);
    ASSERT_TRUE(results.ok()) << e.sql;
    ASSERT_EQ((*results)[0].ScalarResult().value().AsInt().value(), e.value)
        << e.sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range(0, 5));

}  // namespace
}  // namespace sqlarray
