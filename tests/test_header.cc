// Tests for the serialized array header codec (Sec. 3.5 format).
#include <gtest/gtest.h>

#include "core/header.h"

namespace sqlarray {
namespace {

TEST(Header, ShortHeaderIs24Bytes) {
  ArrayHeader h{DType::kFloat64, StorageClass::kShort, {5}};
  auto bytes = EncodeHeader(h).value();
  EXPECT_EQ(bytes.size(), 24u);
  EXPECT_EQ(bytes[0], kArrayMagic);
  EXPECT_EQ(bytes[1], 0);  // short flag
}

TEST(Header, MaxHeaderSizeDependsOnRank) {
  ArrayHeader h{DType::kFloat64, StorageClass::kMax, {5, 6, 7}};
  auto bytes = EncodeHeader(h).value();
  EXPECT_EQ(bytes.size(), 16u + 4 * 3);
  EXPECT_EQ(bytes[1], 1);  // max flag
}

TEST(Header, BlobSizeAccounting) {
  ArrayHeader h{DType::kInt16, StorageClass::kShort, {10, 10}};
  EXPECT_EQ(h.header_size(), 24);
  EXPECT_EQ(h.data_size(), 200);
  EXPECT_EQ(h.blob_size(), 224);
}

struct RoundTripCase {
  DType dtype;
  StorageClass storage;
  Dims dims;
};

class HeaderRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(HeaderRoundTrip, EncodeDecode) {
  const RoundTripCase& c = GetParam();
  ArrayHeader h{c.dtype, c.storage, c.dims};
  auto bytes = EncodeHeader(h).value();
  // Pad with payload-sized zeros so payload validation passes.
  bytes.resize(static_cast<size_t>(h.blob_size()), 0);
  ArrayHeader back = DecodeHeader(bytes).value();
  EXPECT_EQ(back, h);
  EXPECT_EQ(PeekHeaderSize(bytes).value(), h.header_size());
}

std::vector<RoundTripCase> RoundTripCases() {
  std::vector<RoundTripCase> cases;
  for (int d = 0; d < kNumDTypes; ++d) {
    DType t = static_cast<DType>(d);
    cases.push_back({t, StorageClass::kShort, {7}});
    cases.push_back({t, StorageClass::kShort, {2, 3}});
    cases.push_back({t, StorageClass::kShort, {2, 2, 2, 2, 2, 2}});
    cases.push_back({t, StorageClass::kMax, {100}});
    cases.push_back({t, StorageClass::kMax, {10, 20, 30}});
    cases.push_back({t, StorageClass::kMax, {2, 2, 2, 2, 2, 2, 2, 2}});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllDTypesAndShapes, HeaderRoundTrip,
                         ::testing::ValuesIn(RoundTripCases()));

TEST(Header, ShortRejectsRankAbove6) {
  EXPECT_FALSE(ValidateHeader(DType::kInt8, Dims{1, 1, 1, 1, 1, 1, 1},
                              StorageClass::kShort)
                   .ok());
  EXPECT_TRUE(ValidateHeader(DType::kInt8, Dims{1, 1, 1, 1, 1, 1, 1},
                             StorageClass::kMax)
                  .ok());
}

TEST(Header, ShortRejectsBlobOver8000Bytes) {
  // 1000 doubles = 8000 bytes payload + 24 header > 8000.
  EXPECT_FALSE(
      ValidateHeader(DType::kFloat64, Dims{1000}, StorageClass::kShort).ok());
  // 996 doubles + 24 = 7992 <= 8000.
  EXPECT_TRUE(
      ValidateHeader(DType::kFloat64, Dims{996}, StorageClass::kShort).ok());
}

TEST(Header, ShortRejectsDimOverInt16) {
  EXPECT_FALSE(
      ValidateHeader(DType::kInt8, Dims{40000}, StorageClass::kShort).ok());
}

TEST(Header, ChooseStorageClassPicksShortWhenItFits) {
  EXPECT_EQ(ChooseStorageClass(DType::kFloat64, Dims{5}),
            StorageClass::kShort);
  EXPECT_EQ(ChooseStorageClass(DType::kFloat64, Dims{5000}),
            StorageClass::kMax);
  EXPECT_EQ(ChooseStorageClass(DType::kInt8, Dims{1, 1, 1, 1, 1, 1, 1}),
            StorageClass::kMax);
}

TEST(Header, DecodeRejectsBadMagic) {
  ArrayHeader h{DType::kInt32, StorageClass::kShort, {2}};
  auto bytes = EncodeHeader(h).value();
  bytes.resize(static_cast<size_t>(h.blob_size()), 0);
  bytes[0] = 0x00;
  EXPECT_EQ(DecodeHeader(bytes).status().code(), StatusCode::kCorruption);
}

TEST(Header, DecodeRejectsBadDType) {
  ArrayHeader h{DType::kInt32, StorageClass::kShort, {2}};
  auto bytes = EncodeHeader(h).value();
  bytes.resize(static_cast<size_t>(h.blob_size()), 0);
  bytes[2] = 0xEE;
  EXPECT_EQ(DecodeHeader(bytes).status().code(), StatusCode::kCorruption);
}

TEST(Header, DecodeRejectsTruncatedPayload) {
  ArrayHeader h{DType::kFloat64, StorageClass::kShort, {10}};
  auto bytes = EncodeHeader(h).value();
  bytes.resize(static_cast<size_t>(h.blob_size()) - 1, 0);
  EXPECT_EQ(DecodeHeader(bytes).status().code(), StatusCode::kCorruption);
}

TEST(Header, DecodeAcceptsPaddedBlob) {
  // Fixed-width binary columns pad the stored image; extra bytes are fine.
  ArrayHeader h{DType::kFloat64, StorageClass::kShort, {3}};
  auto bytes = EncodeHeader(h).value();
  bytes.resize(static_cast<size_t>(h.blob_size()) + 100, 0);
  EXPECT_TRUE(DecodeHeader(bytes).ok());
}

TEST(Header, DecodeRejectsCountMismatch) {
  ArrayHeader h{DType::kInt8, StorageClass::kShort, {4}};
  auto bytes = EncodeHeader(h).value();
  bytes.resize(static_cast<size_t>(h.blob_size()), 0);
  bytes[4] = 5;  // element count != product of dims
  EXPECT_EQ(DecodeHeader(bytes).status().code(), StatusCode::kCorruption);
}

TEST(Header, DecodeRejectsUnknownFlags) {
  ArrayHeader h{DType::kInt8, StorageClass::kShort, {4}};
  auto bytes = EncodeHeader(h).value();
  bytes.resize(static_cast<size_t>(h.blob_size()), 0);
  bytes[1] = 0x80;
  EXPECT_EQ(DecodeHeader(bytes).status().code(), StatusCode::kCorruption);
}

TEST(Header, ZeroSizedDimensionIsLegal) {
  ArrayHeader h{DType::kFloat32, StorageClass::kShort, {0, 5}};
  auto bytes = EncodeHeader(h).value();
  ArrayHeader back = DecodeHeader(bytes).value();
  EXPECT_EQ(back.num_elements(), 0);
  EXPECT_EQ(back.dims, (Dims{0, 5}));
}

TEST(Header, PeekNeedsAtLeast8Bytes) {
  std::vector<uint8_t> tiny{kArrayMagic, 0, 0};
  EXPECT_FALSE(PeekHeaderSize(tiny).ok());
}

}  // namespace
}  // namespace sqlarray
