// Fault-injection, checksum, retry, and structural-verification tests.
//
// Everything here is deterministic: fault injectors run from fixed seeds,
// fuzz loops use fixed-seed RNGs, and crafted corruptions target pages found
// through the trees' own metadata. The invariant under test is uniform —
// corrupt storage must surface as a non-OK Status (usually kCorruption
// naming the page), never as a crash, a hang, or a silently wrong answer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "core/array.h"
#include "storage/blob.h"
#include "storage/btree.h"
#include "storage/table.h"
#include "storage/verify.h"

namespace sqlarray::storage {
namespace {

// ---------------------------------------------------------------------------
// Array blob fuzzing: truncations and header bit flips must always error.
// ---------------------------------------------------------------------------

TEST(ArrayFuzz, TruncatedShortBlobNeverParses) {
  std::vector<double> vals(24);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = 0.5 * i;
  OwnedArray a =
      OwnedArray::FromValues<double>(Dims{4, 6}, vals).value();
  std::span<const uint8_t> blob = a.blob();
  for (size_t n = 0; n < blob.size(); ++n) {
    auto r = ArrayRef::Parse(blob.first(n));
    EXPECT_FALSE(r.ok()) << "short blob truncated to " << n
                         << " bytes parsed";
  }
  EXPECT_TRUE(ArrayRef::Parse(blob).ok());
}

TEST(ArrayFuzz, TruncatedMaxBlobNeverParses) {
  OwnedArray a =
      OwnedArray::Zeros(DType::kFloat64, Dims{40, 60}, StorageClass::kMax)
          .value();
  std::span<const uint8_t> blob = a.blob();
  for (size_t n = 0; n < blob.size(); n += 97) {
    auto r = ArrayRef::Parse(blob.first(n));
    EXPECT_FALSE(r.ok()) << "max blob truncated to " << n << " bytes parsed";
  }
  EXPECT_TRUE(ArrayRef::Parse(blob).ok());
}

TEST(ArrayFuzz, ShortHeaderBitFlipsAlwaysError) {
  std::vector<double> vals(24);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = 1e9 + 3.7 * i;
  OwnedArray a =
      OwnedArray::FromValues<double>(Dims{4, 6}, vals).value();

  // Every single-bit flip in the load-bearing header bytes must be caught:
  // magic [0], flags [1], rank [3], element count [4..7], dim sizes [8..11]
  // (rank 2 uses two int16 slots). Byte [2] (dtype) is excluded — flipping
  // it to a narrower type yields a shorter valid blob by design (fixed
  // binary columns pad), and bytes [12..23] are unused slots / reserved.
  const int bytes[] = {0, 1, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  for (int byte : bytes) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> blob(a.blob().begin(), a.blob().end());
      blob[byte] ^= static_cast<uint8_t>(1u << bit);
      auto r = ArrayRef::Parse(blob);
      EXPECT_FALSE(r.ok())
          << "flip of byte " << byte << " bit " << bit << " parsed";
    }
  }
}

TEST(ArrayFuzz, MaxHeaderBitFlipsAlwaysError) {
  OwnedArray a =
      OwnedArray::Zeros(DType::kFloat64, Dims{2000}, StorageClass::kMax)
          .value();

  // Load-bearing max-header bytes: magic [0], flags [1], rank [4..7],
  // element count [8..15], dim size [16..19]. Byte [2] (dtype, see above)
  // and byte [3] (reserved, ignored by decode) are excluded.
  std::vector<int> bytes = {0, 1};
  for (int b = 4; b < 20; ++b) bytes.push_back(b);
  for (int byte : bytes) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> blob(a.blob().begin(), a.blob().end());
      blob[byte] ^= static_cast<uint8_t>(1u << bit);
      auto r = ArrayRef::Parse(blob);
      EXPECT_FALSE(r.ok())
          << "flip of byte " << byte << " bit " << bit << " parsed";
    }
  }
}

TEST(ArrayFuzz, RandomBlobsNeverCrashTheDecoder) {
  std::mt19937_64 rng(0xFA11);
  std::uniform_int_distribution<int> len_dist(0, 96);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int iter = 0; iter < 5000; ++iter) {
    std::vector<uint8_t> blob(len_dist(rng));
    for (uint8_t& b : blob) b = static_cast<uint8_t>(byte_dist(rng));
    // Half the blobs get a valid magic so decoding proceeds past byte 0.
    if (!blob.empty() && iter % 2 == 0) blob[0] = kArrayMagic;
    auto r = ArrayRef::Parse(blob);
    if (r.ok()) {
      // If a random blob happens to parse, its claimed extent must lie
      // inside the buffer — the view can never read out of bounds.
      EXPECT_LE(static_cast<size_t>(r->header().blob_size()), blob.size());
    }
  }
}

TEST(HeaderFuzz, OverflowingShapesAreRejectedNotUB) {
  // Short header claiming 32767^6 elements: the product overflows int64
  // twice over; DecodeHeader must reject it without computing it.
  std::vector<uint8_t> shorty(kShortHeaderSize, 0);
  shorty[0] = kArrayMagic;
  shorty[1] = 0;                               // short class
  shorty[2] = static_cast<uint8_t>(DType::kFloat64);
  shorty[3] = 6;                               // rank
  EncodeLE<uint32_t>(shorty.data() + 4, 0xFFFFFFFFu);
  for (int k = 0; k < 6; ++k) {
    EncodeLE<int16_t>(shorty.data() + 8 + 2 * k, 32767);
  }
  auto r1 = DecodeHeader(shorty);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kCorruption);

  // Max header with four int32-max dims: element count overflows int64.
  std::vector<uint8_t> maxy(kMaxHeaderPrefixSize + 4 * 4, 0);
  maxy[0] = kArrayMagic;
  maxy[1] = 1;  // max class
  maxy[2] = static_cast<uint8_t>(DType::kFloat64);
  EncodeLE<uint32_t>(maxy.data() + 4, 4);
  EncodeLE<int64_t>(maxy.data() + 8, 1);  // bogus count; overflow fires first
  for (int k = 0; k < 4; ++k) {
    EncodeLE<int32_t>(maxy.data() + kMaxHeaderPrefixSize + 4 * k, 2147483647);
  }
  auto r2 = DecodeHeader(maxy);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kCorruption);

  // Two int32-max dims: the element count fits int64 but the byte size
  // (count * 8) does not — the payload-size guard must fire.
  std::vector<uint8_t> wide(kMaxHeaderPrefixSize + 4 * 2, 0);
  wide[0] = kArrayMagic;
  wide[1] = 1;
  wide[2] = static_cast<uint8_t>(DType::kFloat64);
  EncodeLE<uint32_t>(wide.data() + 4, 2);
  EncodeLE<int64_t>(wide.data() + 8, int64_t{2147483647} * 2147483647);
  EncodeLE<int32_t>(wide.data() + kMaxHeaderPrefixSize, 2147483647);
  EncodeLE<int32_t>(wide.data() + kMaxHeaderPrefixSize + 4, 2147483647);
  auto r3 = DecodeHeader(wide);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Bounded retry with backoff in the buffer pool.
// ---------------------------------------------------------------------------

TEST(FaultRetry, TargetedTransientFaultsHealWithinBudget) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 16);
  PageId p = pool.AllocatePage();
  Page page;
  page.data()[7] = 9;
  ASSERT_TRUE(pool.WritePage(p, page).ok());
  pool.ClearCache();

  FaultInjector* injector = disk.EnableFaults(FaultConfig{});
  injector->ArmTransientReadErrors(p, 2);  // 2 failures < 3 attempts
  const double before = disk.stats().virtual_read_seconds;
  auto r = pool.GetPage(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value()->data()[7], 9);
  EXPECT_EQ(disk.stats().read_errors, 2);
  EXPECT_EQ(disk.stats().read_retries, 2);
  EXPECT_EQ(disk.stats().transient_faults_healed, 1);
  EXPECT_EQ(injector->stats().transient_read_errors, 2);
  // Modeled backoff was charged: 100 us + 200 us for attempts 2 and 3.
  EXPECT_GT(disk.stats().virtual_read_seconds, before + 299e-6);
}

TEST(FaultRetry, PersistentFaultEscalatesToCorruptionNamingThePage) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 16);
  PageId p = pool.AllocatePage();
  Page page;
  ASSERT_TRUE(pool.WritePage(p, page).ok());
  pool.ClearCache();

  disk.EnableFaults(FaultConfig{})->ArmTransientReadErrors(p, 100);
  auto r = pool.GetPage(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("page " + std::to_string(p)),
            std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("after 3 attempt"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(disk.stats().read_retries, 2);  // attempts 2 and 3

  // A wider budget heals the remaining armed faults.
  pool.set_max_read_attempts(200);
  EXPECT_TRUE(pool.GetPage(p).ok());
  EXPECT_EQ(disk.stats().transient_faults_healed, 1);
}

TEST(FaultRetry, UnallocatedPageIsNotRetried) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 16);
  auto r = pool.GetPage(42);  // never allocated
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.stats().read_retries, 0);
}

// ---------------------------------------------------------------------------
// Write-path fault classes: torn and dropped writes.
// ---------------------------------------------------------------------------

TEST(FaultWrites, TornWriteIsDetectedOnNextRead) {
  SimulatedDisk disk;
  FaultConfig config;
  config.seed = 7;
  config.torn_write_rate = 1.0;
  FaultInjector* injector = disk.EnableFaults(config);

  PageId p = disk.AllocatePage();
  Page page;
  std::memset(page.data(), 0x5A, kPageSize);
  ASSERT_TRUE(disk.WritePage(p, page).ok());  // acked, but only a prefix hit
  EXPECT_EQ(injector->stats().torn_writes, 1);

  Page out;
  Status st = disk.ReadPage(p, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find(std::to_string(p)), std::string::npos);

  // Healing: a clean rewrite makes the page readable again.
  disk.DisableFaults();
  ASSERT_TRUE(disk.WritePage(p, page).ok());
  EXPECT_TRUE(disk.ReadPage(p, &out).ok());
  EXPECT_EQ(out.data()[4000], 0x5A);
}

TEST(FaultWrites, DroppedWriteIsDetectedAsLostWrite) {
  SimulatedDisk disk;
  FaultConfig config;
  config.seed = 11;
  config.dropped_write_rate = 1.0;
  FaultInjector* injector = disk.EnableFaults(config);

  PageId p = disk.AllocatePage();
  Page page;
  std::memset(page.data(), 0xC3, kPageSize);
  ASSERT_TRUE(disk.WritePage(p, page).ok());  // acked, never stored
  EXPECT_EQ(injector->stats().dropped_writes, 1);

  // The media still holds the old (zero) image while the controller recorded
  // the new checksum: the stale read fails verification instead of silently
  // serving old data.
  Page out;
  Status st = disk.ReadPage(p, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(FaultWrites, ChecksumVerificationCanBeDisabled) {
  DiskConfig config;
  config.verify_checksums = false;  // PAGE_VERIFY NONE
  SimulatedDisk disk(config);
  EXPECT_FALSE(disk.checksums_enabled());

  PageId p = disk.AllocatePage();
  Page page;
  page.data()[100] = 1;
  ASSERT_TRUE(disk.WritePage(p, page).ok());
  ASSERT_TRUE(disk.CorruptPageByte(p, 100).ok());
  Page out;
  // Corruption flows through undetected — the configured trade-off.
  EXPECT_TRUE(disk.ReadPage(p, &out).ok());
  EXPECT_EQ(out.data()[100], 1 ^ 0xFF);
}

// ---------------------------------------------------------------------------
// Structural verifier: every crafted break is pinpointed.
// ---------------------------------------------------------------------------

/// Builds a 5000-row tree (row_size 16 → multiple leaves, height 2).
BTree BuildTree(BufferPool* pool) {
  BTree tree = BTree::Create(pool, 16).value();
  BTree::BulkLoader loader = tree.StartBulkLoad().value();
  std::vector<uint8_t> row(16);
  for (int64_t k = 0; k < 5000; ++k) {
    EncodeLE<int64_t>(row.data(), k);
    EncodeLE<int64_t>(row.data() + 8, k * 3);
    EXPECT_TRUE(loader.Add(row).ok());
  }
  EXPECT_TRUE(loader.Finish().ok());
  return tree;
}

/// Reads one page image through the pool.
Page Snapshot(BufferPool* pool, PageId id) {
  return *pool->GetPage(id).value();
}

TEST(Verify, CleanTreeAndBlobPass) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 12);
  BTree tree = BuildTree(&pool);
  VerifyReport report = VerifyBTree(&pool, tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.pages_visited, tree.total_page_count());

  BlobStore store(&pool);
  std::vector<uint8_t> bytes(100000, 0x42);
  BlobId id = store.Write(bytes).value();
  VerifyReport blob_report = VerifyBlob(&pool, id);
  EXPECT_TRUE(blob_report.ok()) << blob_report.ToString();
}

TEST(Verify, DetectsKeyDisorderInOneLeaf) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 12);
  BTree tree = BuildTree(&pool);
  std::vector<PageId> leaves = tree.CollectLeafPages().value();
  ASSERT_GT(leaves.size(), 4u);

  PageId victim = leaves[2];
  Page original = Snapshot(&pool, victim);
  Page bad = original;
  // Swap the keys of the first two rows (rows are 16 bytes at offset 16).
  int64_t k0 = DecodeLE<int64_t>(bad.data() + 16);
  int64_t k1 = DecodeLE<int64_t>(bad.data() + 32);
  EncodeLE<int64_t>(bad.data() + 16, k1);
  EncodeLE<int64_t>(bad.data() + 32, k0);
  ASSERT_TRUE(pool.WritePage(victim, bad).ok());  // valid checksum, bad keys

  VerifyReport report = VerifyBTree(&pool, tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Mentions(victim)) << report.ToString();

  // Restoring the page restores a clean report.
  ASSERT_TRUE(pool.WritePage(victim, original).ok());
  EXPECT_TRUE(VerifyBTree(&pool, tree).ok());
}

TEST(Verify, DetectsBrokenSiblingChain) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 12);
  BTree tree = BuildTree(&pool);
  std::vector<PageId> leaves = tree.CollectLeafPages().value();
  ASSERT_GT(leaves.size(), 4u);

  // Make leaf 1 skip leaf 2 (next pointer lives at bytes [8..11]).
  Page bad = Snapshot(&pool, leaves[1]);
  EncodeLE<uint32_t>(bad.data() + 8, leaves[3]);
  ASSERT_TRUE(pool.WritePage(leaves[1], bad).ok());

  VerifyReport report = VerifyBTree(&pool, tree);
  EXPECT_FALSE(report.ok());
  // The chain no longer matches the tree's leaf order; the discrepancy is
  // anchored at the chain head.
  EXPECT_TRUE(report.Mentions(tree.first_leaf_page())) << report.ToString();
}

TEST(Verify, DetectsWrongPageTypeTag) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 12);
  BTree tree = BuildTree(&pool);
  std::vector<PageId> leaves = tree.CollectLeafPages().value();
  ASSERT_GT(leaves.size(), 4u);

  PageId victim = leaves[4];
  Page bad = Snapshot(&pool, victim);
  bad.data()[0] = static_cast<uint8_t>(PageType::kBlobData);
  ASSERT_TRUE(pool.WritePage(victim, bad).ok());

  VerifyReport report = VerifyBTree(&pool, tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Mentions(victim)) << report.ToString();
}

TEST(Verify, DetectsImplausibleInternalFanout) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 12);
  BTree tree = BuildTree(&pool);
  ASSERT_GT(tree.height(), 1);

  PageId root = tree.root_page();
  Page bad = Snapshot(&pool, root);
  EncodeLE<uint32_t>(bad.data() + 4, 0xFFFF);  // count >> capacity
  ASSERT_TRUE(pool.WritePage(root, bad).ok());

  VerifyReport report = VerifyBTree(&pool, tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Mentions(root)) << report.ToString();
}

TEST(Verify, DetectsChecksumFailureAsUnreadablePage) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 12);
  BTree tree = BuildTree(&pool);
  std::vector<PageId> leaves = tree.CollectLeafPages().value();

  pool.ClearCache();
  ASSERT_TRUE(disk.CorruptPageByte(leaves[3], 1000).ok());
  VerifyReport report = VerifyBTree(&pool, tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Mentions(leaves[3])) << report.ToString();
}

TEST(Verify, DetectsBlobStructureBreaks) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 1 << 12);
  BlobStore store(&pool);
  std::vector<uint8_t> bytes(100000, 0x42);
  BlobId id = store.Write(bytes).value();
  ASSERT_TRUE(VerifyBlob(&pool, id).ok());

  // Phantom child: bump the root index's entry count by one.
  Page root = Snapshot(&pool, id.root);
  Page bad_root = root;
  uint32_t n = DecodeLE<uint32_t>(bad_root.data() + 4);
  EncodeLE<uint32_t>(bad_root.data() + 4, n + 1);
  ASSERT_TRUE(pool.WritePage(id.root, bad_root).ok());
  VerifyReport phantom = VerifyBlob(&pool, id);
  EXPECT_FALSE(phantom.ok());
  EXPECT_TRUE(phantom.Mentions(id.root)) << phantom.ToString();
  ASSERT_TRUE(pool.WritePage(id.root, root).ok());

  // Invalid index level byte.
  Page bad_level = root;
  bad_level.data()[1] = 3;
  ASSERT_TRUE(pool.WritePage(id.root, bad_level).ok());
  VerifyReport level = VerifyBlob(&pool, id);
  EXPECT_FALSE(level.ok());
  EXPECT_TRUE(level.Mentions(id.root)) << level.ToString();
  ASSERT_TRUE(pool.WritePage(id.root, root).ok());

  // Under-full interior data page.
  PageId first_data = DecodeLE<uint32_t>(root.data() + 8);
  Page data = Snapshot(&pool, first_data);
  Page bad_data = data;
  EncodeLE<uint32_t>(bad_data.data() + 4,
                     static_cast<uint32_t>(kBlobDataCapacity - 1));
  ASSERT_TRUE(pool.WritePage(first_data, bad_data).ok());
  VerifyReport shortfall = VerifyBlob(&pool, id);
  EXPECT_FALSE(shortfall.ok());
  EXPECT_TRUE(shortfall.Mentions(first_data)) << shortfall.ToString();
  ASSERT_TRUE(pool.WritePage(first_data, data).ok());
  EXPECT_TRUE(VerifyBlob(&pool, id).ok());
}

TEST(Verify, DatabaseWalkCoversTablesAndBlobs) {
  Database db;
  Schema schema = Schema::Create({{"id", ColumnType::kInt64, 0},
                                  {"payload", ColumnType::kVarBinaryMax, 0}})
                      .value();
  Table* table = db.CreateTable("v", std::move(schema)).value();
  std::vector<uint8_t> blob(50000, 0x77);
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(table->Insert({k, blob}).ok());
  }
  EXPECT_TRUE(VerifyDatabase(&db).ok());

  // Rot one byte of some blob data page: the database walk must localize it.
  Row row = table->Lookup(7).value().value();
  BlobId id = std::get<BlobId>(row[1]);
  PageId data_page;
  {
    auto root = db.buffer_pool()->GetPage(id.root).value();
    data_page = DecodeLE<uint32_t>(root->data() + 8);
  }
  db.ClearCache();
  ASSERT_TRUE(db.disk()->CorruptPageByte(data_page, 4321).ok());
  VerifyReport report = VerifyDatabase(&db);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Mentions(data_page)) << report.ToString();
}

// ---------------------------------------------------------------------------
// The acceptance workload: scans and blob reads under a 1 % fault rate.
// ---------------------------------------------------------------------------

TEST(FaultWorkload, ScanAndBlobReadsSurviveOnePercentFaultRate) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 64);  // small pool: most fetches hit the disk
  BTree tree = BTree::Create(&pool, 64).value();
  {
    BTree::BulkLoader loader = tree.StartBulkLoad().value();
    std::vector<uint8_t> row(64);
    for (int64_t k = 0; k < 20000; ++k) {
      EncodeLE<int64_t>(row.data(), k);
      ASSERT_TRUE(loader.Add(row).ok());
    }
    ASSERT_TRUE(loader.Finish().ok());
  }
  BlobStore store(&pool);
  std::vector<BlobId> blobs;
  std::vector<uint8_t> payload(60000);
  for (int b = 0; b < 8; ++b) {
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(i + b);
    }
    blobs.push_back(store.Write(payload).value());
  }

  FaultConfig config;
  config.seed = 20260806;
  config.transient_read_error_rate = 0.01;
  config.bit_flip_rate = 0.01;
  FaultInjector* injector = disk.EnableFaults(config);

  int64_t rows_delivered = 0;
  int corruption_reports = 0;
  for (int round = 0; round < 8; ++round) {
    pool.ClearCache();

    auto cursor_or = tree.ScanAll();
    Status st = cursor_or.status();
    if (cursor_or.ok()) {
      BTree::Cursor cursor = std::move(cursor_or).value();
      while (cursor.valid()) {
        ++rows_delivered;
        st = cursor.Next();
        if (!st.ok()) break;
      }
    }
    if (!st.ok()) {
      // Permanent corruption must be reported as kCorruption and must name
      // the offending page.
      EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
      EXPECT_NE(st.message().find("page "), std::string::npos)
          << st.ToString();
      ++corruption_reports;
    }

    for (const BlobId& id : blobs) {
      auto bytes_or = store.ReadAll(id);
      if (!bytes_or.ok()) {
        EXPECT_EQ(bytes_or.status().code(), StatusCode::kCorruption)
            << bytes_or.status().ToString();
        EXPECT_NE(bytes_or.status().message().find("page "),
                  std::string::npos)
            << bytes_or.status().ToString();
        ++corruption_reports;
      } else {
        EXPECT_EQ(bytes_or->size(), payload.size());
      }
    }
  }

  // The workload ran to completion (no crash), delivered rows, and the fault
  // machinery demonstrably exercised both paths: transient faults were
  // healed by retry, and at least one permanent fault was injected.
  EXPECT_GT(rows_delivered, 0);
  const IoStats& stats = disk.stats();
  EXPECT_GT(stats.read_retries, 0);
  EXPECT_GT(stats.transient_faults_healed, 0);
  EXPECT_GT(injector->stats().transient_read_errors, 0);
  EXPECT_GT(injector->stats().bit_flips, 0);
  EXPECT_GT(corruption_reports, 0);
}

}  // namespace
}  // namespace sqlarray::storage
