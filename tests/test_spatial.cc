// Tests for spatial structures: z-order codec, kd-tree, octree, geometry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "spatial/geometry.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "spatial/zorder.h"

namespace sqlarray::spatial {
namespace {

TEST(Zorder, EncodeDecodeRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 1000; ++trial) {
    uint32_t x = static_cast<uint32_t>(rng.UniformInt(0, kMaxZCoord));
    uint32_t y = static_cast<uint32_t>(rng.UniformInt(0, kMaxZCoord));
    uint32_t z = static_cast<uint32_t>(rng.UniformInt(0, kMaxZCoord));
    auto back = MortonDecode3(MortonEncode3(x, y, z));
    EXPECT_EQ(back[0], x);
    EXPECT_EQ(back[1], y);
    EXPECT_EQ(back[2], z);
  }
}

TEST(Zorder, KnownInterleaving) {
  EXPECT_EQ(MortonEncode3(1, 0, 0), 1u);
  EXPECT_EQ(MortonEncode3(0, 1, 0), 2u);
  EXPECT_EQ(MortonEncode3(0, 0, 1), 4u);
  EXPECT_EQ(MortonEncode3(1, 1, 1), 7u);
  EXPECT_EQ(MortonEncode3(2, 0, 0), 8u);
}

TEST(Zorder, LocalityOfAdjacentCells) {
  // Cells adjacent in x within an aligned pair differ in the lowest bits.
  uint64_t a = MortonEncode3(4, 5, 6);
  uint64_t b = MortonEncode3(5, 5, 6);
  EXPECT_EQ(b - a, 1u);
}

TEST(Zorder, CellOfWrapsPeriodically) {
  uint64_t inside = MortonCellOf(1.0, 2.0, 3.0, 10.0, 10);
  uint64_t wrapped = MortonCellOf(11.0, 12.0, 13.0, 10.0, 10);
  EXPECT_EQ(inside, wrapped);
  uint64_t negative = MortonCellOf(-9.0, 2.0, 3.0, 10.0, 10);
  EXPECT_EQ(inside, negative);
}

std::vector<double> RandomPoints(int64_t n, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pts(n * dim);
  for (double& v : pts) v = rng.Uniform(-10, 10);
  return pts;
}

std::vector<Neighbor> BruteNearest(const std::vector<double>& pts, int dim,
                                   std::span<const double> q, int k) {
  int64_t n = static_cast<int64_t>(pts.size()) / dim;
  std::vector<Neighbor> all(n);
  for (int64_t i = 0; i < n; ++i) {
    double d = 0;
    for (int j = 0; j < dim; ++j) {
      double diff = pts[i * dim + j] - q[j];
      d += diff * diff;
    }
    all[i] = {i, d};
  }
  std::sort(all.begin(), all.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.dist_sq < b.dist_sq;
            });
  all.resize(std::min<int64_t>(k, n));
  return all;
}

class KdTreeDims : public ::testing::TestWithParam<int> {};

TEST_P(KdTreeDims, NearestMatchesBruteForce) {
  const int dim = GetParam();
  std::vector<double> pts = RandomPoints(500, dim, 42 + dim);
  KdTree tree = KdTree::Build(pts, dim).value();
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(dim);
    for (double& v : q) v = rng.Uniform(-12, 12);
    auto got = tree.Nearest(q, 5);
    auto expect = BruteNearest(pts, dim, q, 5);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].dist_sq, expect[i].dist_sq, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, KdTreeDims, ::testing::Values(1, 2, 3, 5, 10));

TEST(KdTree, RadiusMatchesBruteForce) {
  const int dim = 3;
  std::vector<double> pts = RandomPoints(400, dim, 9);
  KdTree tree = KdTree::Build(pts, dim).value();
  std::vector<double> q{0, 0, 0};
  const double radius = 4.0;
  auto got = tree.WithinRadius(q, radius);
  std::set<int64_t> got_ids;
  for (const Neighbor& n : got) {
    got_ids.insert(n.id);
    EXPECT_LE(n.dist_sq, radius * radius + 1e-12);
  }
  auto all = BruteNearest(pts, dim, q, 400);
  std::set<int64_t> expect_ids;
  for (const Neighbor& n : all) {
    if (n.dist_sq <= radius * radius) expect_ids.insert(n.id);
  }
  EXPECT_EQ(got_ids, expect_ids);
}

TEST(KdTree, EdgeCases) {
  EXPECT_FALSE(KdTree::Build({1.0, 2.0, 3.0}, 2).ok());  // length % dim != 0
  EXPECT_FALSE(KdTree::Build({}, 0).ok());
  KdTree empty = KdTree::Build({}, 3).value();
  EXPECT_TRUE(empty.Nearest(std::vector<double>{0, 0, 0}, 3).empty());
  KdTree one = KdTree::Build({1.0, 2.0}, 2).value();
  auto nn = one.Nearest(std::vector<double>{0, 0}, 5);
  ASSERT_EQ(nn.size(), 1u);  // k clamped to point count
  EXPECT_EQ(nn[0].id, 0);
}

TEST(KdTree, DuplicatePointsAllReturned) {
  std::vector<double> pts{1, 1, 1, 1, 1, 1};  // three copies of (1,1)... 2D
  KdTree tree = KdTree::Build(pts, 2).value();
  auto nn = tree.Nearest(std::vector<double>{1, 1}, 3);
  EXPECT_EQ(nn.size(), 3u);
  for (const Neighbor& n : nn) EXPECT_EQ(n.dist_sq, 0.0);
}

Aabb UnitBox(double edge) { return {{0, 0, 0}, {edge, edge, edge}}; }

TEST(Octree, QueryBoxMatchesBruteForce) {
  Rng rng(13);
  std::vector<Vec3> pts(800);
  for (Vec3& p : pts) {
    p = {rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)};
  }
  Octree tree = Octree::Build(pts, UnitBox(100), 32).value();
  Aabb query{{20, 30, 40}, {50, 60, 70}};
  auto got = tree.Query(query);
  std::set<int64_t> got_ids(got.begin(), got.end());
  std::set<int64_t> expect;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (query.Contains(pts[i])) expect.insert(static_cast<int64_t>(i));
  }
  EXPECT_EQ(got_ids, expect);
}

TEST(Octree, QuerySphereMatchesBruteForce) {
  Rng rng(14);
  std::vector<Vec3> pts(800);
  for (Vec3& p : pts) {
    p = {rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)};
  }
  Octree tree = Octree::Build(pts, UnitBox(100), 16).value();
  Sphere query{{50, 50, 50}, 22.0};
  auto got = tree.Query(query);
  std::set<int64_t> got_ids(got.begin(), got.end());
  std::set<int64_t> expect;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (query.Contains(pts[i])) expect.insert(static_cast<int64_t>(i));
  }
  EXPECT_EQ(got_ids, expect);
}

TEST(Octree, QueryConeMatchesBruteForce) {
  Rng rng(15);
  std::vector<Vec3> pts(1000);
  for (Vec3& p : pts) {
    p = {rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)};
  }
  Octree tree = Octree::Build(pts, UnitBox(100), 16).value();
  Cone cone;
  cone.apex = {-20, 50, 50};
  cone.axis = Vec3{1, 0, 0}.Normalized();
  cone.cos_half_angle = std::cos(25.0 * M_PI / 180.0);
  cone.r_min = 30;
  cone.r_max = 90;
  auto got = tree.Query(cone);
  std::set<int64_t> got_ids(got.begin(), got.end());
  std::set<int64_t> expect;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (cone.Contains(pts[i])) expect.insert(static_cast<int64_t>(i));
  }
  EXPECT_EQ(got_ids, expect);
}

TEST(Octree, BucketCapacityRespected) {
  Rng rng(16);
  std::vector<Vec3> pts(2000);
  for (Vec3& p : pts) {
    p = {rng.Uniform(0, 10), rng.Uniform(0, 10), rng.Uniform(0, 10)};
  }
  Octree tree = Octree::Build(pts, UnitBox(10), 100).value();
  int64_t total = 0;
  tree.ForEachBucket([&](const Aabb&, std::span<const int64_t> ids) {
    EXPECT_LE(ids.size(), 100u);
    total += static_cast<int64_t>(ids.size());
  });
  EXPECT_EQ(total, 2000);
  EXPECT_GT(tree.bucket_count(), 1);
}

TEST(Octree, DecimationConservesWeight) {
  Rng rng(17);
  std::vector<Vec3> pts(1500);
  for (Vec3& p : pts) {
    p = {rng.Uniform(0, 10), rng.Uniform(0, 10), rng.Uniform(0, 10)};
  }
  Octree tree = Octree::Build(pts, UnitBox(10), 64).value();
  for (int depth = 0; depth <= tree.max_depth(); ++depth) {
    auto dec = tree.Decimate(depth);
    double total = 0;
    for (const DecimatedPoint& d : dec) total += d.weight;
    EXPECT_EQ(total, 1500.0) << "depth " << depth;
  }
  // Deeper levels give more, lighter representatives.
  EXPECT_LT(tree.Decimate(0).size(), tree.Decimate(tree.max_depth()).size());
}

TEST(Octree, RejectsOutOfBoundsPoints) {
  std::vector<Vec3> pts{{5, 5, 15}};
  EXPECT_FALSE(Octree::Build(pts, UnitBox(10), 8).ok());
  EXPECT_FALSE(Octree::Build({}, UnitBox(10), 0).ok());
}

TEST(Geometry, ConeContainsBasics) {
  Cone cone;
  cone.apex = {0, 0, 0};
  cone.axis = {1, 0, 0};
  cone.cos_half_angle = std::cos(30.0 * M_PI / 180.0);
  cone.r_min = 1;
  cone.r_max = 10;
  EXPECT_TRUE(cone.Contains({5, 0, 0}));
  EXPECT_TRUE(cone.Contains({5, 2, 0}));      // ~21.8 deg off axis
  EXPECT_FALSE(cone.Contains({5, 4, 0}));     // ~38.7 deg off axis
  EXPECT_FALSE(cone.Contains({0.5, 0, 0}));   // inside r_min
  EXPECT_FALSE(cone.Contains({11, 0, 0}));    // beyond r_max
  EXPECT_FALSE(cone.Contains({-5, 0, 0}));    // behind the apex
}

TEST(Geometry, AabbAndSphere) {
  Aabb box{{0, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(box.Contains({1, 1, 1}));
  EXPECT_FALSE(box.Contains({2, 1, 1}));  // hi edge exclusive
  Sphere s{{1, 1, 1}, 0.5};
  EXPECT_TRUE(s.MayIntersect(box));
  Sphere far{{100, 0, 0}, 1.0};
  EXPECT_FALSE(far.MayIntersect(box));
}

}  // namespace
}  // namespace sqlarray::spatial
