// Tests for the LAPACK-substitute: dense kernels, QR, SVD, NNLS, PCA.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "math/dense.h"
#include "math/nnls.h"
#include "math/pca.h"
#include "math/qr.h"
#include "math/svd.h"

namespace sqlarray::math {
namespace {

Matrix RandomMatrix(int64_t m, int64_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix a(m, n);
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i < m; ++i) a.at(i, j) = rng.Normal();
  }
  return a;
}

TEST(Dense, GemvPlain) {
  Matrix a(2, 3);
  // A = [1 2 3; 4 5 6] (column-major fill).
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  std::vector<double> x{1, 1, 1}, y(2, 0);
  Gemv(false, 1.0, a.view(), x, 0.0, y);
  EXPECT_EQ(y[0], 6);
  EXPECT_EQ(y[1], 15);
  std::vector<double> yt(3, 0), x2{1, 1};
  Gemv(true, 1.0, a.view(), x2, 0.0, yt);
  EXPECT_EQ(yt[0], 5);
  EXPECT_EQ(yt[2], 9);
}

TEST(Dense, GemvAlphaBeta) {
  Matrix a = Matrix::Identity(2);
  std::vector<double> x{1, 2}, y{10, 10};
  Gemv(false, 2.0, a.view(), x, 0.5, y);
  EXPECT_EQ(y[0], 7);   // 2*1 + 0.5*10
  EXPECT_EQ(y[1], 9);
}

TEST(Dense, GemmMatchesManual) {
  Matrix a = RandomMatrix(4, 3, 1);
  Matrix b = RandomMatrix(3, 5, 2);
  Matrix c(4, 5);
  Gemm(false, false, 1.0, a.view(), b.view(), 0.0, c.view());
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      double sum = 0;
      for (int64_t k = 0; k < 3; ++k) sum += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), sum, 1e-12);
    }
  }
}

TEST(Dense, GemmTransposedOperands) {
  Matrix a = RandomMatrix(3, 4, 3);   // use A^T: 4x3
  Matrix b = RandomMatrix(5, 3, 4);   // use B^T: 3x5
  Matrix c(4, 5);
  Gemm(true, true, 1.0, a.view(), b.view(), 0.0, c.view());
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      double sum = 0;
      for (int64_t k = 0; k < 3; ++k) sum += a.at(k, i) * b.at(j, k);
      EXPECT_NEAR(c.at(i, j), sum, 1e-12);
    }
  }
}

TEST(Dense, Nrm2Robustness) {
  std::vector<double> big{3e200, 4e200};
  EXPECT_NEAR(Nrm2(big), 5e200, 1e188);
  std::vector<double> zero{0, 0};
  EXPECT_EQ(Nrm2(zero), 0.0);
}

TEST(Dense, TransposeAndDiff) {
  Matrix a = RandomMatrix(3, 2, 5);
  Matrix t = Transpose(a.view());
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.at(1, 2), a.at(2, 1));
  EXPECT_EQ(MaxAbsDiff(a.view(), a.view()), 0.0);
}

TEST(Qr, FactorizationReconstructs) {
  Matrix a = RandomMatrix(6, 4, 7);
  QrFactorization f = QrFactor(a.view()).value();
  // Solve A x = b for b in range(A): residual must vanish.
  std::vector<double> x_true{1, -2, 3, 0.5};
  std::vector<double> b(6, 0);
  Gemv(false, 1.0, a.view(), x_true, 0.0, b);
  std::vector<double> x = LeastSquares(a.view(), b).value();
  for (int k = 0; k < 4; ++k) EXPECT_NEAR(x[k], x_true[k], 1e-10);
}

TEST(Qr, LeastSquaresMinimizesResidual) {
  // Overdetermined fit: residual must be orthogonal to the column space.
  Matrix a = RandomMatrix(20, 3, 8);
  Rng rng(9);
  std::vector<double> b(20);
  for (double& v : b) v = rng.Normal();
  std::vector<double> x = LeastSquares(a.view(), b).value();
  std::vector<double> r = b;
  Gemv(false, -1.0, a.view(), x, 1.0, r);
  std::vector<double> atr(3, 0);
  Gemv(true, 1.0, a.view(), r, 0.0, atr);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Qr, RejectsWideAndSingular) {
  Matrix wide = RandomMatrix(2, 3, 10);
  std::vector<double> b{1, 2};
  EXPECT_FALSE(QrFactor(wide.view()).ok());
  Matrix sing(3, 2);  // two identical zero columns
  std::vector<double> b3{1, 2, 3};
  EXPECT_FALSE(LeastSquares(sing.view(), b3).ok());
}

TEST(Qr, WeightedDropsZeroWeightRows) {
  // Row 2 is an outlier; with weight zero it must not affect the fit.
  Matrix a(3, 1);
  a.at(0, 0) = 1; a.at(1, 0) = 1; a.at(2, 0) = 1;
  std::vector<double> b{2.0, 2.0, 100.0};
  std::vector<double> w{1.0, 1.0, 0.0};
  std::vector<double> x = WeightedLeastSquares(a.view(), b, w).value();
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  std::vector<double> neg{1.0, -1.0, 1.0};
  EXPECT_FALSE(WeightedLeastSquares(a.view(), b, neg).ok());
}

class SvdShapes
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(SvdShapes, ReconstructionAndOrthogonality) {
  auto [m, n] = GetParam();
  Matrix a = RandomMatrix(m, n, 100 + m * 10 + n);
  SvdResult svd = Gesvd(a.view()).value();
  const int64_t k = std::min(m, n);
  ASSERT_EQ(svd.u.rows(), m);
  ASSERT_EQ(svd.u.cols(), k);
  ASSERT_EQ(static_cast<int64_t>(svd.s.size()), k);
  ASSERT_EQ(svd.vt.rows(), k);
  ASSERT_EQ(svd.vt.cols(), n);

  // Singular values sorted descending and non-negative.
  for (int64_t i = 0; i + 1 < k; ++i) {
    EXPECT_GE(svd.s[i], svd.s[i + 1]);
  }
  EXPECT_GE(svd.s[k - 1], 0.0);

  // A == U S V^T.
  Matrix recon = SvdReconstruct(svd);
  EXPECT_LT(MaxAbsDiff(a.view(), recon.view()), 1e-9);

  // U^T U == I and V V^T == I on the computed columns.
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      double uij = 0, vij = 0;
      for (int64_t r = 0; r < m; ++r) uij += svd.u.at(r, i) * svd.u.at(r, j);
      for (int64_t c = 0; c < n; ++c) vij += svd.vt.at(i, c) * svd.vt.at(j, c);
      double expect = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(uij, expect, 1e-9) << "U col " << i << "," << j;
      EXPECT_NEAR(vij, expect, 1e-9) << "V col " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapes,
    ::testing::Values(std::make_pair(4, 4), std::make_pair(8, 3),
                      std::make_pair(3, 8), std::make_pair(20, 5),
                      std::make_pair(5, 20), std::make_pair(1, 6),
                      std::make_pair(6, 1)));

TEST(Svd, KnownDiagonal) {
  Matrix a(3, 3);
  a.at(0, 0) = 3;
  a.at(1, 1) = 1;
  a.at(2, 2) = 2;
  SvdResult svd = Gesvd(a.view()).value();
  EXPECT_NEAR(svd.s[0], 3, 1e-12);
  EXPECT_NEAR(svd.s[1], 2, 1e-12);
  EXPECT_NEAR(svd.s[2], 1, 1e-12);
}

TEST(Svd, RankDeficientHasZeroSingularValue) {
  Matrix a(4, 2);
  for (int64_t i = 0; i < 4; ++i) {
    a.at(i, 0) = i + 1.0;
    a.at(i, 1) = 2.0 * (i + 1.0);  // column 1 = 2 * column 0
  }
  SvdResult svd = Gesvd(a.view()).value();
  EXPECT_GT(svd.s[0], 1.0);
  EXPECT_NEAR(svd.s[1], 0.0, 1e-10);
}

TEST(Nnls, MatchesUnconstrainedWhenInteriorSolution) {
  Matrix a = RandomMatrix(10, 3, 42);
  std::vector<double> x_true{1.0, 2.0, 0.5};
  std::vector<double> b(10, 0);
  Gemv(false, 1.0, a.view(), x_true, 0.0, b);
  std::vector<double> x = Nnls(a.view(), b).value();
  for (int k = 0; k < 3; ++k) EXPECT_NEAR(x[k], x_true[k], 1e-8);
}

TEST(Nnls, ClampsNegativeComponents) {
  // Identity system with a negative target: solution clamps to zero.
  Matrix a = Matrix::Identity(3);
  std::vector<double> b{1.0, -2.0, 3.0};
  std::vector<double> x = Nnls(a.view(), b).value();
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 0.0, 1e-10);
  EXPECT_NEAR(x[2], 3.0, 1e-10);
}

TEST(Nnls, SolutionIsNonNegativeAndKktHolds) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a = RandomMatrix(12, 5, 1000 + trial);
    std::vector<double> b(12);
    for (double& v : b) v = rng.Normal();
    std::vector<double> x = Nnls(a.view(), b).value();
    std::vector<double> r = b;
    Gemv(false, -1.0, a.view(), x, 1.0, r);
    std::vector<double> grad(5, 0);  // A^T r = -gradient
    Gemv(true, 1.0, a.view(), r, 0.0, grad);
    for (int k = 0; k < 5; ++k) {
      EXPECT_GE(x[k], 0.0);
      if (x[k] > 1e-10) {
        EXPECT_NEAR(grad[k], 0.0, 1e-6);  // active: zero gradient
      } else {
        EXPECT_LE(grad[k], 1e-6);  // at bound: gradient pushes negative
      }
    }
  }
}

TEST(Pca, RecoversDominantDirection) {
  // Samples along (1, 1)/sqrt(2) with small orthogonal noise.
  Rng rng(11);
  const int64_t n = 200;
  Matrix samples(n, 2);
  for (int64_t i = 0; i < n; ++i) {
    double t = rng.Normal(0, 3.0);
    double o = rng.Normal(0, 0.1);
    samples.at(i, 0) = 5.0 + (t - o) / std::sqrt(2.0);
    samples.at(i, 1) = -2.0 + (t + o) / std::sqrt(2.0);
  }
  PcaModel model = PcaFit(samples.view(), 2).value();
  EXPECT_NEAR(model.mean[0], 5.0, 0.5);
  EXPECT_NEAR(model.mean[1], -2.0, 0.5);
  // First component is (1,1)/sqrt(2) up to sign.
  double c0 = std::fabs(model.components.at(0, 0));
  double c1 = std::fabs(model.components.at(1, 0));
  EXPECT_NEAR(c0, 1 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(c1, 1 / std::sqrt(2.0), 0.05);
  EXPECT_GT(model.explained_variance[0],
            50 * model.explained_variance[1]);
}

TEST(Pca, ProjectReconstructRoundTrip) {
  Matrix samples = RandomMatrix(50, 4, 21);
  PcaModel model = PcaFit(samples.view(), 4).value();
  std::vector<double> sample(4);
  for (int64_t j = 0; j < 4; ++j) sample[j] = samples.at(7, j);
  std::vector<double> coeffs = PcaProject(model, sample);
  std::vector<double> back = PcaReconstruct(model, coeffs);
  for (int64_t j = 0; j < 4; ++j) EXPECT_NEAR(back[j], sample[j], 1e-8);
}

TEST(Pca, MaskedProjectionIgnoresMaskedFeatures) {
  // Corrupt one feature; with weight 0 there the coefficients must match
  // the clean sample's projection (full-rank basis).
  Matrix samples = RandomMatrix(60, 3, 22);
  PcaModel model = PcaFit(samples.view(), 3).value();
  std::vector<double> clean{0.3, -0.7, 1.1};
  std::vector<double> clean_coeffs = PcaProject(model, clean);
  std::vector<double> dirty = clean;
  dirty[1] = 99.0;
  std::vector<double> w{1.0, 0.0, 1.0};
  // 3 components from 2 unmasked features is underdetermined; use 2.
  PcaModel model2 = PcaFit(samples.view(), 2).value();
  std::vector<double> ref =
      PcaProjectMasked(model2, clean, std::vector<double>{1, 1, 1}).value();
  std::vector<double> masked = PcaProjectMasked(model2, dirty, w).value();
  // The masked fit cannot see feature 1, so it reproduces the clean
  // sample's unmasked features.
  std::vector<double> recon = PcaReconstruct(model2, masked);
  EXPECT_NEAR(recon[0], clean[0], 0.5);
  EXPECT_NEAR(recon[2], clean[2], 0.5);
  (void)ref;
}

TEST(Pca, Validation) {
  Matrix one(1, 3);
  EXPECT_FALSE(PcaFit(one.view(), 1).ok());
  Matrix ok = RandomMatrix(5, 3, 1);
  EXPECT_FALSE(PcaFit(ok.view(), 0).ok());
  EXPECT_FALSE(PcaFit(ok.view(), 4).ok());
}

}  // namespace
}  // namespace sqlarray::math
