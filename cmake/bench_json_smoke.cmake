# Runs one bench with --json and asserts the output is valid JSON with the
# expected top-level shape: {"records": [...], "metrics": {...}}. Invoked as
#   cmake -DBENCH_EXE=... -DJSON_OUT=... [-DEXTRA_ARGS=...] -P bench_json_smoke.cmake
# Uses cmake's string(JSON) (3.19+), so the shape check runs without any
# external JSON tooling in the image.
if(NOT DEFINED BENCH_EXE OR NOT DEFINED JSON_OUT)
  message(FATAL_ERROR "bench_json_smoke.cmake requires -DBENCH_EXE and -DJSON_OUT")
endif()

separate_arguments(extra_args UNIX_COMMAND "${EXTRA_ARGS}")
execute_process(
  COMMAND ${BENCH_EXE} --json ${JSON_OUT} ${extra_args}
  RESULT_VARIABLE run_result)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "${BENCH_EXE} exited with ${run_result}")
endif()

if(NOT EXISTS ${JSON_OUT})
  message(FATAL_ERROR "${BENCH_EXE} did not write ${JSON_OUT}")
endif()
file(READ ${JSON_OUT} json_text)

string(JSON records_type ERROR_VARIABLE json_err TYPE "${json_text}" records)
if(json_err)
  message(FATAL_ERROR "${JSON_OUT}: no 'records' member or invalid JSON: ${json_err}")
endif()
if(NOT records_type STREQUAL "ARRAY")
  message(FATAL_ERROR "${JSON_OUT}: 'records' is ${records_type}, expected ARRAY")
endif()

string(JSON metrics_type ERROR_VARIABLE json_err TYPE "${json_text}" metrics)
if(json_err)
  message(FATAL_ERROR "${JSON_OUT}: no 'metrics' member: ${json_err}")
endif()
if(NOT metrics_type STREQUAL "OBJECT")
  message(FATAL_ERROR "${JSON_OUT}: 'metrics' is ${metrics_type}, expected OBJECT")
endif()

# Benches that report multi-session results (bench_server) additionally
# carry a top-level "server" object; -DEXPECT_SERVER=ON makes its shape
# mandatory: both A/B configs present with numeric tail-latency members.
if(EXPECT_SERVER)
  string(JSON server_type ERROR_VARIABLE json_err TYPE "${json_text}" server)
  if(json_err)
    message(FATAL_ERROR "${JSON_OUT}: no 'server' member: ${json_err}")
  endif()
  if(NOT server_type STREQUAL "OBJECT")
    message(FATAL_ERROR "${JSON_OUT}: 'server' is ${server_type}, expected OBJECT")
  endif()
  foreach(config admission_on admission_off)
    foreach(member ok rejected deadline_kills p50_ms p99_ms qps)
      string(JSON member_type ERROR_VARIABLE json_err TYPE "${json_text}"
             server ${config} ${member})
      if(json_err)
        message(FATAL_ERROR "${JSON_OUT}: server.${config}.${member} missing: ${json_err}")
      endif()
      if(NOT member_type STREQUAL "NUMBER")
        message(FATAL_ERROR "${JSON_OUT}: server.${config}.${member} is ${member_type}, expected NUMBER")
      endif()
    endforeach()
  endforeach()
endif()

# The wire-protocol bench (bench_net) carries a top-level "net" object;
# -DEXPECT_NET=ON makes its shape mandatory: both the in-process baseline
# and the networked path present with numeric latency/throughput members.
if(EXPECT_NET)
  string(JSON net_type ERROR_VARIABLE json_err TYPE "${json_text}" net)
  if(json_err)
    message(FATAL_ERROR "${JSON_OUT}: no 'net' member: ${json_err}")
  endif()
  if(NOT net_type STREQUAL "OBJECT")
    message(FATAL_ERROR "${JSON_OUT}: 'net' is ${net_type}, expected OBJECT")
  endif()
  foreach(path in_process networked)
    foreach(member ok errors p50_ms p99_ms qps wall_s)
      string(JSON member_type ERROR_VARIABLE json_err TYPE "${json_text}"
             net ${path} ${member})
      if(json_err)
        message(FATAL_ERROR "${JSON_OUT}: net.${path}.${member} missing: ${json_err}")
      endif()
      if(NOT member_type STREQUAL "NUMBER")
        message(FATAL_ERROR "${JSON_OUT}: net.${path}.${member} is ${member_type}, expected NUMBER")
      endif()
    endforeach()
  endforeach()
endif()

string(JSON n_records LENGTH "${json_text}" records)
string(JSON n_metrics LENGTH "${json_text}" metrics)
message(STATUS "${JSON_OUT}: ${n_records} records, ${n_metrics} metrics — OK")
