# Empty compiler generated dependencies file for bench_udf_overhead.
# This may be replaced when dependencies are built.
