# Empty compiler generated dependencies file for bench_short_vs_max.
# This may be replaced when dependencies are built.
