file(REMOVE_RECURSE
  "CMakeFiles/bench_short_vs_max.dir/bench_short_vs_max.cc.o"
  "CMakeFiles/bench_short_vs_max.dir/bench_short_vs_max.cc.o.d"
  "bench_short_vs_max"
  "bench_short_vs_max.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_short_vs_max.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
