file(REMOVE_RECURSE
  "CMakeFiles/bench_nbody.dir/bench_nbody.cc.o"
  "CMakeFiles/bench_nbody.dir/bench_nbody.cc.o.d"
  "bench_nbody"
  "bench_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
