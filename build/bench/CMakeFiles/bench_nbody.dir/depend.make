# Empty dependencies file for bench_nbody.
# This may be replaced when dependencies are built.
