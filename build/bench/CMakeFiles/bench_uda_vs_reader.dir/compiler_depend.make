# Empty compiler generated dependencies file for bench_uda_vs_reader.
# This may be replaced when dependencies are built.
