file(REMOVE_RECURSE
  "CMakeFiles/bench_uda_vs_reader.dir/bench_uda_vs_reader.cc.o"
  "CMakeFiles/bench_uda_vs_reader.dir/bench_uda_vs_reader.cc.o.d"
  "bench_uda_vs_reader"
  "bench_uda_vs_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uda_vs_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
