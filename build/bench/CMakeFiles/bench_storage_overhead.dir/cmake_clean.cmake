file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_overhead.dir/bench_storage_overhead.cc.o"
  "CMakeFiles/bench_storage_overhead.dir/bench_storage_overhead.cc.o.d"
  "bench_storage_overhead"
  "bench_storage_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
