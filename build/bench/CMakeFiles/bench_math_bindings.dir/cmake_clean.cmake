file(REMOVE_RECURSE
  "CMakeFiles/bench_math_bindings.dir/bench_math_bindings.cc.o"
  "CMakeFiles/bench_math_bindings.dir/bench_math_bindings.cc.o.d"
  "bench_math_bindings"
  "bench_math_bindings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_math_bindings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
