# Empty dependencies file for bench_math_bindings.
# This may be replaced when dependencies are built.
