file(REMOVE_RECURSE
  "CMakeFiles/bench_subarray_stream.dir/bench_subarray_stream.cc.o"
  "CMakeFiles/bench_subarray_stream.dir/bench_subarray_stream.cc.o.d"
  "bench_subarray_stream"
  "bench_subarray_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subarray_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
