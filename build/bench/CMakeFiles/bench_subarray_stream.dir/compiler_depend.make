# Empty compiler generated dependencies file for bench_subarray_stream.
# This may be replaced when dependencies are built.
