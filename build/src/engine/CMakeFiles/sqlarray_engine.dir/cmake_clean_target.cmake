file(REMOVE_RECURSE
  "libsqlarray_engine.a"
)
