file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_engine.dir/exec.cc.o"
  "CMakeFiles/sqlarray_engine.dir/exec.cc.o.d"
  "CMakeFiles/sqlarray_engine.dir/expr.cc.o"
  "CMakeFiles/sqlarray_engine.dir/expr.cc.o.d"
  "CMakeFiles/sqlarray_engine.dir/udf.cc.o"
  "CMakeFiles/sqlarray_engine.dir/udf.cc.o.d"
  "CMakeFiles/sqlarray_engine.dir/value.cc.o"
  "CMakeFiles/sqlarray_engine.dir/value.cc.o.d"
  "libsqlarray_engine.a"
  "libsqlarray_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
