# Empty compiler generated dependencies file for sqlarray_engine.
# This may be replaced when dependencies are built.
