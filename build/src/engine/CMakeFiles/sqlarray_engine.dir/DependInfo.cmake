
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/exec.cc" "src/engine/CMakeFiles/sqlarray_engine.dir/exec.cc.o" "gcc" "src/engine/CMakeFiles/sqlarray_engine.dir/exec.cc.o.d"
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/sqlarray_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/sqlarray_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/udf.cc" "src/engine/CMakeFiles/sqlarray_engine.dir/udf.cc.o" "gcc" "src/engine/CMakeFiles/sqlarray_engine.dir/udf.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/engine/CMakeFiles/sqlarray_engine.dir/value.cc.o" "gcc" "src/engine/CMakeFiles/sqlarray_engine.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqlarray_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sqlarray_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sqlarray_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
