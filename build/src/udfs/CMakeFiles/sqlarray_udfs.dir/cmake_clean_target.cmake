file(REMOVE_RECURSE
  "libsqlarray_udfs.a"
)
