
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udfs/array_udfs.cc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/array_udfs.cc.o" "gcc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/array_udfs.cc.o.d"
  "/root/repo/src/udfs/concat.cc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/concat.cc.o" "gcc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/concat.cc.o.d"
  "/root/repo/src/udfs/datetime_udfs.cc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/datetime_udfs.cc.o" "gcc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/datetime_udfs.cc.o.d"
  "/root/repo/src/udfs/generic_udfs.cc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/generic_udfs.cc.o" "gcc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/generic_udfs.cc.o.d"
  "/root/repo/src/udfs/helpers.cc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/helpers.cc.o" "gcc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/helpers.cc.o.d"
  "/root/repo/src/udfs/math_udfs.cc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/math_udfs.cc.o" "gcc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/math_udfs.cc.o.d"
  "/root/repo/src/udfs/tvf_udfs.cc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/tvf_udfs.cc.o" "gcc" "src/udfs/CMakeFiles/sqlarray_udfs.dir/tvf_udfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/sqlarray_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/sqlarray_math.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/sqlarray_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sqlarray_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sqlarray_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqlarray_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
