# Empty dependencies file for sqlarray_udfs.
# This may be replaced when dependencies are built.
