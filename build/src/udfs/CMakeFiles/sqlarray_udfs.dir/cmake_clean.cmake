file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_udfs.dir/array_udfs.cc.o"
  "CMakeFiles/sqlarray_udfs.dir/array_udfs.cc.o.d"
  "CMakeFiles/sqlarray_udfs.dir/concat.cc.o"
  "CMakeFiles/sqlarray_udfs.dir/concat.cc.o.d"
  "CMakeFiles/sqlarray_udfs.dir/datetime_udfs.cc.o"
  "CMakeFiles/sqlarray_udfs.dir/datetime_udfs.cc.o.d"
  "CMakeFiles/sqlarray_udfs.dir/generic_udfs.cc.o"
  "CMakeFiles/sqlarray_udfs.dir/generic_udfs.cc.o.d"
  "CMakeFiles/sqlarray_udfs.dir/helpers.cc.o"
  "CMakeFiles/sqlarray_udfs.dir/helpers.cc.o.d"
  "CMakeFiles/sqlarray_udfs.dir/math_udfs.cc.o"
  "CMakeFiles/sqlarray_udfs.dir/math_udfs.cc.o.d"
  "CMakeFiles/sqlarray_udfs.dir/tvf_udfs.cc.o"
  "CMakeFiles/sqlarray_udfs.dir/tvf_udfs.cc.o.d"
  "libsqlarray_udfs.a"
  "libsqlarray_udfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_udfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
