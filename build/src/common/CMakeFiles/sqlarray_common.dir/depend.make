# Empty dependencies file for sqlarray_common.
# This may be replaced when dependencies are built.
