file(REMOVE_RECURSE
  "libsqlarray_common.a"
)
