file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_common.dir/dims.cc.o"
  "CMakeFiles/sqlarray_common.dir/dims.cc.o.d"
  "CMakeFiles/sqlarray_common.dir/status.cc.o"
  "CMakeFiles/sqlarray_common.dir/status.cc.o.d"
  "libsqlarray_common.a"
  "libsqlarray_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
