# Empty compiler generated dependencies file for sqlarray_client.
# This may be replaced when dependencies are built.
