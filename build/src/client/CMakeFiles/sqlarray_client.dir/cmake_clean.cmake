file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_client.dir/sql_array.cc.o"
  "CMakeFiles/sqlarray_client.dir/sql_array.cc.o.d"
  "libsqlarray_client.a"
  "libsqlarray_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
