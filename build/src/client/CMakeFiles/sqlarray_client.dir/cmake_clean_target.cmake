file(REMOVE_RECURSE
  "libsqlarray_client.a"
)
