file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_math.dir/dense.cc.o"
  "CMakeFiles/sqlarray_math.dir/dense.cc.o.d"
  "CMakeFiles/sqlarray_math.dir/interp.cc.o"
  "CMakeFiles/sqlarray_math.dir/interp.cc.o.d"
  "CMakeFiles/sqlarray_math.dir/nnls.cc.o"
  "CMakeFiles/sqlarray_math.dir/nnls.cc.o.d"
  "CMakeFiles/sqlarray_math.dir/pca.cc.o"
  "CMakeFiles/sqlarray_math.dir/pca.cc.o.d"
  "CMakeFiles/sqlarray_math.dir/qr.cc.o"
  "CMakeFiles/sqlarray_math.dir/qr.cc.o.d"
  "CMakeFiles/sqlarray_math.dir/svd.cc.o"
  "CMakeFiles/sqlarray_math.dir/svd.cc.o.d"
  "libsqlarray_math.a"
  "libsqlarray_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
