file(REMOVE_RECURSE
  "libsqlarray_math.a"
)
