
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/dense.cc" "src/math/CMakeFiles/sqlarray_math.dir/dense.cc.o" "gcc" "src/math/CMakeFiles/sqlarray_math.dir/dense.cc.o.d"
  "/root/repo/src/math/interp.cc" "src/math/CMakeFiles/sqlarray_math.dir/interp.cc.o" "gcc" "src/math/CMakeFiles/sqlarray_math.dir/interp.cc.o.d"
  "/root/repo/src/math/nnls.cc" "src/math/CMakeFiles/sqlarray_math.dir/nnls.cc.o" "gcc" "src/math/CMakeFiles/sqlarray_math.dir/nnls.cc.o.d"
  "/root/repo/src/math/pca.cc" "src/math/CMakeFiles/sqlarray_math.dir/pca.cc.o" "gcc" "src/math/CMakeFiles/sqlarray_math.dir/pca.cc.o.d"
  "/root/repo/src/math/qr.cc" "src/math/CMakeFiles/sqlarray_math.dir/qr.cc.o" "gcc" "src/math/CMakeFiles/sqlarray_math.dir/qr.cc.o.d"
  "/root/repo/src/math/svd.cc" "src/math/CMakeFiles/sqlarray_math.dir/svd.cc.o" "gcc" "src/math/CMakeFiles/sqlarray_math.dir/svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqlarray_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
