# Empty dependencies file for sqlarray_math.
# This may be replaced when dependencies are built.
