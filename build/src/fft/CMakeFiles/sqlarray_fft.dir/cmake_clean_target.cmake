file(REMOVE_RECURSE
  "libsqlarray_fft.a"
)
