# Empty compiler generated dependencies file for sqlarray_fft.
# This may be replaced when dependencies are built.
