file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_fft.dir/fft.cc.o"
  "CMakeFiles/sqlarray_fft.dir/fft.cc.o.d"
  "libsqlarray_fft.a"
  "libsqlarray_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
