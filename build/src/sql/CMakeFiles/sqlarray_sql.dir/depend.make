# Empty dependencies file for sqlarray_sql.
# This may be replaced when dependencies are built.
