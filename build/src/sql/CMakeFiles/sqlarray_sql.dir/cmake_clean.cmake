file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_sql.dir/lexer.cc.o"
  "CMakeFiles/sqlarray_sql.dir/lexer.cc.o.d"
  "CMakeFiles/sqlarray_sql.dir/parser.cc.o"
  "CMakeFiles/sqlarray_sql.dir/parser.cc.o.d"
  "CMakeFiles/sqlarray_sql.dir/session.cc.o"
  "CMakeFiles/sqlarray_sql.dir/session.cc.o.d"
  "libsqlarray_sql.a"
  "libsqlarray_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
