file(REMOVE_RECURSE
  "libsqlarray_sql.a"
)
