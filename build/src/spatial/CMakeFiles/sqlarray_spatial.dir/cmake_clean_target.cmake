file(REMOVE_RECURSE
  "libsqlarray_spatial.a"
)
