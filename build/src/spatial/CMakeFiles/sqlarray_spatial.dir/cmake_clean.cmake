file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_spatial.dir/kdtree.cc.o"
  "CMakeFiles/sqlarray_spatial.dir/kdtree.cc.o.d"
  "CMakeFiles/sqlarray_spatial.dir/octree.cc.o"
  "CMakeFiles/sqlarray_spatial.dir/octree.cc.o.d"
  "CMakeFiles/sqlarray_spatial.dir/zorder.cc.o"
  "CMakeFiles/sqlarray_spatial.dir/zorder.cc.o.d"
  "libsqlarray_spatial.a"
  "libsqlarray_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
