# Empty dependencies file for sqlarray_spatial.
# This may be replaced when dependencies are built.
