# Empty dependencies file for sqlarray_core.
# This may be replaced when dependencies are built.
