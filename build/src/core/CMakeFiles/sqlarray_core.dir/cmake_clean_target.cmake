file(REMOVE_RECURSE
  "libsqlarray_core.a"
)
