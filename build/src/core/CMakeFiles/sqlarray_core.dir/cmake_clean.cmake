file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_core.dir/array.cc.o"
  "CMakeFiles/sqlarray_core.dir/array.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/build.cc.o"
  "CMakeFiles/sqlarray_core.dir/build.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/concat.cc.o"
  "CMakeFiles/sqlarray_core.dir/concat.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/dtype.cc.o"
  "CMakeFiles/sqlarray_core.dir/dtype.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/header.cc.o"
  "CMakeFiles/sqlarray_core.dir/header.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/ops_aggregate.cc.o"
  "CMakeFiles/sqlarray_core.dir/ops_aggregate.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/ops_cast.cc.o"
  "CMakeFiles/sqlarray_core.dir/ops_cast.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/ops_elementwise.cc.o"
  "CMakeFiles/sqlarray_core.dir/ops_elementwise.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/ops_item.cc.o"
  "CMakeFiles/sqlarray_core.dir/ops_item.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/ops_string.cc.o"
  "CMakeFiles/sqlarray_core.dir/ops_string.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/ops_subarray.cc.o"
  "CMakeFiles/sqlarray_core.dir/ops_subarray.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/ops_transform.cc.o"
  "CMakeFiles/sqlarray_core.dir/ops_transform.cc.o.d"
  "CMakeFiles/sqlarray_core.dir/stream_ops.cc.o"
  "CMakeFiles/sqlarray_core.dir/stream_ops.cc.o.d"
  "libsqlarray_core.a"
  "libsqlarray_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
