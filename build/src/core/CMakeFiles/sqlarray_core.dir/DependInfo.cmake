
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/array.cc" "src/core/CMakeFiles/sqlarray_core.dir/array.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/array.cc.o.d"
  "/root/repo/src/core/build.cc" "src/core/CMakeFiles/sqlarray_core.dir/build.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/build.cc.o.d"
  "/root/repo/src/core/concat.cc" "src/core/CMakeFiles/sqlarray_core.dir/concat.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/concat.cc.o.d"
  "/root/repo/src/core/dtype.cc" "src/core/CMakeFiles/sqlarray_core.dir/dtype.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/dtype.cc.o.d"
  "/root/repo/src/core/header.cc" "src/core/CMakeFiles/sqlarray_core.dir/header.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/header.cc.o.d"
  "/root/repo/src/core/ops_aggregate.cc" "src/core/CMakeFiles/sqlarray_core.dir/ops_aggregate.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/ops_aggregate.cc.o.d"
  "/root/repo/src/core/ops_cast.cc" "src/core/CMakeFiles/sqlarray_core.dir/ops_cast.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/ops_cast.cc.o.d"
  "/root/repo/src/core/ops_elementwise.cc" "src/core/CMakeFiles/sqlarray_core.dir/ops_elementwise.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/ops_elementwise.cc.o.d"
  "/root/repo/src/core/ops_item.cc" "src/core/CMakeFiles/sqlarray_core.dir/ops_item.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/ops_item.cc.o.d"
  "/root/repo/src/core/ops_string.cc" "src/core/CMakeFiles/sqlarray_core.dir/ops_string.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/ops_string.cc.o.d"
  "/root/repo/src/core/ops_subarray.cc" "src/core/CMakeFiles/sqlarray_core.dir/ops_subarray.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/ops_subarray.cc.o.d"
  "/root/repo/src/core/ops_transform.cc" "src/core/CMakeFiles/sqlarray_core.dir/ops_transform.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/ops_transform.cc.o.d"
  "/root/repo/src/core/stream_ops.cc" "src/core/CMakeFiles/sqlarray_core.dir/stream_ops.cc.o" "gcc" "src/core/CMakeFiles/sqlarray_core.dir/stream_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqlarray_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
