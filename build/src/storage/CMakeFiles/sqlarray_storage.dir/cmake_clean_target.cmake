file(REMOVE_RECURSE
  "libsqlarray_storage.a"
)
