# Empty dependencies file for sqlarray_storage.
# This may be replaced when dependencies are built.
