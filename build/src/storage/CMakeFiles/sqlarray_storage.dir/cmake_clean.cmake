file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_storage.dir/blob.cc.o"
  "CMakeFiles/sqlarray_storage.dir/blob.cc.o.d"
  "CMakeFiles/sqlarray_storage.dir/btree.cc.o"
  "CMakeFiles/sqlarray_storage.dir/btree.cc.o.d"
  "CMakeFiles/sqlarray_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/sqlarray_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/sqlarray_storage.dir/disk.cc.o"
  "CMakeFiles/sqlarray_storage.dir/disk.cc.o.d"
  "CMakeFiles/sqlarray_storage.dir/schema.cc.o"
  "CMakeFiles/sqlarray_storage.dir/schema.cc.o.d"
  "CMakeFiles/sqlarray_storage.dir/table.cc.o"
  "CMakeFiles/sqlarray_storage.dir/table.cc.o.d"
  "libsqlarray_storage.a"
  "libsqlarray_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
