file(REMOVE_RECURSE
  "CMakeFiles/sqlarray_sci.dir/nbody/bucket.cc.o"
  "CMakeFiles/sqlarray_sci.dir/nbody/bucket.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/nbody/cic.cc.o"
  "CMakeFiles/sqlarray_sci.dir/nbody/cic.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/nbody/correlation.cc.o"
  "CMakeFiles/sqlarray_sci.dir/nbody/correlation.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/nbody/cosmology.cc.o"
  "CMakeFiles/sqlarray_sci.dir/nbody/cosmology.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/nbody/fof.cc.o"
  "CMakeFiles/sqlarray_sci.dir/nbody/fof.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/nbody/lightcone.cc.o"
  "CMakeFiles/sqlarray_sci.dir/nbody/lightcone.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/nbody/merger.cc.o"
  "CMakeFiles/sqlarray_sci.dir/nbody/merger.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/nbody/snapshot.cc.o"
  "CMakeFiles/sqlarray_sci.dir/nbody/snapshot.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/spectrum/datacube.cc.o"
  "CMakeFiles/sqlarray_sci.dir/spectrum/datacube.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/spectrum/pipeline.cc.o"
  "CMakeFiles/sqlarray_sci.dir/spectrum/pipeline.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/spectrum/resample.cc.o"
  "CMakeFiles/sqlarray_sci.dir/spectrum/resample.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/spectrum/spectrum.cc.o"
  "CMakeFiles/sqlarray_sci.dir/spectrum/spectrum.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/turbulence/field.cc.o"
  "CMakeFiles/sqlarray_sci.dir/turbulence/field.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/turbulence/partition.cc.o"
  "CMakeFiles/sqlarray_sci.dir/turbulence/partition.cc.o.d"
  "CMakeFiles/sqlarray_sci.dir/turbulence/service.cc.o"
  "CMakeFiles/sqlarray_sci.dir/turbulence/service.cc.o.d"
  "libsqlarray_sci.a"
  "libsqlarray_sci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlarray_sci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
