file(REMOVE_RECURSE
  "libsqlarray_sci.a"
)
