
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sci/nbody/bucket.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/bucket.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/bucket.cc.o.d"
  "/root/repo/src/sci/nbody/cic.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/cic.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/cic.cc.o.d"
  "/root/repo/src/sci/nbody/correlation.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/correlation.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/correlation.cc.o.d"
  "/root/repo/src/sci/nbody/cosmology.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/cosmology.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/cosmology.cc.o.d"
  "/root/repo/src/sci/nbody/fof.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/fof.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/fof.cc.o.d"
  "/root/repo/src/sci/nbody/lightcone.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/lightcone.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/lightcone.cc.o.d"
  "/root/repo/src/sci/nbody/merger.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/merger.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/merger.cc.o.d"
  "/root/repo/src/sci/nbody/snapshot.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/snapshot.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/nbody/snapshot.cc.o.d"
  "/root/repo/src/sci/spectrum/datacube.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/spectrum/datacube.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/spectrum/datacube.cc.o.d"
  "/root/repo/src/sci/spectrum/pipeline.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/spectrum/pipeline.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/spectrum/pipeline.cc.o.d"
  "/root/repo/src/sci/spectrum/resample.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/spectrum/resample.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/spectrum/resample.cc.o.d"
  "/root/repo/src/sci/spectrum/spectrum.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/spectrum/spectrum.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/spectrum/spectrum.cc.o.d"
  "/root/repo/src/sci/turbulence/field.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/turbulence/field.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/turbulence/field.cc.o.d"
  "/root/repo/src/sci/turbulence/partition.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/turbulence/partition.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/turbulence/partition.cc.o.d"
  "/root/repo/src/sci/turbulence/service.cc" "src/sci/CMakeFiles/sqlarray_sci.dir/turbulence/service.cc.o" "gcc" "src/sci/CMakeFiles/sqlarray_sci.dir/turbulence/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sqlarray_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sqlarray_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sqlarray_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sqlarray_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/sqlarray_math.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/sqlarray_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/sqlarray_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/udfs/CMakeFiles/sqlarray_udfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqlarray_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
