# Empty dependencies file for sqlarray_sci.
# This may be replaced when dependencies are built.
