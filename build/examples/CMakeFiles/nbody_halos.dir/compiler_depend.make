# Empty compiler generated dependencies file for nbody_halos.
# This may be replaced when dependencies are built.
