file(REMOVE_RECURSE
  "CMakeFiles/nbody_halos.dir/nbody_halos.cpp.o"
  "CMakeFiles/nbody_halos.dir/nbody_halos.cpp.o.d"
  "nbody_halos"
  "nbody_halos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_halos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
