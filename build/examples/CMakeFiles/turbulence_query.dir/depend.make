# Empty dependencies file for turbulence_query.
# This may be replaced when dependencies are built.
