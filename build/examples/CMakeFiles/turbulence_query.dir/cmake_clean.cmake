file(REMOVE_RECURSE
  "CMakeFiles/turbulence_query.dir/turbulence_query.cpp.o"
  "CMakeFiles/turbulence_query.dir/turbulence_query.cpp.o.d"
  "turbulence_query"
  "turbulence_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbulence_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
