file(REMOVE_RECURSE
  "CMakeFiles/spectrum_pipeline.dir/spectrum_pipeline.cpp.o"
  "CMakeFiles/spectrum_pipeline.dir/spectrum_pipeline.cpp.o.d"
  "spectrum_pipeline"
  "spectrum_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
