# Empty compiler generated dependencies file for spectrum_pipeline.
# This may be replaced when dependencies are built.
