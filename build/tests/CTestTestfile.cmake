# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_header[1]_include.cmake")
include("/root/repo/build/tests/test_array[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_concat[1]_include.cmake")
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_spatial[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sql[1]_include.cmake")
include("/root/repo/build/tests/test_udfs[1]_include.cmake")
include("/root/repo/build/tests/test_turbulence[1]_include.cmake")
include("/root/repo/build/tests/test_spectrum[1]_include.cmake")
include("/root/repo/build/tests/test_nbody[1]_include.cmake")
