file(REMOVE_RECURSE
  "CMakeFiles/test_turbulence.dir/test_turbulence.cc.o"
  "CMakeFiles/test_turbulence.dir/test_turbulence.cc.o.d"
  "test_turbulence"
  "test_turbulence.pdb"
  "test_turbulence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turbulence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
