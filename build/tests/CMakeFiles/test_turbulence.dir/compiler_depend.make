# Empty compiler generated dependencies file for test_turbulence.
# This may be replaced when dependencies are built.
