file(REMOVE_RECURSE
  "CMakeFiles/test_udfs.dir/test_udfs.cc.o"
  "CMakeFiles/test_udfs.dir/test_udfs.cc.o.d"
  "test_udfs"
  "test_udfs.pdb"
  "test_udfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
