# Empty compiler generated dependencies file for test_udfs.
# This may be replaced when dependencies are built.
