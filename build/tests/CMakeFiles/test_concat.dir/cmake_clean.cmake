file(REMOVE_RECURSE
  "CMakeFiles/test_concat.dir/test_concat.cc.o"
  "CMakeFiles/test_concat.dir/test_concat.cc.o.d"
  "test_concat"
  "test_concat.pdb"
  "test_concat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
