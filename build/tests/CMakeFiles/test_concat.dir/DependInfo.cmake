
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_concat.cc" "tests/CMakeFiles/test_concat.dir/test_concat.cc.o" "gcc" "tests/CMakeFiles/test_concat.dir/test_concat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqlarray_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sqlarray_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/sqlarray_math.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/sqlarray_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/sqlarray_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sqlarray_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sqlarray_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sqlarray_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/udfs/CMakeFiles/sqlarray_udfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sci/CMakeFiles/sqlarray_sci.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/sqlarray_client.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
