# Empty dependencies file for test_concat.
# This may be replaced when dependencies are built.
