file(REMOVE_RECURSE
  "CMakeFiles/test_header.dir/test_header.cc.o"
  "CMakeFiles/test_header.dir/test_header.cc.o.d"
  "test_header"
  "test_header.pdb"
  "test_header[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
