# Empty compiler generated dependencies file for test_sql.
# This may be replaced when dependencies are built.
